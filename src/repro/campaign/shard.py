"""Multi-machine campaign sharding: the collector service and shard client.

One campaign, many machines: every participant expands the **same** matrix
(same CLI flags), so a job index names the same :class:`~repro.campaign.jobs.RunJob`
everywhere and only indices, rows and small control messages ever travel.
The :class:`Collector` listens on a TCP/Unix socket, shards connect with an
:class:`~repro.campaign.sinks.AckingSocketSink` and stream their rows back;
the collector validates each row against the expanded matrix
(:func:`~repro.campaign.resume.validate_row_matches_job`), keeps the latest
copy per job index and, once every index has a row, writes the merged
campaign — byte-identical to the same matrix run locally with ``--jobs 1``,
because every row is a pure function of its job and every writer serializes
through :func:`~repro.campaign.sinks.row_line`.

Wire protocol (NDJSON, one JSON object per line, both directions):

* control messages carry an ``"op"`` key (schemas in
  :data:`CONTROL_SCHEMAS`); anything without ``"op"`` is a campaign row,
* ``hello`` -> ``welcome``/``reject``: the handshake pins the matrix — job
  count plus :func:`matrix_fingerprint` over every job's identity block —
  so a shard launched with different flags is rejected instead of merging
  garbage,
* row -> ``ack``: a shard treats a row as delivered only once its ack
  arrives; re-sending after a lost ack may duplicate a row, which is safe
  because rows are deterministic and the collector keeps the latest copy,
* ``pull`` -> ``grant``: pull-mode shards ask for the next batch of job
  indices; a ``grant`` with ``done=true`` ends the shard.

Dispatch and failure: a static shard (``--shard I/N``) declares its
:func:`~repro.campaign.runner.shard_slice` range in the hello and the
collector leases it; a pull shard leases batches on demand.  When a shard's
connection drops, its leases are released and the undelivered indices are
recomputed with the *resume* machinery
(:func:`~repro.campaign.resume.remaining_jobs` over the collected rows) —
dead-shard recovery is literally "resume, over the network", no second
bookkeeping scheme to trust.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.driver import RowCollector, ShardExecutor
from repro.campaign.jobs import ROW_IDENTITY_ATTRS, RunJob
from repro.campaign.resume import ResumeError, remaining_jobs, validate_row_matches_job
from repro.campaign.runner import CampaignResult
from repro.campaign.sinks import (
    RowSink,
    ShardProtocolError,
    parse_address,
    row_line,
)

#: op -> the exact key set of that control message.  Every key is always
#: present (``hello``'s ``range`` is ``null`` for a pull shard rather than
#: absent), so conformance is an equality check, not a subset dance;
#: :func:`control_message` enforces it on build and :func:`validate_control`
#: on receipt, and ``tools/check_repo.py`` asserts the registry itself stays
#: consistent with what the collector and client actually exchange.
CONTROL_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "hello": ("op", "shard", "jobs", "fingerprint", "range"),
    "welcome": ("op", "jobs", "pending"),
    "reject": ("op", "error"),
    "pull": ("op", "max"),
    "grant": ("op", "jobs", "done"),
    "ack": ("op", "job"),
}

#: Default number of jobs a pull-mode shard requests per ``pull``.
DEFAULT_PULL_BATCH = 4


def control_message(op: str, **fields: object) -> Dict[str, object]:
    """Build an ``op`` control message, enforcing its registered schema."""
    message: Dict[str, object] = {"op": op}
    message.update(fields)
    validate_control(message)
    return message


def validate_control(message: Dict[str, object]) -> None:
    """Raise :class:`ShardProtocolError` unless ``message`` fits its schema."""
    op = message.get("op")
    schema = CONTROL_SCHEMAS.get(str(op))
    if schema is None:
        raise ShardProtocolError(f"unknown control op {op!r}")
    if set(message) != set(schema):
        raise ShardProtocolError(
            f"malformed {op!r} control message: has keys "
            f"{sorted(message)}, schema requires {sorted(schema)}"
        )


def matrix_fingerprint(jobs: Sequence[RunJob]) -> str:
    """sha256 over every job's identity block, in job order.

    Two processes that expanded the same campaign flags agree on this
    digest; any drift — scenario list, seed range, step budget, axis order —
    changes it.  Serialized via :func:`row_line` (sorted-key JSON), the same
    canonical form the rows themselves use.
    """
    digest = hashlib.sha256()
    for job in jobs:
        identity = {key: getattr(job, attr) for key, attr in ROW_IDENTITY_ATTRS.items()}
        digest.update(row_line(identity).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def hello_message(
    jobs: Sequence[RunJob],
    shard: Optional[str] = None,
    job_range: Optional[Tuple[int, int]] = None,
) -> Dict[str, object]:
    """The handshake a shard opens every (re)connect with.

    ``job_range`` is the half-open ``[low, high)`` static range this shard
    will run (``None`` for a pull shard).  Replaying the hello on reconnect
    is idempotent: the collector re-leases whatever of the range is still
    undelivered.
    """
    return control_message(
        "hello",
        shard=shard,
        jobs=len(jobs),
        fingerprint=matrix_fingerprint(jobs),
        range=list(job_range) if job_range is not None else None,
    )


@dataclass(eq=False)
class ShardRecord:
    """One connected shard, as the collector sees it.

    ``eq=False`` keeps dataclass identity semantics: two shards announcing
    the same name are still two distinct lease holders (a reconnect is a new
    record; the old one released its leases when its connection died).
    """

    name: str
    static: bool
    delivered: int = field(default=0)


class CollectorState:
    """The collector's thread-shared ledger: rows collected, indices leased.

    All mutation happens under one condition variable; handler threads block
    in :meth:`lease` until work frees up (a shard died and released its
    leases) or the campaign completes.  "What is left to run" is always
    *recomputed* from the collected rows via
    :func:`~repro.campaign.resume.remaining_jobs` — the same machinery
    ``--resume`` uses on a partial file — minus the currently leased
    indices, so dead-shard re-dispatch needs no recovery logic of its own.
    """

    def __init__(self, jobs: Sequence[RunJob]) -> None:
        self.jobs = list(jobs)
        self.by_index: Dict[int, RunJob] = {job.index: job for job in self.jobs}
        self.fingerprint = matrix_fingerprint(self.jobs)
        self.rows: Dict[int, Dict[str, object]] = {}
        self.shards: List[ShardRecord] = []
        self._leases: Dict[ShardRecord, set] = {}
        self._cond = threading.Condition()
        self._shutdown = False

    @property
    def done(self) -> bool:
        return len(self.rows) >= len(self.jobs)

    def pending_count(self) -> int:
        """Jobs without a collected row yet (leased or not)."""
        with self._cond:
            return len(self.jobs) - len(self.rows)

    def _unleased_pending(self) -> List[int]:
        # Caller holds the lock.  Sorted job order falls out of
        # remaining_jobs (which walks ``self.jobs`` in order).
        leased: set = set()
        for indices in self._leases.values():
            leased.update(indices)
        return [
            job.index
            for job in remaining_jobs(self.jobs, self.rows.values())
            if job.index not in leased
        ]

    def register(self, shard: ShardRecord) -> None:
        with self._cond:
            self.shards.append(shard)
            self._leases[shard] = set()

    def preload(self, row: Dict[str, object]) -> bool:
        """Adopt a row from a prior run (``collect --resume``).

        Returns False for rows outside the matrix (e.g. adaptive re-run rows
        appended past the base matrix by a previous campaign); identity
        mismatches raise :class:`~repro.campaign.resume.ResumeError` exactly
        as ``--resume`` would.
        """
        index = int(row["job"])
        job = self.by_index.get(index)
        if job is None:
            return False
        validate_row_matches_job(job, row)
        with self._cond:
            self.rows[index] = dict(row)
            self._cond.notify_all()
        return True

    def lease(self, shard: ShardRecord, limit: int) -> Tuple[List[int], bool]:
        """Grant up to ``limit`` pending job indices; block while none exist.

        Returns ``([], True)`` once every job has a row (or the collector is
        shutting down) — the shard's signal to finish.  Blocks while all
        undelivered indices are leased to other shards: if one of them dies,
        its release wakes this waiter and the indices are re-dispatched.
        """
        with self._cond:
            while True:
                if self.done or self._shutdown:
                    return [], True
                pending = self._unleased_pending()
                if pending:
                    granted = pending[: max(1, limit)]
                    self._leases[shard].update(granted)
                    return granted, False
                self._cond.wait(timeout=0.5)

    def lease_range(self, shard: ShardRecord, low: int, high: int) -> List[int]:
        """Lease the still-pending, unleased indices of a static ``[low, high)``."""
        with self._cond:
            granted = [
                index for index in self._unleased_pending() if low <= index < high
            ]
            self._leases[shard].update(granted)
            return granted

    def deliver(self, shard: ShardRecord, row: Dict[str, object]) -> int:
        """Validate and store one row from ``shard``; returns its job index.

        Raises :class:`ShardProtocolError` for rows outside the matrix and
        :class:`~repro.campaign.resume.ResumeError` for identity mismatches.
        Duplicates (re-sent after a lost ack, or a re-dispatched range racing
        its not-quite-dead original shard) overwrite — rows are deterministic,
        so the latest copy is the same copy.
        """
        index = row.get("job")
        if not isinstance(index, int):
            raise ShardProtocolError(
                f"row without an integer 'job' index: {sorted(row)!r}"
            )
        job = self.by_index.get(index)
        if job is None:
            raise ShardProtocolError(
                f"row for job {index} is outside the {len(self.jobs)}-job matrix"
            )
        validate_row_matches_job(job, row)
        with self._cond:
            self.rows[index] = dict(row)
            for indices in self._leases.values():
                indices.discard(index)
            shard.delivered += 1
            self._cond.notify_all()
        return index

    def release(self, shard: ShardRecord) -> None:
        """Return a disconnected shard's undelivered leases to the pool."""
        with self._cond:
            indices = self._leases.pop(shard, set())
            if indices:
                self._cond.notify_all()

    def wait_done(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: self.done, timeout=timeout)

    def shutdown(self) -> None:
        """Unblock every waiter; subsequent leases grant ``([], True)``."""
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()

    def merged_rows(self) -> List[Dict[str, object]]:
        """The collected rows, in job-index order."""
        with self._cond:
            return [self.rows[index] for index in sorted(self.rows)]


class Collector:
    """The merge point: accept shards, collect rows, finish when all are in.

    One accept loop (polling, so :meth:`close` can stop it) plus one daemon
    handler thread per connection; all shared state lives in
    :class:`CollectorState`.  Usage::

        collector = Collector(jobs, "tcp:0.0.0.0:7777")
        rows = collector.run()          # blocks until every job has a row

    or non-blocking: :meth:`start`, poll ``state``, :meth:`close`.  The
    bound address (with the kernel-assigned port for ``tcp:HOST:0``) is
    :attr:`address` once started.
    """

    def __init__(
        self,
        jobs: Sequence[RunJob],
        listen: str,
        prior_rows: Optional[Iterable[Dict[str, object]]] = None,
    ) -> None:
        self.state = CollectorState(jobs)
        self.skipped_prior = 0
        for row in prior_rows or ():
            if not self.state.preload(row):
                self.skipped_prior += 1
        self._family, self._target = parse_address(listen)
        self._configured = listen
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._closing = False

    @property
    def address(self) -> str:
        """The connectable address — actual port resolved for ``tcp:HOST:0``."""
        if self._listener is None or self._family != socket.AF_INET:
            return self._configured
        host, port = self._listener.getsockname()[:2]
        return f"tcp:{host}:{port}"

    def start(self) -> "Collector":
        if self._listener is not None:
            return self
        listener = socket.socket(self._family, socket.SOCK_STREAM)
        try:
            if self._family == socket.AF_INET:
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            else:
                try:
                    os.unlink(self._target)
                except OSError:
                    pass
            listener.bind(self._target)
            listener.listen(16)
            # Polling accept: the loop re-checks _closing between accepts,
            # so close() stops it without needing a poke connection.
            listener.settimeout(0.2)
        except BaseException:
            listener.close()
            raise
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="collector-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _peer = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            handler = threading.Thread(
                target=self._serve, args=(conn,), name="collector-shard", daemon=True
            )
            self._handlers.append(handler)
            handler.start()

    def run(self, timeout: Optional[float] = None) -> List[Dict[str, object]]:
        """Serve until every job has a row; return the merged rows.

        ``timeout`` (seconds) raises :class:`TimeoutError` instead of
        waiting forever — the campaign's rows so far stay in ``state``.
        """
        self.start()
        try:
            if not self.state.wait_done(timeout=timeout):
                raise TimeoutError(
                    f"collector timed out with {self.state.pending_count()} of "
                    f"{len(self.state.jobs)} job(s) still missing"
                )
        finally:
            self.close()
        return self.state.merged_rows()

    def close(self) -> None:
        self._closing = True
        self.state.shutdown()
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        # Let in-flight handlers flush their final acks before returning
        # (shards block on the ack of their last row).
        for handler in self._handlers:
            handler.join(timeout=5.0)
        self._handlers = []
        if self._listener is not None:
            self._listener = None
            if self._family != socket.AF_INET:
                try:
                    os.unlink(self._target)
                except OSError:
                    pass

    def __enter__(self) -> "Collector":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- per-connection protocol -------------------------------------------

    @staticmethod
    def _send(conn: socket.socket, message: Dict[str, object]) -> None:
        conn.sendall((row_line(message) + "\n").encode("utf-8"))

    def _hello_error(self, hello: Dict[str, object]) -> Optional[str]:
        """Why this handshake must be rejected, or None if it is sound."""
        if hello.get("op") != "hello":
            return f"expected a hello handshake, got op {hello.get('op')!r}"
        try:
            validate_control(hello)
        except ShardProtocolError as exc:
            return str(exc)
        if hello["jobs"] != len(self.state.jobs):
            return (
                f"matrix size mismatch: shard expanded {hello['jobs']} job(s), "
                f"collector has {len(self.state.jobs)} — were both started "
                "with the same campaign flags?"
            )
        if hello["fingerprint"] != self.state.fingerprint:
            return (
                "matrix fingerprint mismatch: the shard's expanded jobs are "
                "not the collector's (same scenarios/axes/seeds/steps on "
                "every participant?)"
            )
        job_range = hello["range"]
        if job_range is not None:
            if (
                not isinstance(job_range, list)
                or len(job_range) != 2
                or not all(isinstance(edge, int) for edge in job_range)
                or not 0 <= job_range[0] <= job_range[1] <= len(self.state.jobs)
            ):
                return (
                    f"bad static range {job_range!r}: expected [low, high] "
                    f"with 0 <= low <= high <= {len(self.state.jobs)}"
                )
        return None

    def _serve(self, conn: socket.socket) -> None:
        reader = conn.makefile("r", encoding="utf-8")
        shard: Optional[ShardRecord] = None
        try:
            line = reader.readline()
            if not line:
                return
            try:
                hello = json.loads(line)
                if not isinstance(hello, dict):
                    raise ValueError("not a JSON object")
            except ValueError as exc:
                self._send(conn, control_message("reject", error=f"bad handshake: {exc}"))
                return
            error = self._hello_error(hello)
            if error is not None:
                self._send(conn, control_message("reject", error=error))
                return
            shard = ShardRecord(
                name=str(hello["shard"] or f"shard-{len(self.state.shards) + 1}"),
                static=hello["range"] is not None,
            )
            self.state.register(shard)
            if hello["range"] is not None:
                low, high = hello["range"]
                self.state.lease_range(shard, low, high)
            self._send(
                conn,
                control_message(
                    "welcome",
                    jobs=len(self.state.jobs),
                    pending=self.state.pending_count(),
                ),
            )
            self._exchange_loop(conn, reader, shard)
        except OSError:
            # The client vanished mid-read or mid-reply; the release below
            # returns its leases for re-dispatch — nothing else to do.
            pass
        finally:
            if shard is not None:
                self.state.release(shard)
            try:
                reader.close()
            except OSError:  # pragma: no cover - best-effort release
                pass
            conn.close()

    def _exchange_loop(
        self, conn: socket.socket, reader, shard: ShardRecord
    ) -> None:
        """Answer rows with acks and pulls with grants until EOF."""
        while True:
            line = reader.readline()
            if not line:
                return  # shard closed its end: its work is done (or it died)
            try:
                message = json.loads(line)
                if not isinstance(message, dict):
                    raise ValueError("not a JSON object")
            except ValueError as exc:
                self._send(conn, control_message("reject", error=f"bad line: {exc}"))
                return
            op = message.get("op")
            if op is None:  # no "op" key: a campaign row
                try:
                    index = self.state.deliver(shard, message)
                except (ResumeError, ShardProtocolError) as exc:
                    self._send(conn, control_message("reject", error=str(exc)))
                    return
                self._send(conn, control_message("ack", job=index))
            elif op == "pull":
                try:
                    validate_control(message)
                    limit = int(message["max"])
                except (ShardProtocolError, TypeError, ValueError) as exc:
                    self._send(conn, control_message("reject", error=str(exc)))
                    return
                granted, done = self.state.lease(shard, limit)
                self._send(
                    conn, control_message("grant", jobs=granted, done=done)
                )
            else:
                self._send(
                    conn,
                    control_message("reject", error=f"unexpected op {op!r}"),
                )
                return


def run_shard(
    address: str,
    jobs: Sequence[RunJob],
    shard: Optional[Tuple[int, int]] = None,
    name: Optional[str] = None,
    workers: int = 1,
    batch: Optional[int] = None,
    extra_sink: Optional[RowSink] = None,
    prior_rows: Optional[Iterable[Dict[str, object]]] = None,
    retry_errors: bool = False,
    retries: int = 3,
    sink_timing: bool = False,
    cache=None,
    mp_context: str = "spawn",
) -> CampaignResult:
    """Run this machine's share of a collector-fed campaign.

    ``jobs`` is the *full* expanded matrix (every participant expands it
    identically; the handshake enforces that).  ``shard=(index, count)``
    (0-based) selects static mode: this process announces its
    :func:`~repro.campaign.driver.shard_slice` range and runs it.  Without
    ``shard`` the process is a pull worker: it asks the collector for
    ``batch`` job indices at a time (default ``max(workers,``
    :data:`DEFAULT_PULL_BATCH` ``)``) until the collector says ``done``.

    ``prior_rows`` (a shard-local ``--resume``) are uploaded first — the
    collector adopts them and the static remainder shrinks accordingly.
    Every row travels through an acking, reconnecting
    :class:`~repro.campaign.sinks.AckingSocketSink`; ``extra_sink``
    additionally receives each row locally (e.g. the shard's own ``--out``
    file).  Raises :class:`ConnectionError` when the collector stays
    unreachable past the reconnect budget and
    :class:`~repro.campaign.sinks.ShardProtocolError` when it rejects the
    shard; the caller owns ``extra_sink``'s lifecycle.  ``cache``
    (optional, a :class:`~repro.campaign.store.RunCache`) is probed per
    granted batch, so cached rows short-circuit execution on this shard
    and still travel acked to the collector like any executed row.

    Since the driver decomposition this is a thin composition of the
    shared stages: a :class:`~repro.campaign.driver.ShardExecutor` (which
    owns the protocol loop above) draining into a
    :class:`~repro.campaign.driver.RowCollector`.
    """
    executor = ShardExecutor(
        address,
        jobs,
        shard=shard,
        name=name,
        workers=workers,
        mp_context=mp_context,
        batch=batch,
        retries=retries,
        prior_rows=prior_rows or (),
        retry_errors=retry_errors,
    )
    collector = RowCollector(sink=extra_sink, sink_timing=sink_timing, cache=cache)
    workers_used = executor.run((), collector)
    return CampaignResult(
        jobs=executor.jobs_run,
        results=collector.finish(),
        workers=workers_used,
        elapsed_seconds=executor.elapsed,
        store=collector.store,
    )
