"""Campaign engine: seeded scenario matrices fanned out across processes.

One run can now be verified cheaply (streaming monitors over sparse traces);
the paper's claims are statements over *families* of topologies, daemons and
fault schedules.  This package turns a declarative matrix —
scenarios × algorithms × engines × daemons × fault schedules × seeds, where
a scenario is a named one from :mod:`repro.workloads.scenarios` *or* a
randomized one from :mod:`repro.workloads.random_scenarios` — into seeded
:class:`~repro.campaign.jobs.RunJob` objects, executes them across
``multiprocessing`` workers with the streaming spec suite (2-phase
discussion included) and metrics collector attached, and aggregates per-run
verdicts/metrics/throughput into JSONL rows plus a summary table.

Rows are **deterministic**: a campaign's JSONL output is byte-identical for
any worker count (timing lives outside the rows unless explicitly asked
for), so campaign outputs diff cleanly across commits.

Rows are also **crash-safe**: the runner hands every row to an optional
:class:`~repro.campaign.sinks.RowSink` in completion order the moment its
job finishes (line-buffered JSONL file, TCP/Unix socket stream, in-memory
buffer), worker exceptions become ``status="error"`` rows instead of
killing the pool, :mod:`repro.campaign.resume` re-ingests a partial JSONL
stream so ``repro-cc campaign --resume`` executes only the missing jobs,
and :mod:`repro.campaign.adaptive` re-expands cells whose verdicts
disagree across seeds with fresh seeds.

And campaigns **shard across machines**: :mod:`repro.campaign.shard` adds a
collector service (``repro-cc collect``) that hands out job ranges over the
NDJSON socket protocol, collects acked rows from many shard processes
(``repro-cc campaign --collector``), re-dispatches a dead shard's range via
the resume machinery, and merges everything into one campaign file that is
byte-identical to a local ``--jobs 1`` run.

And rows are **cacheable and queryable at scale**: :mod:`repro.campaign.store`
adds a content-addressed run cache (rows are pure functions of their jobs,
so a sha256 over the identity block addresses the row a run *would*
produce — ``repro-cc campaign --cache DIR`` short-circuits re-submitted
jobs with byte-identical stored rows) and an array-backed columnar row
store whose aggregate queries (``repro-cc stats``) replace per-query JSONL
reparsing.

And every frontend drives **one layered pipeline**:
:mod:`repro.campaign.driver` decomposes campaign orchestration into
composable stages — :class:`~repro.campaign.driver.CampaignPlan` (matrix
expansion + resume reconciliation + cache probe), an
:class:`~repro.campaign.driver.Executor`
(:class:`~repro.campaign.driver.SerialExecutor` /
:class:`~repro.campaign.driver.PoolExecutor` /
:class:`~repro.campaign.driver.ShardExecutor`), a
:class:`~repro.campaign.driver.RowCollector` fan-out and a
:class:`~repro.campaign.driver.Finalizer` — composed by
:class:`~repro.campaign.driver.CampaignDriver` for the CLI, the shard
client and the future always-on service alike.

Layers: ``matrix`` (the declarative spec and its expansion), ``jobs`` (the
picklable run job + the spawn-safe worker entry point), ``driver`` (the
plan → dispatch → collect → finalize stages), ``runner`` (the classic
one-call frontend over them), ``sinks``/``resume``/``adaptive``/``store``
(the persistence layer), ``shard`` (the distribution layer).  The CLI
front end is ``repro-cc campaign`` / ``repro-cc collect`` /
``repro-cc stats``.
"""

from repro.campaign.adaptive import disagreement_cells, rerun_jobs
from repro.campaign.batched import execute_job_group, group_jobs
from repro.campaign.driver import (
    CampaignDriver,
    CampaignOutcome,
    CampaignPlan,
    Executor,
    Finalizer,
    PoolExecutor,
    RowCollector,
    SerialExecutor,
    ShardExecutor,
)
from repro.campaign.jobs import JobResult, RunJob, error_result, execute_job
from repro.campaign.matrix import CampaignSpec, FaultSchedule, expand_jobs
from repro.campaign.resume import (
    ResumeError,
    as_job_result,
    merge_results,
    read_rows,
    reconcile_extra_rows,
    remaining_jobs,
    validate_row_matches_job,
    validate_rows_match_jobs,
)
from repro.campaign.runner import CampaignResult, run_campaign, shard_slice
from repro.campaign.shard import (
    CONTROL_SCHEMAS,
    Collector,
    CollectorState,
    ShardRecord,
    control_message,
    hello_message,
    matrix_fingerprint,
    run_shard,
    validate_control,
)
from repro.campaign.sinks import (
    AckingSocketSink,
    BufferedSink,
    JsonlSink,
    RowSink,
    SINK_TYPES,
    ShardProtocolError,
    SocketSink,
    TeeSink,
    parse_address,
    sink_from_spec,
    write_lines_atomic,
)
from repro.campaign.store import (
    CACHE_KEY_ATTRS,
    ColumnStore,
    RunCache,
    run_cache_key,
    run_cache_key_for_row,
)

#: Dotted names handed to ``multiprocessing`` workers.  ``tools/check_repo.py``
#: verifies each is a module-top-level callable that pickle round-trips —
#: i.e. resolvable from a spawn context — so a refactor cannot silently break
#: ``repro-cc campaign --jobs N``.
SPAWN_ENTRY_POINTS = ("repro.campaign.jobs.execute_job",)

__all__ = [
    "AckingSocketSink",
    "BufferedSink",
    "CACHE_KEY_ATTRS",
    "CONTROL_SCHEMAS",
    "CampaignDriver",
    "CampaignOutcome",
    "CampaignPlan",
    "CampaignResult",
    "CampaignSpec",
    "Collector",
    "CollectorState",
    "ColumnStore",
    "Executor",
    "FaultSchedule",
    "Finalizer",
    "JobResult",
    "JsonlSink",
    "PoolExecutor",
    "ResumeError",
    "RowCollector",
    "RowSink",
    "RunCache",
    "RunJob",
    "SINK_TYPES",
    "SPAWN_ENTRY_POINTS",
    "SerialExecutor",
    "ShardExecutor",
    "ShardProtocolError",
    "ShardRecord",
    "SocketSink",
    "TeeSink",
    "as_job_result",
    "control_message",
    "disagreement_cells",
    "error_result",
    "execute_job",
    "execute_job_group",
    "expand_jobs",
    "group_jobs",
    "hello_message",
    "matrix_fingerprint",
    "merge_results",
    "parse_address",
    "read_rows",
    "reconcile_extra_rows",
    "remaining_jobs",
    "rerun_jobs",
    "run_cache_key",
    "run_cache_key_for_row",
    "run_campaign",
    "run_shard",
    "shard_slice",
    "sink_from_spec",
    "validate_control",
    "validate_row_matches_job",
    "validate_rows_match_jobs",
    "write_lines_atomic",
]
