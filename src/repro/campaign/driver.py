"""The layered campaign driver: plan → dispatch → collect → finalize.

Every frontend that runs campaigns — the ``repro-cc campaign`` CLI, the
shard client feeding a ``collect`` service, a notebook, the future
always-on verification service — drives the same four stages:

* :class:`CampaignPlan` — matrix expansion, resume reconciliation (prior
  rows split into in-matrix and re-run-appendix parts), static shard
  selection and the :class:`~repro.campaign.store.RunCache` probe.  Its
  outputs are ``cached_results`` (hits, in job order) and ``todo`` (what
  actually needs executing).
* an :class:`Executor` — :class:`SerialExecutor` (owns the batched
  same-cell grouping), :class:`PoolExecutor` (a ``multiprocessing`` drain
  with a chosen start method) or :class:`ShardExecutor` (the acking
  collector-client protocol).  Executors know nothing about sinks or
  caches; they push every finished :class:`~repro.campaign.jobs.JobResult`
  into a collector.
* a :class:`RowCollector` — the single fan-out point: each completed row
  goes to the cache, the result list, the live
  :class:`~repro.campaign.store.ColumnStore` aggregate, the crash-safety
  sink and the progress callback, in that order, exactly once.
* a :class:`Finalizer` — summary table, cache statistics, the atomic
  job-order ``--out`` rewrite and the exit-code derivation, returned as a
  :class:`CampaignOutcome`.

:class:`CampaignDriver` composes the stages into the full CLI semantics
(resume + cache + sinks + static shards + collector mode +
``--rerun-disagreements``), with ``info``/``warn`` callbacks instead of
hardwired printing, so ``cli._cmd_campaign`` is a flag-parsing adapter and
a service can run the identical pipeline programmatically.

The byte-identity contract is unchanged: rows are pure functions of their
jobs, the collector preserves completion-order streaming for sinks, and
the finalizer's job-order sort + sorted-key serialization make every
frontend's artifact byte-identical for any worker count, resume history,
cache state or shard layout.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.campaign.adaptive import rerun_jobs
from repro.campaign.jobs import JobResult, RunJob, execute_job
from repro.campaign.matrix import CampaignSpec, expand_jobs
from repro.campaign.resume import (
    merge_results,
    reconcile_extra_rows,
    remaining_jobs,
    validate_rows_match_jobs,
)
from repro.campaign.sinks import RowSink, row_line, write_lines_atomic
from repro.campaign.store import ColumnStore, RunCache


def shard_slice(jobs: Sequence[RunJob], index: int, count: int) -> List[RunJob]:
    """The ``index``-th of ``count`` contiguous, near-equal job ranges.

    The static sharding rule for multi-machine campaigns: every shard
    expands the same matrix and selects its own range locally, so nothing
    but ``index``/``count`` needs to travel.  Ranges partition the job list
    exactly (sizes differ by at most one, earlier shards get the longer
    ranges), so N shards' ranges merged by job index reproduce the full
    campaign.  ``index`` is 0-based.
    """
    if count < 1:
        raise ValueError("shard count must be >= 1")
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}), got {index}")
    base, extra = divmod(len(jobs), count)
    low = index * base + min(index, extra)
    high = low + base + (1 if index < extra else 0)
    return list(jobs[low:high])


class RowCollector:
    """The collect stage: fan each finished row everywhere it must go.

    One object owns every per-row side effect, in a fixed order — store
    into the cache (executed rows only; the cache refuses error rows),
    append to the result list, feed the live :class:`ColumnStore`
    aggregate, stream to the crash-safety ``sink`` and invoke the
    ``progress`` callback — so serial, pool and shard executors cannot
    drift apart on what "a row completed" means.

    ``sink`` lifecycle belongs to the caller (never closed here), matching
    the historical :func:`~repro.campaign.runner.run_campaign` contract.
    """

    def __init__(
        self,
        sink: Optional[RowSink] = None,
        sink_timing: bool = False,
        cache: Optional[RunCache] = None,
        progress: Optional[Callable[[JobResult, int, int], None]] = None,
        total: int = 0,
        store: Optional[ColumnStore] = None,
    ) -> None:
        self.sink = sink
        self.sink_timing = sink_timing
        self.cache = cache
        self.progress = progress
        self.total = total
        self.store = ColumnStore() if store is None else store
        self.results: List[JobResult] = []

    def collect(self, result: JobResult) -> None:
        """A freshly executed result: cached, aggregated, streamed."""
        self._fan(result, executed=True)

    def add_cached(self, result: JobResult) -> None:
        """A cache hit: aggregated and streamed, but never re-stored."""
        self._fan(result, executed=False)

    def _fan(self, result: JobResult, executed: bool) -> None:
        if executed and self.cache is not None:
            self.cache.store(result)  # no-op for error rows
        self.results.append(result)
        self.store.write_row(result.row)
        if self.sink is not None:
            self.sink.write_row(result.output_row(include_timing=self.sink_timing))
        if self.progress is not None:
            self.progress(result, len(self.results), self.total)

    def absorb_prior(self, results: Iterable[JobResult]) -> None:
        """Fold resumed rows into the live aggregate only.

        Prior rows are already on disk and already travelled through a
        sink in their original campaign; here they only need to join the
        :class:`ColumnStore` so the summary covers the merged whole.
        """
        for result in results:
            self.store.write_row(result.row)

    def finish(self) -> List[JobResult]:
        """Restore determinism: the collected results in job-index order."""
        self.results.sort(key=lambda result: result.index)
        return self.results


class CampaignPlan:
    """The plan stage: what must run, what is already answered.

    Expands a :class:`~repro.campaign.matrix.CampaignSpec` (or adopts
    pre-expanded jobs), validates ``prior_rows`` against the matrix
    (raising :class:`~repro.campaign.resume.ResumeError` on mismatch),
    splits them into ``base_prior`` (in-matrix) and ``extra_prior``
    (re-run-appendix rows beyond the matrix, see
    :func:`~repro.campaign.resume.reconcile_extra_rows`), selects the
    static ``shard`` slice if one is given, and probes the ``cache`` over
    the pending jobs — hits land in ``cached_results`` (job order),
    everything else in ``todo``.
    """

    def __init__(
        self,
        spec_or_jobs: Union[CampaignSpec, Sequence[RunJob]],
        prior_rows: Iterable[Dict[str, object]] = (),
        retry_errors: bool = False,
        shard: Optional[Tuple[int, int]] = None,
        cache: Optional[RunCache] = None,
    ) -> None:
        if isinstance(spec_or_jobs, CampaignSpec):
            self.jobs: List[RunJob] = expand_jobs(spec_or_jobs)
        else:
            self.jobs = list(spec_or_jobs)
        self.prior_rows = list(prior_rows)
        if self.prior_rows:
            validate_rows_match_jobs(self.jobs, self.prior_rows)
        # Rows at indices beyond the matrix come from an earlier
        # --rerun-disagreements pass; the base matrix cannot vouch for
        # them (the orphan/stale contract lives in CampaignDriver).
        self.base_prior = [
            row for row in self.prior_rows if int(row["job"]) < len(self.jobs)
        ]
        self.extra_prior = [
            row for row in self.prior_rows if int(row["job"]) >= len(self.jobs)
        ]
        self.remaining = remaining_jobs(
            self.jobs, self.prior_rows, retry_errors=retry_errors
        )
        self.shard = shard
        if shard is not None:
            index, count = shard
            self.selected = shard_slice(self.jobs, index, count)
            self.pending = remaining_jobs(
                self.selected, self.prior_rows, retry_errors=retry_errors
            )
        else:
            self.selected = self.jobs
            self.pending = self.remaining
        self.cache = cache
        self.cached_results: List[JobResult] = []
        self.todo: List[RunJob] = list(self.pending)
        if cache is not None:
            self.todo = []
            for job in self.pending:
                hit = cache.result_for(job)
                if hit is None:
                    self.todo.append(job)
                else:
                    self.cached_results.append(hit)


class Executor(Protocol):
    """The dispatch stage: run ``todo``, push every result at ``collector``.

    Returns the number of workers actually used (feeds the summary's
    ``xN`` annotation).  Executors never sort, sink, cache or aggregate —
    that is the collector's job — so adding a dispatch backend (asyncio
    service workers, a remote pool) cannot fork the row semantics.
    """

    def run(self, todo: Sequence[RunJob], collector: RowCollector) -> int:
        ...


class SerialExecutor:
    """In-process dispatch; owns the batched same-cell grouping.

    Consecutive same-scenario seeds with ``engine="batched"`` run as one
    vectorized group, split back into per-seed rows that byte-match the
    solo rows (see :mod:`repro.campaign.batched`).  Groups preserve job
    order, so sinks still see rows in job order here.
    """

    def run(self, todo: Sequence[RunJob], collector: RowCollector) -> int:
        from repro.campaign.batched import execute_job_group, group_jobs

        for group in group_jobs(todo):
            if len(group) == 1 and group[0].engine != "batched":
                collector.collect(execute_job(group[0]))
            else:
                for result in execute_job_group(group):
                    collector.collect(result)
        return 1


class PoolExecutor:
    """Multiprocessing dispatch with a configurable start method.

    ``spawn`` (the default) is available everywhere and the strictest
    about what a worker can receive, which keeps
    :func:`~repro.campaign.jobs.execute_job` honest; ``fork`` skips the
    per-worker interpreter start-up that dominates very small campaigns
    on POSIX.  The drain is unordered — long jobs do not
    head-of-line-block short ones — and determinism is restored by the
    collector's final sort.
    """

    def __init__(self, jobs: int, mp_context: str = "spawn") -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.mp_context = mp_context

    def run(self, todo: Sequence[RunJob], collector: RowCollector) -> int:
        if not todo:
            return 1
        workers = min(self.jobs, len(todo))
        context = multiprocessing.get_context(self.mp_context)
        with context.Pool(processes=workers) as pool:
            for result in pool.imap_unordered(execute_job, todo, chunksize=1):
                collector.collect(result)
        return workers


class ShardExecutor:
    """Collector-client dispatch: this machine's share of a shared matrix.

    Wraps the acking NDJSON protocol from :mod:`repro.campaign.shard`:
    static mode announces its :func:`shard_slice` range in the hello and
    runs it; pull mode asks the collector for job-index batches until it
    says ``done``.  Every row travels through a reconnecting
    :class:`~repro.campaign.sinks.AckingSocketSink` teed in front of
    whatever sink the collector already carries; each granted batch goes
    through its own :class:`CampaignPlan` (so a
    :class:`~repro.campaign.store.RunCache` short-circuits per grant,
    never emitting rows for jobs this shard was not granted) and then the
    serial or pool executor.

    Raises :class:`ConnectionError` when the collector stays unreachable
    past the reconnect budget and
    :class:`~repro.campaign.sinks.ShardProtocolError` when it rejects the
    shard.  ``jobs_run`` and ``elapsed`` accumulate what this shard
    actually executed, for the frontend's :class:`CampaignResult`.
    """

    def __init__(
        self,
        address: str,
        jobs: Sequence[RunJob],
        shard: Optional[Tuple[int, int]] = None,
        name: Optional[str] = None,
        workers: int = 1,
        mp_context: str = "spawn",
        batch: Optional[int] = None,
        retries: int = 3,
        prior_rows: Iterable[Dict[str, object]] = (),
        retry_errors: bool = False,
    ) -> None:
        self.address = address
        self.jobs = list(jobs)
        self.by_index = {job.index: job for job in self.jobs}
        self.prior = [
            row
            for row in prior_rows
            if isinstance(row.get("job"), int) and row["job"] in self.by_index
        ]
        self.shard = shard
        self.name = name
        self.workers = workers
        self.mp_context = mp_context
        self.batch = batch
        self.retries = retries
        self.retry_errors = retry_errors
        self.jobs_run: List[RunJob] = []
        self.elapsed = 0.0

    def run(self, todo: Sequence[RunJob], collector: RowCollector) -> int:
        # ``todo`` is advisory here: the collector service owns dispatch
        # (it leases the static range or grants pull batches), so what this
        # shard runs is decided on the wire, not by the local plan.
        from repro.campaign.shard import (
            DEFAULT_PULL_BATCH,
            control_message,
            hello_message,
        )
        from repro.campaign.sinks import AckingSocketSink, ShardProtocolError, TeeSink

        local: Optional[List[RunJob]] = None
        job_range: Optional[Tuple[int, int]] = None
        name = self.name
        if self.shard is not None:
            index, count = self.shard
            local = shard_slice(self.jobs, index, count)
            # The announced range covers the *unfiltered* slice: resumed
            # rows are uploaded below, so the collector still leases the
            # whole range to this shard and adopts the prior rows into it.
            job_range = (local[0].index, local[-1].index + 1) if local else (0, 0)
            if self.prior:
                local = remaining_jobs(local, self.prior, retry_errors=self.retry_errors)
            if name is None:
                name = f"{index + 1}/{count}"
        client = AckingSocketSink(
            self.address,
            hello=hello_message(self.jobs, shard=name, job_range=job_range),
            retries=self.retries,
        )
        # The acking client fronts whatever sink the collector already has
        # (e.g. the shard's local --out file); restored on the way out so
        # the collector outlives this executor unchanged.
        outer = collector.sink
        collector.sink = client if outer is None else TeeSink([client, outer])
        workers_used = 1
        try:
            for row in self.prior:
                client.write_row(row)
            if local is not None:
                workers_used = max(workers_used, self._dispatch(local, collector))
            else:
                limit = (
                    self.batch
                    if self.batch is not None
                    else max(self.workers, DEFAULT_PULL_BATCH)
                )
                while True:
                    grant = client.request(control_message("pull", max=limit))
                    if grant.get("op") != "grant":
                        raise ShardProtocolError(
                            f"collector at {self.address} answered a pull with {grant!r}"
                        )
                    try:
                        granted = [
                            self.by_index[index] for index in grant.get("jobs") or ()
                        ]
                    except (KeyError, TypeError) as exc:
                        raise ShardProtocolError(
                            f"collector at {self.address} granted unknown jobs: "
                            f"{grant.get('jobs')!r}"
                        ) from exc
                    if granted:
                        workers_used = max(
                            workers_used, self._dispatch(granted, collector)
                        )
                    elif grant.get("done"):
                        break
                    # An empty, not-done grant means the collector briefly
                    # had nothing unleased; its lease() blocks server-side,
                    # so this is rare — just ask again.
        finally:
            collector.sink = outer
            client.close()
        return workers_used

    def _dispatch(self, granted: List[RunJob], collector: RowCollector) -> int:
        """One granted batch through plan → cache drain → serial/pool."""
        start = time.perf_counter()  # repro-lint: disable=RL102 -- shard wall time is summary-only, never in rows
        plan = CampaignPlan(granted, cache=collector.cache)
        for hit in plan.cached_results:
            collector.add_cached(hit)
        self.jobs_run.extend(granted)
        if self.workers == 1 or len(plan.todo) <= 1:
            workers = SerialExecutor().run(plan.todo, collector)
        else:
            workers = PoolExecutor(self.workers, mp_context=self.mp_context).run(
                plan.todo, collector
            )
        self.elapsed += time.perf_counter() - start  # repro-lint: disable=RL102 -- summary-only
        return workers


@dataclass
class CampaignOutcome:
    """What the finalize stage decided: the result, its rendering, the code."""

    result: "CampaignResult"  # noqa: F821 - resolved lazily, see Finalizer
    summary: str
    exit_code: int


class Finalizer:
    """The finalize stage: summary, cache stats, atomic rewrite, exit code.

    ``info`` (default: silent) receives the rendered table and the
    human-facing lines; a CLI passes ``print``, a service can capture
    them.  The ``--out`` rewrite is atomic
    (:func:`~repro.campaign.sinks.write_lines_atomic`), so an interrupt
    mid-rewrite leaves the completion-order stream intact for resume —
    ``KeyboardInterrupt`` deliberately propagates for the frontend to map.

    Exit codes: ``3`` error rows present, ``1`` a checked property was
    violated, ``0`` clean.
    """

    def __init__(
        self,
        out: Optional[str] = None,
        include_timing: bool = False,
        info: Optional[Callable[[str], None]] = None,
        prefix: str = "campaign",
    ) -> None:
        self.out = out
        self.include_timing = include_timing
        self.info = info
        self.prefix = prefix

    def _say(self, message: str) -> None:
        if self.info is not None:
            self.info(message)

    def finalize(
        self,
        result,
        cache: Optional[RunCache] = None,
        title: Optional[str] = None,
        rows: Optional[Sequence[Dict[str, object]]] = None,
        write_before_summary: bool = False,
    ) -> CampaignOutcome:
        """Render and persist a finished campaign.

        ``rows`` (optional) writes those exact dicts verbatim instead of
        re-deriving lines from ``result`` — the collector service's path,
        where whatever the shards sent (including ``--timing`` fields)
        must survive byte-for-byte.  ``write_before_summary`` moves the
        write ahead of the table, matching ``repro-cc collect``'s
        historical ordering (rows first, then the rendering).
        """
        from repro.analysis.report import format_table

        if title is None:
            title = (
                f"Campaign: {len(result.results)} runs x {result.workers} workers "
                f"({result.violations} with violations, {result.errors} errors)"
            )
        if self.out and write_before_summary:
            self._write(result, rows)
        summary = format_table(result.summary_rows(), title=title)
        self._say(summary)
        if cache is not None:
            self._say(
                f"{self.prefix}: cache {cache.root}: {cache.hits} hit(s), "
                f"{cache.misses} miss(es), {cache.stored} row(s) stored"
            )
        if self.out and not write_before_summary:
            self._write(result, rows)
        if self.out:
            count = len(rows) if rows is not None else len(result.results)
            self._say(f"wrote {count} rows to {self.out}")
        exit_code = 3 if result.errors else (0 if result.ok else 1)
        return CampaignOutcome(result=result, summary=summary, exit_code=exit_code)

    def _write(self, result, rows: Optional[Sequence[Dict[str, object]]]) -> None:
        if rows is not None:
            write_lines_atomic(self.out, (row_line(row) for row in rows))
        else:
            result.write_jsonl(self.out, include_timing=self.include_timing)


class CampaignDriver:
    """Plan → dispatch → collect → finalize with the full CLI semantics.

    The one object every frontend builds: ``cli._cmd_campaign`` maps flags
    onto the constructor and exit codes off the outcome, a shard client is
    ``collector="tcp:..."``, and the future service layer calls
    :meth:`execute` per submission and serves aggregates from
    ``result.store``.  ``info``/``warn`` (both optional) receive the
    stdout/stderr lines the CLI historically printed, each prefixed with
    ``prefix + ": "``.

    Error handling is deliberately transparent:
    :class:`~repro.campaign.resume.ResumeError`, :class:`ConnectionError`,
    :class:`~repro.campaign.sinks.ShardProtocolError` and
    ``KeyboardInterrupt`` propagate for the frontend to map onto its own
    exit codes (2/4/4/130 in the CLI).  The ``sink``'s lifecycle belongs
    to the caller.  ``rerun_disagreements`` cannot be combined with
    ``collector`` (re-run jobs fall outside the matrix the shards agreed
    on); frontends are expected to reject that combination up front.
    """

    def __init__(
        self,
        spec_or_jobs: Union[CampaignSpec, Sequence[RunJob]],
        jobs: int = 1,
        mp_context: str = "spawn",
        sink: Optional[RowSink] = None,
        timing: bool = False,
        cache: Optional[RunCache] = None,
        prior_rows: Iterable[Dict[str, object]] = (),
        retry_errors: bool = False,
        rerun_disagreements: bool = False,
        shard: Optional[Tuple[int, int]] = None,
        collector: Optional[str] = None,
        shard_name: Optional[str] = None,
        batch: Optional[int] = None,
        retries: int = 3,
        progress: Optional[Callable[[JobResult, int, int], None]] = None,
        out: Optional[str] = None,
        prefix: str = "campaign",
        info: Optional[Callable[[str], None]] = None,
        warn: Optional[Callable[[str], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.spec_or_jobs = spec_or_jobs
        self.jobs = jobs
        self.mp_context = mp_context
        self.sink = sink
        self.timing = timing
        self.cache = cache
        self.prior_rows = list(prior_rows)
        self.retry_errors = retry_errors
        self.rerun_disagreements = rerun_disagreements
        self.shard = shard
        self.collector = collector
        self.shard_name = shard_name
        self.batch = batch
        self.retries = retries
        self.progress = progress
        self.out = out
        self.prefix = prefix
        self.info = info
        self.warn = warn
        self.result = None

    def _info(self, message: str) -> None:
        if self.info is not None:
            self.info(f"{self.prefix}: {message}")

    def _warn(self, message: str) -> None:
        if self.warn is not None:
            self.warn(f"{self.prefix}: {message}")

    def _dispatch(self, todo: Sequence[RunJob], collector: RowCollector) -> int:
        if self.jobs == 1 or len(todo) <= 1:
            return SerialExecutor().run(todo, collector)
        return PoolExecutor(self.jobs, mp_context=self.mp_context).run(todo, collector)

    def execute(self):
        """Run the campaign; returns (and keeps) the ``CampaignResult``."""
        from repro.campaign.runner import CampaignResult

        start = time.perf_counter()  # repro-lint: disable=RL102 -- campaign wall time is --timing-only, never in rows
        # Collector mode leaves shard selection and cache probing to the
        # service protocol (ShardExecutor plans per granted batch); local
        # mode plans everything up front.
        plan = CampaignPlan(
            self.spec_or_jobs,
            prior_rows=self.prior_rows,
            retry_errors=self.retry_errors,
            shard=None if self.collector else self.shard,
            cache=None if self.collector else self.cache,
        )
        jobs_all = list(plan.jobs)
        collector = RowCollector(
            sink=self.sink,
            sink_timing=self.timing,
            cache=self.cache,
            progress=self.progress,
            total=len(plan.jobs),
        )
        if plan.prior_rows and self.out:
            self._info(
                f"resuming {self.out}: {len(plan.prior_rows)} row(s) already "
                f"present, {len(plan.remaining)} of {len(plan.jobs)} job(s) remaining"
            )
        if self.collector is not None:
            executor = ShardExecutor(
                self.collector,
                plan.jobs,
                shard=self.shard,
                name=self.shard_name,
                workers=self.jobs,
                mp_context=self.mp_context,
                batch=self.batch,
                retries=self.retries,
                prior_rows=plan.prior_rows,
                retry_errors=self.retry_errors,
            )
            workers = executor.run((), collector)
        else:
            if plan.shard is not None and plan.selected:
                index, count = plan.shard
                self._info(
                    f"static shard {index + 1}/{count}: jobs "
                    f"{plan.selected[0].index}..{plan.selected[-1].index} "
                    f"of {len(plan.jobs)}"
                )
            for hit in plan.cached_results:
                collector.add_cached(hit)
            workers = self._dispatch(plan.todo, collector)
        executed = list(collector.results)
        merged = merge_results(plan.prior_rows, executed)
        if self.rerun_disagreements:
            base_results = [r for r in merged if r.index < len(plan.jobs)]
            extra_jobs = rerun_jobs(plan.jobs, base_results)
            # Prior extra rows are only trustworthy if they match the
            # regenerated re-run jobs identity-for-identity; a stale row
            # (the disagreement set changed, e.g. retry_errors flipped a
            # base verdict) must re-run, not masquerade as another job.
            valid_extra, stale_extra = reconcile_extra_rows(extra_jobs, plan.extra_prior)
            if stale_extra:
                self._warn(
                    f"{len(stale_extra)} prior re-run row(s) do not match the "
                    "regenerated re-run jobs (stale disagreement set); "
                    "re-running them"
                )
            merged = merge_results(plan.base_prior + valid_extra, executed)
            if extra_jobs:
                jobs_all = plan.jobs + extra_jobs
                extra_todo = remaining_jobs(
                    extra_jobs, valid_extra, retry_errors=self.retry_errors
                )
                self._info(
                    f"verdicts disagree across seeds — appending "
                    f"{len(extra_jobs)} fresh-seed job(s) "
                    f"({len(extra_todo)} still to execute)"
                )
                if extra_todo:
                    extra_plan = CampaignPlan(extra_todo, cache=self.cache)
                    for hit in extra_plan.cached_results:
                        collector.add_cached(hit)
                    self._dispatch(extra_plan.todo, collector)
                    executed = list(collector.results)
                    merged = merge_results(plan.base_prior + valid_extra, executed)
        elif plan.extra_prior:
            # The pinned orphan contract: without rerun_disagreements the
            # re-run jobs are not regenerated, so these rows cannot be
            # validated — but dropping completed rows would break the
            # no-row-loss guarantee.  Kept, counted, called out.
            self._warn(
                f"keeping {len(plan.extra_prior)} re-run row(s) beyond the "
                f"{len(plan.jobs)}-job matrix (from an earlier "
                "--rerun-disagreements); pass --rerun-disagreements to "
                "validate them against regenerated re-run jobs"
            )
        # Resumed rows that were kept (not re-executed) join the live
        # aggregate so the summary covers the merged whole.
        collected = {result.index for result in collector.results}
        collector.absorb_prior(r for r in merged if r.index not in collected)
        self.result = CampaignResult(
            jobs=jobs_all,
            results=merged,
            workers=workers,
            elapsed_seconds=time.perf_counter() - start,  # repro-lint: disable=RL102 -- --timing-only
            store=collector.store,
        )
        return self.result

    def finalize(self) -> CampaignOutcome:
        """Finalize the (already or now) executed campaign."""
        if self.result is None:
            self.execute()
        finalizer = Finalizer(
            out=self.out,
            include_timing=self.timing,
            info=self.info,
            prefix=self.prefix,
        )
        return finalizer.finalize(self.result, cache=self.cache)

    def run(self) -> CampaignOutcome:
        """The whole pipeline: :meth:`execute` then :meth:`finalize`."""
        self.execute()
        return self.finalize()
