"""Batched campaign execution: many same-scenario seeds in one lockstep call.

The campaign matrix expands seeds innermost, so a matrix cell's seed sweep
arrives as a consecutive run of :class:`~repro.campaign.jobs.RunJob` objects
that differ *only* in ``index`` and ``seed``.  :func:`group_jobs` collects
those runs (for ``engine="batched"`` jobs) into groups of up to
:data:`MAX_GROUP_LANES` lanes, and :func:`execute_job_group` executes one
group as a single :class:`~repro.kernel.batched.BatchedScheduler` run —
compiling the scenario once, then giving every lane its own seed-derived
daemon, initial configuration, fault injector and streaming monitors.

Row identity is the whole point: each lane's :class:`JobResult` is assembled
by the same :func:`~repro.campaign.jobs.completed_row` helper the solo path
uses, fed by the same streaming collector/spec-suite observers, over a
step-record stream the lane contract guarantees is identical to the solo
run's.  Sinks, ``--resume`` and the shard collector therefore see rows that
are byte-identical whether a cell was executed batched, solo, or split
across batches.

Fallback is total: if the scenario is outside the batched engine's coverage
(:class:`~repro.kernel.batched.BatchedUnsupported` — probabilistic
environments, unknown algorithm subclasses, missing numpy) or *anything*
else goes wrong in the group run, every job in the group is re-run solo on
the ``incremental`` engine, which produces the identical row.  Like
:func:`~repro.campaign.jobs.execute_job`, :func:`execute_job_group` never
raises.

This module imports without numpy; the dependency is only exercised when a
group actually compiles (and its absence is just another fallback cause).
"""

from __future__ import annotations

import time
from dataclasses import fields, replace
from typing import List, Optional, Sequence, Tuple

from repro.campaign.jobs import (
    JobResult,
    RunJob,
    _run_job,
    completed_row,
    error_result,
)
from repro.kernel.batched import BATCHED_ENGINE

#: Lanes per lockstep group.  Bounds peak memory (arrays are ``(runs, n)``)
#: and keeps the post-group row flush responsive for streaming sinks; a
#: matrix cell with more seeds simply spans several byte-identical groups
#: (the lane-independence property the batch-splitting tests assert).
MAX_GROUP_LANES = 256

#: RunJob fields that may vary inside one group.  Everything else — the
#: entire scenario shape — must be equal, or the jobs describe different
#: lockstep programs.
_LANE_FIELDS = ("index", "seed")

_GROUP_FIELDS = tuple(
    f.name for f in fields(RunJob) if f.name not in _LANE_FIELDS
)


def group_key(job: RunJob) -> Tuple[object, ...]:
    """Everything about a job except its lane identity (index, seed)."""
    return tuple(getattr(job, name) for name in _GROUP_FIELDS)


def group_jobs(jobs: Sequence[RunJob]) -> List[List[RunJob]]:
    """Partition a job list into execution groups, preserving order.

    Consecutive ``batched``-engine jobs with equal :func:`group_key` share a
    group (capped at :data:`MAX_GROUP_LANES`); every other job is its own
    singleton group.  Only *consecutive* runs are merged so the runner's
    completion order — and therefore every streaming sink's row order —
    stays exactly the job order.
    """
    groups: List[List[RunJob]] = []
    current: List[RunJob] = []
    current_key: Optional[Tuple[object, ...]] = None
    for job in jobs:
        if job.engine != BATCHED_ENGINE:
            if current:
                groups.append(current)
                current = []
                current_key = None
            groups.append([job])
            continue
        key = group_key(job)
        if current and key == current_key and len(current) < MAX_GROUP_LANES:
            current.append(job)
        else:
            if current:
                groups.append(current)
            current = [job]
            current_key = key
    if current:
        groups.append(current)
    return groups


def execute_job_group(jobs: Sequence[RunJob]) -> List[JobResult]:
    """Execute one group; return a :class:`JobResult` per job, in job order.

    **Never raises.**  The batched attempt covers the whole group; on any
    failure (coverage gap, missing numpy, a genuine bug) each job is re-run
    solo on the ``incremental`` engine, and a job whose solo run *also*
    raises becomes an error row — the same terminal behaviour as
    :func:`~repro.campaign.jobs.execute_job`.
    """
    start = time.perf_counter()  # repro-lint: disable=RL102 -- elapsed_seconds is --timing-only, stripped from rows
    try:
        results = _run_group(jobs)
    except Exception:
        results = None
    if results is not None:
        # Wall time is measured per group; attribute an equal share to each
        # lane.  Timing is --timing-only and stripped from deterministic rows.
        share = (time.perf_counter() - start) / len(jobs)  # repro-lint: disable=RL102 -- --timing-only
        return [replace(result, elapsed_seconds=share) for result in results]
    fallback: List[JobResult] = []
    for job in jobs:
        job_start = time.perf_counter()  # repro-lint: disable=RL102 -- --timing-only
        try:
            fallback.append(_run_job(job, runtime_engine="incremental"))
        except Exception as exc:
            fallback.append(
                error_result(
                    job, exc, elapsed_seconds=time.perf_counter() - job_start  # repro-lint: disable=RL102 -- --timing-only
                )
            )
    return fallback


def _run_group(jobs: Sequence[RunJob]) -> List[JobResult]:
    """The batched attempt: compile once, run all lanes, assemble rows."""
    from repro.core.batched_program import compile_program
    from repro.core.runner import CommitteeCoordinator
    from repro.kernel.batched import BatchedScheduler
    from repro.kernel.faults import FaultInjector, arbitrary_configuration
    from repro.metrics.collector import StreamingMetricsCollector
    from repro.spec.streaming import StreamingSpecSuite

    lead = jobs[0]
    hypergraph = lead.build_hypergraph()
    # The algorithm object is scenario-shaped only (seed feeds the daemon,
    # engine the scheduler — neither is consulted here), so one instance
    # serves every lane, exactly as one solo run's would.
    algorithm = CommitteeCoordinator(
        hypergraph,
        algorithm=lead.algorithm,
        token=lead.token,
        seed=lead.seed,
        engine="incremental",
    ).algorithm
    program = compile_program(algorithm, lead.build_environment())

    initials = []
    daemons = []
    injectors = []
    collectors = []
    suites = []
    listeners = []
    for job in jobs:
        initials.append(
            arbitrary_configuration(algorithm, seed=job.seed)
            if job.arbitrary_start
            else algorithm.initial_configuration()
        )
        daemons.append(job.build_daemon())
        injectors.append(
            FaultInjector(algorithm, fraction=job.fault_fraction, seed=job.seed + 1)
            if job.fault_every
            else None
        )
        collector = StreamingMetricsCollector(hypergraph)
        suite = StreamingSpecSuite(
            hypergraph,
            grace_steps=job.grace_steps,
            stream=collector.stream,
            fairness=collector.fairness_monitor,
            check_discussion=True,
        )
        collectors.append(collector)
        suites.append(suite)
        listeners.append((collector.observe_step, suite.observe_step))

    scheduler = BatchedScheduler(
        program,
        initials,
        daemons,
        injectors=injectors if lead.fault_every else None,
        fault_every=lead.fault_every,
        step_listeners=listeners,
        record=True,
    )
    lanes = scheduler.run(lead.max_steps)

    results: List[JobResult] = []
    for job, lane, collector, suite in zip(jobs, lanes, collectors, suites):
        metrics = collector.metrics(lane.trace)
        verdicts = suite.verdicts()
        row = completed_row(job, lane.steps, lane.stop_reason, metrics, verdicts)
        results.append(
            JobResult(
                index=job.index,
                row=row,
                steps=lane.steps,
                elapsed_seconds=0.0,
                ok=verdicts.all_hold,
            )
        )
    return results
