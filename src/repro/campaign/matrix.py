"""Declarative campaign matrices and their expansion into run jobs.

A :class:`CampaignSpec` names the axes; :func:`expand_jobs` takes the cross
product.  Named scenarios cross with every axis
(scenario × algorithm × token × engine × daemon × fault schedule × seed);
randomized scenarios (drawn by
:func:`~repro.workloads.random_scenarios.random_scenario`) carry their own
token, daemon, environment and fault schedule, so they cross only with
algorithms × engines × seeds — the point of a randomized scenario is that
*its* dimensions were drawn from the seed.

Expansion is eager and validating: unknown scenario names, algorithms or
malformed fault schedules fail here, before any worker process is spawned.
Job indices are assigned in expansion order, which fixes the row order of
the campaign's JSONL output regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.campaign.jobs import RunJob
from repro.core.runner import ALGORITHMS, DAEMONS, TOKEN_MODULES
from repro.workloads.random_scenarios import random_scenarios
from repro.workloads.request_models import environment_from_spec
from repro.workloads.scenarios import scenario_by_name

ENGINES_CHOICES = ("auto", "dense", "incremental", "batched")


@dataclass(frozen=True)
class FaultSchedule:
    """A mid-run transient-fault schedule: corrupt every ``every`` steps.

    ``every == 0`` is the clean schedule.  ``fraction`` is the share of
    processes hit per burst (see
    :class:`~repro.kernel.faults.FaultInjector`).
    """

    every: int = 0
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.every < 0:
            raise ValueError("fault schedule: every must be >= 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fault schedule: fraction must be in (0, 1]")

    @property
    def name(self) -> str:
        return "none" if not self.every else f"burst-{self.every}x{self.fraction}"

    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        """Parse ``"none"`` or ``"EVERY:FRACTION"`` (e.g. ``"50:0.4"``)."""
        text = text.strip()
        if text in ("", "none", "0"):
            return cls()
        every, sep, fraction = text.partition(":")
        # Only conversion failures are format errors; range errors from
        # __post_init__ ("every must be >= 0", "fraction must be in (0, 1]")
        # propagate with their own, more specific message — "-5:0.5" is
        # well-formed, its *value* is what is wrong.
        try:
            every_value = int(every)
            fraction_value = float(fraction) if sep else 0.5
        except ValueError as exc:
            raise ValueError(
                f"bad fault schedule {text!r}: expected 'none' or 'EVERY:FRACTION'"
            ) from exc
        return cls(every=every_value, fraction=fraction_value)


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative matrix a campaign expands.

    ``scenarios`` are names from :mod:`repro.workloads.scenarios`;
    ``random_count`` adds that many randomized scenarios at consecutive
    seeds from ``random_base_seed``.  ``seeds`` are the per-cell run seeds
    (daemon / arbitrary-configuration / fault RNG).
    """

    scenarios: Tuple[str, ...] = ()
    random_count: int = 0
    random_base_seed: int = 0
    algorithms: Tuple[str, ...] = ("cc2",)
    tokens: Tuple[str, ...] = ("tree",)
    engines: Tuple[str, ...] = ("incremental",)
    daemons: Tuple[str, ...] = ("weakly_fair",)
    faults: Tuple[FaultSchedule, ...] = (FaultSchedule(),)
    seeds: Tuple[int, ...] = (1,)
    max_steps: int = 2000
    discussion_steps: int = 1
    environment: str = "always"
    grace_steps: Optional[int] = None
    arbitrary_start: bool = False

    def __post_init__(self) -> None:
        if not self.scenarios and not self.random_count:
            raise ValueError("a campaign needs named scenarios and/or random_count > 0")
        if self.random_count < 0:
            raise ValueError("random_count must be >= 0")
        for name in self.scenarios:
            scenario_by_name(name)  # KeyError on unknown names, before expansion
        # Build-and-discard: a typo'd --environment must fail here, not
        # inside a spawned worker.
        environment_from_spec(self.environment, self.discussion_steps, seed=0)
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        for algorithm in self.algorithms:
            if algorithm not in ALGORITHMS:
                raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")
        for token in self.tokens:
            if token not in TOKEN_MODULES:
                raise ValueError(f"unknown token {token!r}; expected one of {TOKEN_MODULES}")
        for engine in self.engines:
            if engine not in ENGINES_CHOICES:
                raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES_CHOICES}")
        if "batched" in self.engines:
            from repro.kernel.batched import NUMPY_HINT, numpy_available

            # Fail at spec time with the extra's name, not mid-campaign:
            # without numpy every batched group would fall back solo, which
            # is correct but silently forfeits the speed the user asked for.
            if not numpy_available():
                raise ValueError(NUMPY_HINT)
        for daemon in self.daemons:
            if daemon not in DAEMONS:
                raise ValueError(f"unknown daemon {daemon!r}; expected one of {DAEMONS}")


def expand_jobs(spec: CampaignSpec) -> List[RunJob]:
    """Expand the matrix into indexed, fully self-describing run jobs."""
    jobs: List[RunJob] = []
    for name in spec.scenarios:
        for algorithm in spec.algorithms:
            for token in spec.tokens:
                for engine in spec.engines:
                    for daemon in spec.daemons:
                        for fault in spec.faults:
                            for seed in spec.seeds:
                                jobs.append(
                                    RunJob(
                                        index=len(jobs),
                                        scenario=name,
                                        random_seed=None,
                                        algorithm=algorithm,
                                        token=token,
                                        engine=engine,
                                        daemon=daemon,
                                        environment=spec.environment,
                                        discussion_steps=spec.discussion_steps,
                                        seed=seed,
                                        max_steps=spec.max_steps,
                                        arbitrary_start=spec.arbitrary_start,
                                        fault_every=fault.every,
                                        fault_fraction=fault.fraction,
                                        grace_steps=spec.grace_steps,
                                    )
                                )
    for scenario in random_scenarios(spec.random_count, spec.random_base_seed):
        for algorithm in spec.algorithms:
            for engine in spec.engines:
                for seed in spec.seeds:
                    jobs.append(
                        RunJob(
                            index=len(jobs),
                            scenario=scenario.name,
                            random_seed=scenario.seed,
                            algorithm=algorithm,
                            token=scenario.token,
                            engine=engine,
                            daemon=scenario.daemon,
                            environment=scenario.environment_spec,
                            discussion_steps=scenario.discussion_steps,
                            seed=seed,
                            max_steps=spec.max_steps,
                            arbitrary_start=scenario.arbitrary_start,
                            fault_every=scenario.fault_every,
                            fault_fraction=scenario.fault_fraction,
                            grace_steps=spec.grace_steps,
                        )
                    )
    return jobs
