"""Columnar row store and content-addressed run cache.

Two structures that scale the campaign layer past "reparse the JSONL":

* :class:`ColumnStore` — an array-backed columnar store behind the
  :class:`~repro.campaign.sinks.RowSink` protocol.  Schema'd row fields
  (``ROW_FIELDS`` / ``ERROR_ROW_FIELDS``) land in typed ``array.array``
  columns; aggregate queries (violations by cell, Jain spread, steps
  totals) scan those columns instead of re-parsing JSON per row.  JSONL
  stays the interchange and resume format: any row round-trips through the
  store **byte-identically** under :func:`~repro.campaign.sinks.row_line`,
  which is enforced by a per-value exactness rule — a value that does not
  fit its column's declared type (an int in a float column would re-emit
  as ``0`` instead of ``0.0``) is kept verbatim in an overlay instead of
  being coerced.

* :class:`RunCache` — a content-addressed cache of completed rows, keyed
  by :func:`run_cache_key`: a sha256 over the row's identity block
  (:data:`CACHE_KEY_ATTRS` — every ``ROW_IDENTITY_ATTRS`` field except the
  ``"job"`` index, which is the row's *position* in a matrix, not part of
  the run's identity).  Because each row is a pure function of its
  :class:`~repro.campaign.jobs.RunJob`, a cache hit IS the row the run
  would produce: :func:`~repro.campaign.runner.run_campaign` consults the
  cache before dispatch, and hits short-circuit execution with rows that
  are byte-identical by construction.  Excluding the index from the key
  means the same run shape hits even when it sits at a different position
  (a reshaped matrix, an adaptive re-run appendix, another shard's slice).

Cache safety rules: error rows are never stored (they are transient worker
failures, not run results); ``steps_per_sec`` is stripped before storage
(timing is machine state, not run identity); a corrupt or
identity-mismatched entry is treated as a miss, never as a result —
:func:`~repro.campaign.resume.validate_row_matches_job` re-checks every
hit against the job it is about to stand in for.  ``repro-lint``'s RC009
pass asserts the key covers exactly the identity fields, so a new
:class:`~repro.campaign.jobs.RunJob` axis cannot silently alias cache
entries across different runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from repro.campaign.jobs import (
    ERROR_ROW_FIELDS,
    JobResult,
    ROW_FIELDS,
    ROW_IDENTITY_ATTRS,
    RunJob,
)
from repro.campaign.resume import ResumeError, as_job_result, validate_row_matches_job
from repro.campaign.sinks import RowSink, row_line

#: row key -> :class:`RunJob` attribute hashed into :func:`run_cache_key`.
#: Everything in ``ROW_IDENTITY_ATTRS`` except ``"job"``: the index says
#: *where* a run sits in one particular matrix, while the cache answers
#: "has this run shape ever been executed" across matrices.  RC009
#: (``tools/check_repo.py::check_run_cache_key``) pins this equality and
#: probes per-field key sensitivity, so identity drift bites in tier-1.
CACHE_KEY_ATTRS: Dict[str, str] = {
    key: attr for key, attr in ROW_IDENTITY_ATTRS.items() if key != "job"
}


def run_cache_key(job: RunJob) -> str:
    """sha256 hex over the job's identity block, serialized canonically.

    The hashed text is the :func:`~repro.campaign.sinks.row_line` of the
    identity fields (sorted-key JSON) — the same canonical form the rows
    themselves, the resume validator and the shard
    :func:`~repro.campaign.shard.matrix_fingerprint` all agree on.
    """
    identity = {key: getattr(job, attr) for key, attr in CACHE_KEY_ATTRS.items()}
    return hashlib.sha256(row_line(identity).encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# columnar row store
# --------------------------------------------------------------------------- #

#: Declared column type per schema'd row field.  ``bool`` before ``int``
#: matters when classifying values (bool is an int subclass in Python, but
#: ``true`` and ``1`` are different JSON bytes).
_FIELD_TYPES: Dict[str, type] = {
    "job": int,
    "scenario": str,
    "random_seed": int,
    "algorithm": str,
    "token": str,
    "engine": str,
    "daemon": str,
    "environment": str,
    "discussion_steps": int,
    "seed": int,
    "max_steps": int,
    "arbitrary": bool,
    "fault_every": int,
    "fault_fraction": float,
    "grace_steps": int,
    "steps": int,
    "rounds": int,
    "stop_reason": str,
    "meetings": int,
    "peak_conc": int,
    "mean_conc": float,
    "min_part": int,
    "max_part": int,
    "jain": float,
    "starved_professors": int,
    "starved_committees": int,
    "exclusion": bool,
    "synchronization": bool,
    "progress": bool,
    "essential_discussion": bool,
    "voluntary_discussion": bool,
    "violations": int,
    "first_violation": int,
    "status": str,
    "error": str,
    "ok": bool,
    "steps_per_sec": float,
}

#: array.array typecodes for the numeric column kinds.
_TYPECODES = {int: "q", float: "d", bool: "b"}

#: Per-row, per-column value states (one byte each in ``_Column.states``).
_MISSING, _NULL, _TYPED, _EXACT = 0, 1, 2, 3


class _Column:
    """One field's values across all rows: typed storage + exactness overlay.

    ``states[i]`` records how row ``i`` relates to this field — the key was
    absent (`_MISSING`, e.g. metric fields on an error row), present as
    JSON ``null`` (`_NULL`, e.g. ``grace_steps``), a value of the declared
    type (`_TYPED`, in ``values``), or an off-type value kept verbatim in
    ``exact`` (`_EXACT`) so re-serialization cannot change its bytes.
    Typed storage stays index-aligned with the rows (fillers for non-typed
    states), so reads are O(1) and column scans are branch-light.
    """

    __slots__ = ("kind", "states", "values", "exact")

    def __init__(self, kind: Optional[type], length: int) -> None:
        self.kind = kind
        self.states = array("b", bytes(length))  # leading rows: _MISSING
        typecode = _TYPECODES.get(kind) if kind is not None else None
        self.values = array(typecode) if typecode else []
        if length:
            self.values.extend([""] * length if typecode is None else [0] * length)
        self.exact: Dict[int, object] = {}

    def _fits(self, value: object) -> bool:
        if self.kind is None:
            return False  # no declared type: keep everything exact
        if self.kind is bool:
            return isinstance(value, bool)
        if self.kind is int:
            return isinstance(value, int) and not isinstance(value, bool)
        if self.kind is float:
            return isinstance(value, float)
        return isinstance(value, self.kind)

    def append(self, index: int, present: bool, value: object) -> None:
        if not present:
            state, stored = _MISSING, None
        elif value is None:
            state, stored = _NULL, None
        elif self._fits(value):
            state, stored = _TYPED, value
        else:
            state, stored = _EXACT, None
            self.exact[index] = value
        self.states.append(state)
        if isinstance(self.values, array):
            if state != _TYPED:
                self.values.append(0)  # index-aligned filler, never read back
            elif self.kind is bool:
                self.values.append(int(stored))
            else:
                self.values.append(stored)
        else:
            self.values.append(stored if state == _TYPED else "")

    def get(self, index: int) -> Tuple[bool, object]:
        """``(present, value)`` for row ``index``."""
        state = self.states[index]
        if state == _MISSING:
            return False, None
        if state == _NULL:
            return True, None
        if state == _EXACT:
            return True, self.exact[index]
        value = self.values[index]
        return True, bool(value) if self.kind is bool else value


class ColumnStore(RowSink):
    """Campaign rows as typed columns, queryable without reparsing.

    A :class:`~repro.campaign.sinks.RowSink`, so it can sit anywhere a
    JSONL sink does (including inside a :class:`~repro.campaign.sinks.TeeSink`
    next to one).  Rows of any schema'd shape — completed, error, timed —
    round-trip byte-identically: ``row_line(store.row(i))`` equals the line
    the original row would serialize to.
    """

    def __init__(self) -> None:
        self._columns: Dict[str, _Column] = {}
        self._fields: List[str] = []  # first-appearance order
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def write_row(self, row: Dict[str, object]) -> None:
        for field in self._fields:
            if field not in row:
                self._columns[field].append(self._length, False, None)
        for field, value in row.items():
            column = self._columns.get(field)
            if column is None:
                column = _Column(_FIELD_TYPES.get(field), self._length)
                self._columns[field] = column
                self._fields.append(field)
            column.append(self._length, True, value)
        self._length += 1

    @classmethod
    def from_rows(cls, rows: Iterable[Dict[str, object]]) -> "ColumnStore":
        store = cls()
        for row in rows:
            store.write_row(row)
        return store

    @classmethod
    def from_jsonl(cls, path: str) -> "ColumnStore":
        from repro.campaign.resume import read_rows

        return cls.from_rows(read_rows(path))

    def row(self, index: int) -> Dict[str, object]:
        """Reconstruct row ``index`` exactly (key set and values verbatim)."""
        if not 0 <= index < self._length:
            raise IndexError(f"row index {index} out of range [0, {self._length})")
        row: Dict[str, object] = {}
        for field in self._fields:
            present, value = self._columns[field].get(index)
            if present:
                row[field] = value
        return row

    def rows(self) -> List[Dict[str, object]]:
        return [self.row(index) for index in range(self._length)]

    def lines(self) -> List[str]:
        """The rows' canonical JSONL lines (the byte-identity surface)."""
        return [row_line(row) for row in self.rows()]

    def column(self, field: str, default: object = None) -> List[object]:
        """One field across all rows (``default`` where the key is absent)."""
        col = self._columns.get(field)
        if col is None:
            return [default] * self._length
        out = []
        for index in range(self._length):
            present, value = col.get(index)
            out.append(value if present else default)
        return out

    # -- aggregate queries (columnar: no JSON reparse, no dict per row) ----- #

    def total_steps(self) -> int:
        col = self._columns.get("steps")
        if col is None:
            return 0
        total = sum(
            value for state, value in zip(col.states, col.values) if state == _TYPED
        )
        return total + sum(
            value
            for value in col.exact.values()
            if isinstance(value, int) and not isinstance(value, bool)
        )

    def status_counts(self) -> Dict[str, int]:
        """``status -> row count`` (``"ok"`` / ``"violation"`` / ``"error"``)."""
        counts: Dict[str, int] = {}
        for status in self.column("status"):
            key = str(status)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def violation_count(self) -> int:
        return self.status_counts().get("violation", 0)

    def error_count(self) -> int:
        return self.status_counts().get("error", 0)

    def cell_stats(self) -> List[Dict[str, object]]:
        """Per-(scenario, algorithm) aggregates, in first-appearance order.

        The columnar core of the campaign summary table: run/violation/error
        counts, step totals and the Jain-index spread (completed runs only —
        error rows carry no metrics) per cell, computed in one pass over
        five columns.
        """
        scenarios = self.column("scenario")
        algorithms = self.column("algorithm")
        statuses = self.column("status")
        steps = self.column("steps", 0)
        jains = self.column("jain")
        cells: Dict[Tuple[object, object], Dict[str, object]] = {}
        for index in range(self._length):
            key = (scenarios[index], algorithms[index])
            cell = cells.get(key)
            if cell is None:
                cell = cells[key] = {
                    "scenario": scenarios[index],
                    "algorithm": algorithms[index],
                    "runs": 0,
                    "violations": 0,
                    "errors": 0,
                    "steps": 0,
                    "jain_min": None,
                    "jain_max": None,
                }
            cell["runs"] += 1
            status = statuses[index]
            if status == "violation":
                cell["violations"] += 1
            elif status == "error":
                cell["errors"] += 1
            cell["steps"] += int(steps[index] or 0)
            jain = jains[index]
            if status != "error" and isinstance(jain, float):
                if cell["jain_min"] is None or jain < cell["jain_min"]:
                    cell["jain_min"] = jain
                if cell["jain_max"] is None or jain > cell["jain_max"]:
                    cell["jain_max"] = jain
        return list(cells.values())


# --------------------------------------------------------------------------- #
# content-addressed run cache
# --------------------------------------------------------------------------- #


class RunCache:
    """Completed rows on disk, addressed by :func:`run_cache_key`.

    Layout mirrors git's object store: ``root/<key[:2]>/<key[2:]>.json``,
    one canonical :func:`~repro.campaign.sinks.row_line` per file, written
    atomically (temp file + ``os.replace``) so a crash mid-store can never
    leave a half-written entry behind.  The stored payload omits ``"job"``
    — :meth:`lookup` patches the index of the job being answered back in,
    which is exactly why one entry serves the same run shape at any matrix
    position.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stored = 0
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key[2:] + ".json")

    def lookup(self, job: RunJob) -> Optional[Dict[str, object]]:
        """The cached row for ``job`` (index patched in), or ``None``.

        Defensive by design: a missing file, unparseable JSON, a non-dict
        payload or an identity block that fails
        :func:`~repro.campaign.resume.validate_row_matches_job` all count
        as misses — a damaged cache degrades to re-execution, never to a
        wrong row.
        """
        try:
            with open(self._path(run_cache_key(job)), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        row = dict(payload)
        row["job"] = job.index
        try:
            validate_row_matches_job(job, row)
        except ResumeError:
            self.misses += 1
            return None
        self.hits += 1
        return row

    def result_for(self, job: RunJob) -> Optional[JobResult]:
        """A cache hit lifted into a :class:`JobResult`, or ``None``."""
        row = self.lookup(job)
        return as_job_result(row) if row is not None else None

    def store(self, result: JobResult) -> bool:
        """Persist one executed result; returns ``True`` if written.

        Error rows are refused (transient failures must re-execute, not
        replay), and ``steps_per_sec`` is stripped — the cached bytes are
        the deterministic row, identical to an untimed campaign's output.
        """
        if result.status == "error":
            return False
        row = result.output_row(include_timing=False)
        payload = {key: value for key, value in row.items() if key != "job"}
        path = self._path(run_cache_key_for_row(row))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(row_line(payload) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stored += 1
        return True


def run_cache_key_for_row(row: Dict[str, object]) -> str:
    """The cache key of an already-assembled row (identity fields only).

    Equals :func:`run_cache_key` of the row's job because the identity
    block is copied verbatim from the job into every row
    (``ROW_IDENTITY_ATTRS`` is the single source of truth for both).
    """
    identity = {key: row[key] for key in CACHE_KEY_ATTRS}
    return hashlib.sha256(row_line(identity).encode("utf-8")).hexdigest()


#: Every schema'd field is typed (so the columnar fast path, not the exact
#: overlay, is what campaigns exercise).  Import-time assert: a new row
#: field that forgets its column type fails the first test that imports
#: the store.
_SCHEMA_FIELDS = set(ROW_FIELDS) | set(ERROR_ROW_FIELDS) | {"steps_per_sec"}
assert _SCHEMA_FIELDS <= set(_FIELD_TYPES), (
    f"untyped schema fields: {sorted(_SCHEMA_FIELDS - set(_FIELD_TYPES))}"
)
