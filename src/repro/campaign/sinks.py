"""Row sinks: where campaign rows go *while the campaign is still running*.

PR 4's campaign buffered every row in memory and wrote the JSONL once, at
the end — so a crash at job 9,999 of 10,000 lost everything.  A
:class:`RowSink` receives each row from the runner's drain loop **in
completion order**, the moment its job finishes; the ``"job"`` index
travels in-row, so any consumer (or the resume module) can map a partial
stream back to the matrix.  The runner never reorders before the sink —
job-order output is restored by the *final rewrite* the CLI performs once
the campaign completes (see :mod:`repro.campaign.resume` and docs/ARCHITECTURE.md,
"Persistence & resume").

Sinks are deliberately dumb: ``write_row(row)`` then ``close()``.  All of
them are module-top-level classes whose *unopened* instances pickle (so a
sink configuration can travel to a coordinating process before any file
handle or socket exists); an **active** sink refuses to pickle instead of
silently dropping its handle.  ``tools/check_repo.py`` enforces both via
:data:`SINK_TYPES`.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import tempfile
import time
from typing import Dict, Iterable, List, Optional, Sequence, TextIO


class ShardProtocolError(RuntimeError):
    """The other end of a shard/collector connection broke the protocol.

    Raised for permanent failures — a collector that rejected the handshake
    (mismatched matrix), a malformed reply, a refused row — that no amount
    of reconnecting can repair.  Transient transport failures surface as
    :class:`ConnectionError` instead, after the reconnect budget is spent.
    """


def parse_address(address: str):
    """Parse ``"tcp:HOST:PORT"`` / ``"unix:PATH"`` into ``(family, target)``."""
    kind, _, rest = address.partition(":")
    if kind == "unix" and rest:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
            raise ValueError("unix sockets are not supported on this platform")
        return socket.AF_UNIX, rest
    if kind == "tcp" and rest:
        host, sep, port = rest.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"bad socket sink address {address!r}: expected 'tcp:HOST:PORT'"
            )
        return socket.AF_INET, (host, int(port))
    raise ValueError(
        f"bad socket sink address {address!r}: expected 'tcp:HOST:PORT' or 'unix:PATH'"
    )


def row_line(row: Dict[str, object]) -> str:
    """The canonical serialization of one row: sorted-key JSON, one line.

    Every writer in the campaign layer — streaming sinks, the final
    job-order rewrite, the resume round-trip — goes through this one
    function, which is what makes "resume then rewrite" byte-identical to
    an uninterrupted run.
    """
    return json.dumps(row, sort_keys=True)


class RowSink:
    """Protocol base: receives rows in completion order, then ``close()``.

    Subclasses override :meth:`write_row`; ``close`` is idempotent and the
    class is its own context manager, so ``with JsonlSink(path) as sink:``
    flushes and releases resources even when the campaign dies mid-drain.
    """

    def write_row(self, row: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "RowSink":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class BufferedSink(RowSink):
    """The in-memory sink: collects rows in a list (completion order)."""

    def __init__(self) -> None:
        self.rows: List[Dict[str, object]] = []

    def write_row(self, row: Dict[str, object]) -> None:
        self.rows.append(row)


class JsonlSink(RowSink):
    """Append-only, line-buffered JSONL file sink.

    Each row is written as one sorted-key JSON line and flushed
    immediately, so the file on disk is always a valid prefix of the
    campaign (plus at most one truncated tail line if the process died
    mid-``write``) — exactly what :func:`repro.campaign.resume.read_rows`
    is built to re-ingest.  ``append=True`` continues an existing file
    (the resume path); the default truncates.

    Opening in append mode first drops a non-newline-terminated tail line —
    the artifact of a previous process dying mid-``write``.  Appending the
    first resumed row straight after such a tail would splice two rows into
    one corrupt *mid-stream* line, which ``parse_rows`` rejects (its one
    tolerated defect is a truncated *final* line) and the next resume would
    then fail on.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        self.append = append
        self._fh: Optional[TextIO] = None

    def _ensure_open(self) -> TextIO:
        if self._fh is None:
            if self.append:
                _truncate_partial_tail(self.path)
            self._fh = open(
                self.path, "a" if self.append else "w", buffering=1, encoding="utf-8"
            )
        return self._fh

    def write_row(self, row: Dict[str, object]) -> None:
        fh = self._ensure_open()
        fh.write(row_line(row) + "\n")
        fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __getstate__(self) -> Dict[str, object]:
        if self._fh is not None:
            raise TypeError("cannot pickle a JsonlSink with an open file handle")
        return self.__dict__.copy()


def write_lines_atomic(path: str, lines: Iterable[str]) -> None:
    """Replace ``path`` with ``lines`` atomically (temp file + ``os.replace``).

    The campaign's final job-order rewrite (and the collector's merge dump)
    must never be able to destroy completed rows: the old file — the
    crash-safe completion-order stream — stays untouched until the new
    bytes are fully on disk, so a crash mid-rewrite leaves a file
    ``--resume`` can still finish from.  ``lines`` may be a generator; an
    exception while it is being consumed (including ``KeyboardInterrupt``)
    removes the temp file and leaves the target as it was.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".rows-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already gone
            pass
        raise


def _truncate_partial_tail(path: str) -> None:
    """Cut a file back to its last complete (newline-terminated) line.

    The same recovery :func:`repro.campaign.resume.parse_rows` applies on
    read — drop the one row that was mid-write when the process died —
    performed in place so the file can be safely appended to.
    """
    try:
        fh = open(path, "rb+")
    except FileNotFoundError:
        return
    with fh:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size == 0:
            return
        fh.seek(size - 1)
        if fh.read(1) == b"\n":
            return
        position = size
        while position > 0:
            step = min(4096, position)
            fh.seek(position - step)
            chunk = fh.read(step)
            newline = chunk.rfind(b"\n")
            if newline != -1:
                fh.truncate(position - step + newline + 1)
                return
            position -= step
        fh.truncate(0)  # the whole file was one partial line


class SocketSink(RowSink):
    """Stream rows as newline-delimited JSON over TCP or a Unix socket.

    ``address`` is ``"tcp:HOST:PORT"`` or ``"unix:PATH"``.  The connection
    is opened lazily on the first row (construction stays cheap and
    picklable); a consumer on the other end sees one sorted-key JSON line
    per completed job, in completion order, while the campaign runs.

    The socket is an observability side channel, not the artifact of
    record (that is ``--out``): a connection failure — collector never
    listening, or disconnecting mid-campaign — is reported to stderr once
    and the sink goes dark, rather than aborting an otherwise healthy
    campaign from inside the drain loop.
    """

    def __init__(self, address: str) -> None:
        self.address = address
        self._family, self._target = parse_address(address)
        self._sock: Optional[socket.socket] = None
        self._broken = False

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.socket(self._family, socket.SOCK_STREAM)
            self._sock.connect(self._target)
        return self._sock

    def write_row(self, row: Dict[str, object]) -> None:
        if self._broken:
            return
        try:
            self._ensure_connected().sendall((row_line(row) + "\n").encode("utf-8"))
        except OSError as exc:
            self._broken = True
            self.close()
            print(
                f"campaign: stream sink {self.address} failed ({exc}); "
                "continuing without it",
                file=sys.stderr,
            )

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __getstate__(self) -> Dict[str, object]:
        if self._sock is not None:
            raise TypeError("cannot pickle a SocketSink with an open connection")
        return self.__dict__.copy()


class AckingSocketSink(SocketSink):
    """The shard-transport mode of :class:`SocketSink`: acked and reconnecting.

    Where the base sink is a best-effort observability side channel (failures
    reported once, then dark), this mode is the *primary* transport between a
    campaign shard and a `repro.campaign.shard` collector, so delivery is
    confirmed and failure is loud:

    * every outbound line expects exactly one NDJSON reply line — a row is
      only considered delivered once the collector's ``{"op": "ack", ...}``
      for its job index arrives;
    * a broken connection is rebuilt (fresh socket, ``hello`` handshake
      replayed, the in-flight line re-sent) up to ``retries`` times with a
      short linear backoff — re-sending after a lost ack can hand the
      collector a duplicate row, which is safe because rows are
      deterministic and the collector keeps the latest copy per job index;
    * once the reconnect budget is spent, :class:`ConnectionError` is
      raised — a shard that lost its collector must die loudly so the
      collector re-dispatches its unacknowledged range, not stream rows
      into the void.

    ``hello`` (optional) is a control message sent first on every (re)connect;
    the collector must answer ``{"op": "welcome", ...}`` or the handshake
    raises :class:`ShardProtocolError` (a rejection is permanent — it means
    the shard's matrix does not match the collector's).
    """

    def __init__(
        self,
        address: str,
        hello: Optional[Dict[str, object]] = None,
        retries: int = 3,
        retry_delay: float = 0.2,
    ) -> None:
        super().__init__(address)
        self.hello = dict(hello) if hello is not None else None
        self.retries = retries
        self.retry_delay = retry_delay
        self.welcome: Optional[Dict[str, object]] = None
        self._reader = None

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.socket(self._family, socket.SOCK_STREAM)
            try:
                self._sock.connect(self._target)
                self._reader = self._sock.makefile("r", encoding="utf-8")
                if self.hello is not None:
                    self._sock.sendall(
                        (json.dumps(self.hello, sort_keys=True) + "\n").encode("utf-8")
                    )
                    self.welcome = self._read_reply()
                    if self.welcome.get("op") != "welcome":
                        raise ShardProtocolError(
                            f"collector at {self.address} did not welcome the "
                            f"shard: {self.welcome!r}"
                        )
            except BaseException:
                self.close()
                raise
        return self._sock

    def _read_reply(self) -> Dict[str, object]:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("collector closed the connection")
        try:
            reply = json.loads(line)
        except ValueError as exc:
            raise ShardProtocolError(
                f"collector at {self.address} sent a non-JSON reply: {line!r}"
            ) from exc
        if not isinstance(reply, dict):
            raise ShardProtocolError(
                f"collector at {self.address} sent a non-object reply: {reply!r}"
            )
        if reply.get("op") == "reject":
            raise ShardProtocolError(
                f"collector at {self.address} rejected the shard: {reply.get('error')}"
            )
        return reply

    def _exchange(self, line: str) -> Dict[str, object]:
        """Send one line, read one reply, reconnecting on transport failure."""
        last: Optional[OSError] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.retry_delay * attempt)
            try:
                self._ensure_connected()
                self._sock.sendall(line.encode("utf-8"))
                return self._read_reply()
            except OSError as exc:
                last = exc
                self.close()
        raise ConnectionError(
            f"lost the collector at {self.address} after {self.retries + 1} "
            f"attempt(s): {last}"
        )

    def request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Send a control message (``pull``, ...) and return the reply."""
        return self._exchange(json.dumps(message, sort_keys=True) + "\n")

    def write_row(self, row: Dict[str, object]) -> None:
        reply = self._exchange(row_line(row) + "\n")
        if reply.get("op") != "ack" or reply.get("job") != row.get("job"):
            raise ShardProtocolError(
                f"collector at {self.address} answered row {row.get('job')!r} "
                f"with {reply!r} instead of its ack"
            )

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:  # pragma: no cover - best-effort release
                pass
            self._reader = None
        super().close()


class TeeSink(RowSink):
    """Fan one row stream out to several sinks (e.g. JSONL file + socket)."""

    def __init__(self, sinks: Sequence[RowSink]) -> None:
        self.sinks = list(sinks)

    def write_row(self, row: Dict[str, object]) -> None:
        for sink in self.sinks:
            sink.write_row(row)

    def close(self) -> None:
        # Every sink gets its close() even when an earlier one raises —
        # stopping at the first error would leak every later handle/socket.
        first: Optional[Exception] = None
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as exc:
                if first is None:
                    first = exc
        if first is not None:
            raise first


def sink_from_spec(spec: str) -> RowSink:
    """Build a streaming sink from a CLI spec string.

    ``tcp:HOST:PORT`` and ``unix:PATH`` map to :class:`SocketSink`; file
    output goes through ``--out`` (which also gets the final job-order
    rewrite), so anything else is rejected here.
    """
    if spec.startswith(("tcp:", "unix:")):
        return SocketSink(spec)
    raise ValueError(
        f"bad stream spec {spec!r}: expected 'tcp:HOST:PORT' or 'unix:PATH' "
        "(use --out for files)"
    )


#: Every sink class, for ``tools/check_repo.py``: each must be a
#: module-top-level class that pickles by reference, and a fresh (unopened)
#: instance must pickle round-trip — so a sink configuration can always be
#: shipped between processes before it goes live.
SINK_TYPES = (AckingSocketSink, BufferedSink, JsonlSink, SocketSink, TeeSink)
