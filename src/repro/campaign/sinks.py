"""Row sinks: where campaign rows go *while the campaign is still running*.

PR 4's campaign buffered every row in memory and wrote the JSONL once, at
the end — so a crash at job 9,999 of 10,000 lost everything.  A
:class:`RowSink` receives each row from the runner's drain loop **in
completion order**, the moment its job finishes; the ``"job"`` index
travels in-row, so any consumer (or the resume module) can map a partial
stream back to the matrix.  The runner never reorders before the sink —
job-order output is restored by the *final rewrite* the CLI performs once
the campaign completes (see :mod:`repro.campaign.resume` and docs/ARCHITECTURE.md,
"Persistence & resume").

Sinks are deliberately dumb: ``write_row(row)`` then ``close()``.  All of
them are module-top-level classes whose *unopened* instances pickle (so a
sink configuration can travel to a coordinating process before any file
handle or socket exists); an **active** sink refuses to pickle instead of
silently dropping its handle.  ``tools/check_repo.py`` enforces both via
:data:`SINK_TYPES`.
"""

from __future__ import annotations

import json
import socket
import sys
from typing import Dict, List, Optional, Sequence, TextIO


def row_line(row: Dict[str, object]) -> str:
    """The canonical serialization of one row: sorted-key JSON, one line.

    Every writer in the campaign layer — streaming sinks, the final
    job-order rewrite, the resume round-trip — goes through this one
    function, which is what makes "resume then rewrite" byte-identical to
    an uninterrupted run.
    """
    return json.dumps(row, sort_keys=True)


class RowSink:
    """Protocol base: receives rows in completion order, then ``close()``.

    Subclasses override :meth:`write_row`; ``close`` is idempotent and the
    class is its own context manager, so ``with JsonlSink(path) as sink:``
    flushes and releases resources even when the campaign dies mid-drain.
    """

    def write_row(self, row: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "RowSink":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class BufferedSink(RowSink):
    """The in-memory sink: collects rows in a list (completion order)."""

    def __init__(self) -> None:
        self.rows: List[Dict[str, object]] = []

    def write_row(self, row: Dict[str, object]) -> None:
        self.rows.append(row)


class JsonlSink(RowSink):
    """Append-only, line-buffered JSONL file sink.

    Each row is written as one sorted-key JSON line and flushed
    immediately, so the file on disk is always a valid prefix of the
    campaign (plus at most one truncated tail line if the process died
    mid-``write``) — exactly what :func:`repro.campaign.resume.read_rows`
    is built to re-ingest.  ``append=True`` continues an existing file
    (the resume path); the default truncates.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        self.append = append
        self._fh: Optional[TextIO] = None

    def _ensure_open(self) -> TextIO:
        if self._fh is None:
            self._fh = open(
                self.path, "a" if self.append else "w", buffering=1, encoding="utf-8"
            )
        return self._fh

    def write_row(self, row: Dict[str, object]) -> None:
        fh = self._ensure_open()
        fh.write(row_line(row) + "\n")
        fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __getstate__(self) -> Dict[str, object]:
        if self._fh is not None:
            raise TypeError("cannot pickle a JsonlSink with an open file handle")
        return self.__dict__.copy()


class SocketSink(RowSink):
    """Stream rows as newline-delimited JSON over TCP or a Unix socket.

    ``address`` is ``"tcp:HOST:PORT"`` or ``"unix:PATH"``.  The connection
    is opened lazily on the first row (construction stays cheap and
    picklable); a consumer on the other end sees one sorted-key JSON line
    per completed job, in completion order, while the campaign runs.

    The socket is an observability side channel, not the artifact of
    record (that is ``--out``): a connection failure — collector never
    listening, or disconnecting mid-campaign — is reported to stderr once
    and the sink goes dark, rather than aborting an otherwise healthy
    campaign from inside the drain loop.
    """

    def __init__(self, address: str) -> None:
        self.address = address
        self._family, self._target = self._parse(address)
        self._sock: Optional[socket.socket] = None
        self._broken = False

    @staticmethod
    def _parse(address: str):
        kind, _, rest = address.partition(":")
        if kind == "unix" and rest:
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
                raise ValueError("unix sockets are not supported on this platform")
            return socket.AF_UNIX, rest
        if kind == "tcp" and rest:
            host, sep, port = rest.rpartition(":")
            if not sep or not port.isdigit():
                raise ValueError(
                    f"bad socket sink address {address!r}: expected 'tcp:HOST:PORT'"
                )
            return socket.AF_INET, (host, int(port))
        raise ValueError(
            f"bad socket sink address {address!r}: expected 'tcp:HOST:PORT' or 'unix:PATH'"
        )

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.socket(self._family, socket.SOCK_STREAM)
            self._sock.connect(self._target)
        return self._sock

    def write_row(self, row: Dict[str, object]) -> None:
        if self._broken:
            return
        try:
            self._ensure_connected().sendall((row_line(row) + "\n").encode("utf-8"))
        except OSError as exc:
            self._broken = True
            self.close()
            print(
                f"campaign: stream sink {self.address} failed ({exc}); "
                "continuing without it",
                file=sys.stderr,
            )

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __getstate__(self) -> Dict[str, object]:
        if self._sock is not None:
            raise TypeError("cannot pickle a SocketSink with an open connection")
        return self.__dict__.copy()


class TeeSink(RowSink):
    """Fan one row stream out to several sinks (e.g. JSONL file + socket)."""

    def __init__(self, sinks: Sequence[RowSink]) -> None:
        self.sinks = list(sinks)

    def write_row(self, row: Dict[str, object]) -> None:
        for sink in self.sinks:
            sink.write_row(row)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def sink_from_spec(spec: str) -> RowSink:
    """Build a streaming sink from a CLI spec string.

    ``tcp:HOST:PORT`` and ``unix:PATH`` map to :class:`SocketSink`; file
    output goes through ``--out`` (which also gets the final job-order
    rewrite), so anything else is rejected here.
    """
    if spec.startswith(("tcp:", "unix:")):
        return SocketSink(spec)
    raise ValueError(
        f"bad stream spec {spec!r}: expected 'tcp:HOST:PORT' or 'unix:PATH' "
        "(use --out for files)"
    )


#: Every sink class, for ``tools/check_repo.py``: each must be a
#: module-top-level class that pickles by reference, and a fresh (unopened)
#: instance must pickle round-trip — so a sink configuration can always be
#: shipped between processes before it goes live.
SINK_TYPES = (BufferedSink, JsonlSink, SocketSink, TeeSink)
