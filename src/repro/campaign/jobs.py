"""Run jobs: the picklable unit of campaign work and its worker entry point.

A :class:`RunJob` is a frozen dataclass of primitives — everything a worker
process needs to reproduce one seeded run, whether it was expanded from a
named scenario or from a :class:`~repro.workloads.random_scenarios.RandomScenarioSpec`.
:func:`execute_job` is the ``multiprocessing`` entry point: module-top-level
(so a spawn context can resolve it by dotted name) and side-effect free on
import.  It wires the streaming metrics collector and the full streaming
spec suite (2-phase discussion included) onto a sparse scheduler run,
injects the job's fault schedule mid-run, and returns a :class:`JobResult`
whose ``row`` contains only deterministic fields — wall-clock time travels
separately so aggregate JSONL output stays byte-identical across worker
counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.runner import CommitteeCoordinator
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernel.algorithm import Environment
from repro.kernel.daemon import Daemon, daemon_from_name
from repro.kernel.faults import FaultInjector, arbitrary_configuration
from repro.kernel.scheduler import Scheduler, StopRun
from repro.metrics.collector import StreamingMetricsCollector
from repro.spec.streaming import SpecVerdicts, StreamingSpecSuite
from repro.workloads.random_scenarios import random_scenario
from repro.workloads.request_models import environment_from_spec
from repro.workloads.scenarios import scenario_by_name


@dataclass(frozen=True)
class RunJob:
    """One seeded run of the campaign matrix (primitives only — picklable).

    ``random_seed`` selects the scenario source: ``None`` means ``scenario``
    names an entry of :mod:`repro.workloads.scenarios`; otherwise the
    topology, token, daemon, environment and fault schedule were drawn by
    :func:`~repro.workloads.random_scenarios.random_scenario` and the fields
    below carry the drawn values verbatim (so the job alone reproduces the
    run, without re-deriving the spec).
    """

    index: int
    scenario: str
    random_seed: Optional[int]
    algorithm: str
    token: str
    engine: str
    daemon: str
    environment: str  # "always" | "probabilistic:<p>" | "bursty:<active>:<quiet>"
    discussion_steps: int
    seed: int
    max_steps: int
    arbitrary_start: bool
    fault_every: int
    fault_fraction: float
    grace_steps: Optional[int] = None

    def build_hypergraph(self) -> Hypergraph:
        if self.random_seed is not None:
            return random_scenario(self.random_seed).build_hypergraph()
        return scenario_by_name(self.scenario).hypergraph

    def build_environment(self) -> Environment:
        # Seeded by the *job* seed: two engines replay the same request
        # stream, two seeds explore different ones.
        return environment_from_spec(
            self.environment, self.discussion_steps, seed=self.seed
        )

    def build_daemon(self) -> Daemon:
        return daemon_from_name(self.daemon, seed=self.seed)


@dataclass(frozen=True)
class JobResult:
    """What one worker sends back: the deterministic row plus timing."""

    index: int
    row: Dict[str, object]
    steps: int
    elapsed_seconds: float
    ok: bool

    @property
    def steps_per_sec(self) -> float:
        # 0.0, not inf, when no wall time was recorded (zero-elapsed clock
        # resolution, synthesized resume rows): ``json.dumps(float("inf"))``
        # emits ``Infinity``, which is not RFC 8259 JSON.
        return self.steps / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def status(self) -> str:
        """``"ok"``, ``"violation"`` or ``"error"`` (worker exception)."""
        return str(self.row.get("status") or ("ok" if self.ok else "violation"))

    def output_row(self, include_timing: bool = False) -> Dict[str, object]:
        """The row as it is serialized: optionally timing-augmented.

        Used by both the streaming sinks (completion order) and the final
        JSONL rewrite (job order), so the two byte-match per row.  A row
        resumed from a ``--timing`` file already carries its originally
        measured ``steps_per_sec`` (see
        :func:`repro.campaign.resume.as_job_result`): with timing on it is
        kept verbatim — re-deriving it from the reconstructed elapsed time
        could drift in the last decimal — and with timing off it is
        stripped, so an untimed rewrite of a timed file is byte-identical
        to an untimed campaign.
        """
        row = dict(self.row)
        if include_timing:
            row.setdefault("steps_per_sec", round(self.steps_per_sec, 1))
        else:
            row.pop("steps_per_sec", None)
        return row


#: row key -> :class:`RunJob` attribute, for the identity block present in
#: *every* row — error rows included.  This is the single source of truth
#: shared by the row emitters below and by
#: :func:`repro.campaign.resume.validate_rows_match_jobs`: every RunJob
#: field appears here, so a persisted row pins down the *entire* run shape
#: (fault fraction, step budget, grace window, ...) and ``--resume``
#: against a matrix that differs in any of them is rejected instead of
#: silently mixing two campaigns.
ROW_IDENTITY_ATTRS = {
    "job": "index",
    "scenario": "scenario",
    "random_seed": "random_seed",
    "algorithm": "algorithm",
    "token": "token",
    "engine": "engine",
    "daemon": "daemon",
    "environment": "environment",
    "discussion_steps": "discussion_steps",
    "seed": "seed",
    "max_steps": "max_steps",
    "arbitrary": "arbitrary_start",
    "fault_every": "fault_every",
    "fault_fraction": "fault_fraction",
    "grace_steps": "grace_steps",
}

#: Identity fields present in *every* row, so any row maps back to its
#: matrix cell and job index (the resume contract).
ROW_IDENTITY_FIELDS = tuple(ROW_IDENTITY_ATTRS)

#: Metric fields a completed (non-error) run reports.
ROW_RESULT_FIELDS = (
    "steps",
    "rounds",
    "stop_reason",
    "meetings",
    "peak_conc",
    "mean_conc",
    "min_part",
    "max_part",
    "jain",
    "starved_professors",
    "starved_committees",
)

#: Verdict fields a completed (non-error) run reports.
ROW_VERDICT_FIELDS = (
    "exclusion",
    "synchronization",
    "progress",
    "essential_discussion",
    "voluntary_discussion",
    "violations",
    "first_violation",
    "status",
    "ok",
)

#: The exact key set of a completed run's row (``tools/check_repo.py``
#: asserts :func:`execute_job` emits precisely these, and that the resume
#: module round-trips them byte-identically).
ROW_FIELDS = ROW_IDENTITY_FIELDS + ROW_RESULT_FIELDS + ROW_VERDICT_FIELDS

#: The exact key set of an error row (worker exception captured per-job).
ERROR_ROW_FIELDS = ROW_IDENTITY_FIELDS + ("status", "error", "ok")


_REPORT_KEYS = {
    "EssentialDiscussion": "essential_discussion",
    "VoluntaryDiscussion": "voluntary_discussion",
}


def _identity_fields(job: RunJob) -> Dict[str, object]:
    return {key: getattr(job, attr) for key, attr in ROW_IDENTITY_ATTRS.items()}


def error_result(job: RunJob, exc: BaseException, elapsed_seconds: float = 0.0) -> JobResult:
    """An error-carrying :class:`JobResult` for a job whose run raised.

    The row keeps the full identity block (so resume/aggregation still map
    it to its cell) plus ``status="error"`` and a deterministic
    ``"ExcType: message"`` string — no traceback, no timestamps, so error
    rows stay byte-identical across worker counts and re-runs.
    """
    row: Dict[str, object] = _identity_fields(job)
    row["status"] = "error"
    row["error"] = f"{type(exc).__name__}: {exc}"
    row["ok"] = False
    return JobResult(
        index=job.index, row=row, steps=0, elapsed_seconds=elapsed_seconds, ok=False
    )


def _verdict_fields(verdicts: SpecVerdicts) -> Dict[str, object]:
    fields: Dict[str, object] = {}
    total = 0
    first: Optional[int] = None
    for report in verdicts.reports:
        key = _REPORT_KEYS.get(report.name, report.name.lower())
        fields[key] = report.holds
        total += len(report.violations)
        for violation in report.details:
            if first is None or violation.configuration_index < first:
                first = violation.configuration_index
    fields["violations"] = total
    # Safety violations carry the counterexample window's exact step; other
    # structured violations (Progress) fall back to their earliest detail
    # index.  Discussion violations are interval-shaped strings without an
    # index — they count toward ``violations`` but cannot set this field.
    fields["first_violation"] = (
        verdicts.first_violation.step_index
        if verdicts.first_violation is not None
        else first
    )
    return fields


def completed_row(
    job: RunJob,
    steps: int,
    stop_reason: str,
    metrics,
    verdicts: SpecVerdicts,
) -> Dict[str, object]:
    """Assemble the deterministic row of a completed (non-error) run.

    Single source of truth for :data:`ROW_FIELDS` content, shared by the
    solo path below and by :mod:`repro.campaign.batched` — so a batched
    lane's row byte-matches the solo row *by construction*, not by parallel
    bookkeeping.
    """
    fairness = verdicts.fairness
    row: Dict[str, object] = _identity_fields(job)
    row.update({
        "steps": steps,
        "rounds": metrics.rounds,
        "stop_reason": stop_reason,
        "meetings": metrics.meetings_convened,
        "peak_conc": metrics.peak_concurrency,
        "mean_conc": round(metrics.mean_concurrency, 6),
        "min_part": metrics.min_professor_participations,
        "max_part": metrics.max_professor_participations,
        "jain": round(fairness.professor_jain_index(), 6),
        "starved_professors": len(fairness.starved_professors),
        "starved_committees": len(fairness.starved_committees),
    })
    row.update(_verdict_fields(verdicts))
    row["status"] = "ok" if verdicts.all_hold else "violation"
    row["ok"] = verdicts.all_hold
    return row


def execute_job(job: RunJob) -> JobResult:
    """Run one job sparsely with all streaming observers attached.

    This is the campaign's ``multiprocessing`` entry point; it must stay a
    module-top-level function (``tools/check_repo.py`` enforces spawn-context
    picklability).  The returned row is a pure function of the job — no
    timestamps, no machine-dependent values.

    A ``batched``-engine job routes through
    :func:`repro.campaign.batched.execute_job_group` (a one-lane batch here;
    the serial runner groups same-scenario seeds into wider batches before
    reaching this point).  If the scenario is outside the batched engine's
    coverage — or numpy is missing — that module falls back to a solo
    ``incremental`` run, which produces the identical row.

    **Never raises**: any exception from the run becomes an error row
    (``status="error"``) via :func:`error_result`, because an exception
    escaping a worker aborts the whole ``imap_unordered`` drain and loses
    every completed result with it.  The runner surfaces error rows in the
    summary and the CLI exits 3 when any are present.
    """
    start = time.perf_counter()  # repro-lint: disable=RL102 -- elapsed_seconds is --timing-only, stripped from rows
    try:
        if job.engine == "batched":
            from repro.campaign.batched import execute_job_group

            return execute_job_group([job])[0]
        return _run_job(job)
    except Exception as exc:
        return error_result(job, exc, elapsed_seconds=time.perf_counter() - start)  # repro-lint: disable=RL102 -- --timing-only


def _run_job(job: RunJob, runtime_engine: Optional[str] = None) -> JobResult:
    """One solo run.  ``runtime_engine`` overrides the engine actually
    executed (the batched fallback runs ``incremental``) while the row's
    identity block keeps ``job.engine`` — the row describes the matrix cell,
    not the implementation detail that computed it.
    """
    engine = runtime_engine or job.engine
    hypergraph = job.build_hypergraph()
    coordinator = CommitteeCoordinator(
        hypergraph,
        algorithm=job.algorithm,
        token=job.token,
        seed=job.seed,
        engine=engine,
    )
    algorithm = coordinator.algorithm
    collector = StreamingMetricsCollector(hypergraph)
    suite = StreamingSpecSuite(
        hypergraph,
        grace_steps=job.grace_steps,
        stream=collector.stream,
        fairness=collector.fairness_monitor,
        check_discussion=True,
    )
    scheduler = Scheduler(
        algorithm,
        environment=job.build_environment(),
        daemon=job.build_daemon(),
        initial_configuration=(
            arbitrary_configuration(algorithm, seed=job.seed)
            if job.arbitrary_start
            else None
        ),
        record_configurations=False,
        engine=engine,
        step_listener=[collector.observe_step, suite.observe_step],
    )
    injector = (
        FaultInjector(algorithm, fraction=job.fault_fraction, seed=job.seed + 1)
        if job.fault_every
        else None
    )
    start = time.perf_counter()  # repro-lint: disable=RL102 -- elapsed_seconds is --timing-only, stripped from rows
    stop_reason = "max_steps"
    while scheduler.step_index < job.max_steps:
        if (
            injector is not None
            and scheduler.step_index
            and scheduler.step_index % job.fault_every == 0
        ):
            injector.corrupt_scheduler(scheduler)
        try:
            if scheduler.step() is None:
                stop_reason = "terminal"
                break
        except StopRun as stop:  # pragma: no cover - suite never early-stops here
            stop_reason = stop.reason
            break
    elapsed = time.perf_counter() - start  # repro-lint: disable=RL102 -- --timing-only

    metrics = collector.metrics(scheduler.trace)
    verdicts = suite.verdicts()
    row = completed_row(job, scheduler.step_index, stop_reason, metrics, verdicts)
    return JobResult(
        index=job.index,
        row=row,
        steps=scheduler.step_index,
        elapsed_seconds=elapsed,
        ok=verdicts.all_hold,
    )
