"""``run_campaign``: the classic one-call frontend over the layered driver.

:func:`run_campaign` expands a :class:`~repro.campaign.matrix.CampaignSpec`
(or takes pre-expanded jobs), executes every job — serially for ``jobs=1``,
across a ``multiprocessing`` pool otherwise — and returns a
:class:`CampaignResult` with per-run rows in job-index order, per-cell
summary rows and the campaign wall-clock.  Since the driver decomposition
it is a thin composition of the stages in :mod:`repro.campaign.driver`
(:class:`~repro.campaign.driver.CampaignPlan` →
:class:`~repro.campaign.driver.SerialExecutor` /
:class:`~repro.campaign.driver.PoolExecutor` →
:class:`~repro.campaign.driver.RowCollector`); the CLI, the shard client
and the service layer compose the same stages with more context.

Determinism contract: each row is a pure function of its
:class:`~repro.campaign.jobs.RunJob`, results are re-sorted by job index
after the (order-unstable) pool drain, and JSONL serialization sorts keys —
so ``--jobs 4`` output is byte-identical to ``--jobs 1`` output.  Timing is
carried *next to* the rows (:attr:`~repro.campaign.jobs.JobResult.elapsed_seconds`)
and only enters the JSONL when ``include_timing=True`` is requested
explicitly.

Crash safety rides on top of that contract: pass a
:class:`~repro.campaign.sinks.RowSink` and every row is handed over in
*completion* order the moment its job finishes (the job index travels
in-row), worker exceptions become ``status="error"`` rows instead of pool
death, and :mod:`repro.campaign.resume` turns a partial JSONL stream back
into the remaining jobs.

The pool uses the ``spawn`` start method by default: it is the only method
available everywhere and the strictest about what a worker can receive,
which keeps :func:`~repro.campaign.jobs.execute_job` honest (enforced by
``tools/check_repo.py``).  Pass ``mp_context="fork"`` on platforms where the
per-worker interpreter start-up dominates very small campaigns (exposed as
``repro-cc campaign --mp-context``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.driver import (
    CampaignPlan,
    PoolExecutor,
    RowCollector,
    SerialExecutor,
    shard_slice,
)
from repro.campaign.jobs import JobResult, RunJob
from repro.campaign.matrix import CampaignSpec, expand_jobs
from repro.campaign.sinks import RowSink, row_line, write_lines_atomic
from repro.campaign.store import ColumnStore, RunCache

__all__ = ["CampaignResult", "run_campaign", "shard_slice"]


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    jobs: List[RunJob]
    results: List[JobResult]  # in job-index order
    workers: int
    elapsed_seconds: float  # campaign wall-clock
    #: The live per-row aggregate the collect stage accumulated during the
    #: drain (when the campaign ran through the driver); ``summary_rows``
    #: serves from it instead of rebuilding a store, and the service layer
    #: mounts it as the campaign's queryable view.
    store: Optional[ColumnStore] = field(default=None, repr=False, compare=False)

    @property
    def rows(self) -> List[Dict[str, object]]:
        """Per-run rows, deterministic and in job order."""
        return [result.row for result in self.results]

    @property
    def violations(self) -> int:
        """Number of completed runs in which some checked property failed."""
        return sum(1 for result in self.results if result.status == "violation")

    @property
    def errors(self) -> int:
        """Number of runs whose worker raised (``status="error"`` rows)."""
        return sum(1 for result in self.results if result.status == "error")

    @property
    def ok(self) -> bool:
        return self.violations == 0 and self.errors == 0

    @property
    def total_steps(self) -> int:
        return sum(result.steps for result in self.results)

    @property
    def steps_per_sec(self) -> float:
        """Campaign-level throughput: executed steps per wall-clock second.

        0.0 (not inf) when no wall-clock was recorded — ``Infinity`` is not
        valid JSON and poisons the summary table.
        """
        return self.total_steps / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def jsonl_lines(self, include_timing: bool = False) -> List[str]:
        """One sorted-key JSON object per run.

        ``include_timing=True`` adds a per-run ``steps_per_sec`` field —
        useful for perf digging, but machine- and load-dependent, so it
        breaks the byte-identical-across-worker-counts guarantee and is off
        by default.
        """
        return [row_line(result.output_row(include_timing)) for result in self.results]

    def write_jsonl(self, path: str, include_timing: bool = False) -> None:
        """Atomically replace ``path`` with the job-order rows.

        Goes through :func:`~repro.campaign.sinks.write_lines_atomic`, so
        the completion-order stream a crash-safe sink left at ``path`` is
        only ever *replaced whole* — a crash mid-rewrite cannot lose
        completed rows (the resume atomicity guarantee).
        """
        write_lines_atomic(
            path, (row_line(result.output_row(include_timing)) for result in self.results)
        )

    def _cell_stats(self) -> List[Dict[str, object]]:
        """Per-cell aggregates in the rows' first-appearance (job) order.

        Serves from the carried live :attr:`store` when it covers exactly
        these results; otherwise (hand-built result, store/results drift)
        falls back to a fresh columnar pass.  The carried store accumulated
        rows in *completion* order, so cell order is re-derived from the
        job-ordered results either way — the summary is byte-identical to
        the historical rebuild-from-rows path.
        """
        store = self.store
        if store is None or len(store) != len(self.results):
            store = ColumnStore.from_rows(self.rows)
        stats: Dict[Tuple[object, object], Dict[str, object]] = {
            (cell["scenario"], cell["algorithm"]): cell for cell in store.cell_stats()
        }
        ordered: List[Dict[str, object]] = []
        seen = set()
        for result in self.results:
            key = (result.row["scenario"], result.row["algorithm"])
            if key not in seen:
                seen.add(key)
                ordered.append(stats[key])
        return ordered

    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per (scenario, algorithm) cell plus a totals row.

        Reports run/violation counts, aggregate throughput (cell steps over
        the cell's summed per-run wall time — the workers' view, independent
        of how many ran concurrently) and the fairness spread (Jain index
        range across the cell's runs).  Cell counts/steps/Jain come from the
        :class:`~repro.campaign.store.ColumnStore` the collect stage
        accumulated during the drain (the same aggregates ``repro-cc
        stats`` serves); per-run wall time is not in the rows, so throughput
        is joined in from the results here.
        """
        # Cell identity comes from the row itself (identity fields are
        # present on every row, error and resumed rows included), so
        # merged results need not align index-for-index with ``jobs``.
        elapsed_by_cell: Dict[tuple, float] = {}
        for result in self.results:
            key = (result.row["scenario"], result.row["algorithm"])
            elapsed_by_cell[key] = elapsed_by_cell.get(key, 0.0) + result.elapsed_seconds
        rows: List[Dict[str, object]] = []
        for cell in self._cell_stats():
            elapsed = elapsed_by_cell.get((cell["scenario"], cell["algorithm"]), 0.0)
            steps = cell["steps"]
            # Error rows carry no metrics; the Jain spread covers the
            # completed runs only (a fully errored cell renders "-").
            rows.append(
                {
                    "scenario": cell["scenario"],
                    "algorithm": cell["algorithm"],
                    "runs": cell["runs"],
                    "violations": cell["violations"],
                    "errors": cell["errors"],
                    "steps": steps,
                    "steps/s": round(steps / elapsed, 1) if elapsed > 0 else "-",
                    "jain min..max": (
                        f"{cell['jain_min']:.3f}..{cell['jain_max']:.3f}"
                        if cell["jain_min"] is not None
                        else "-"
                    ),
                }
            )
        rows.append(
            {
                "scenario": "TOTAL",
                "algorithm": "-",
                "runs": len(self.results),
                "violations": self.violations,
                "errors": self.errors,
                "steps": self.total_steps,
                "steps/s": (
                    round(self.steps_per_sec, 1) if self.elapsed_seconds > 0 else "-"
                ),
                "jain min..max": f"wall {self.elapsed_seconds:.2f}s x{self.workers}",
            }
        )
        return rows


def run_campaign(
    spec_or_jobs: Union[CampaignSpec, Sequence[RunJob]],
    jobs: int = 1,
    mp_context: str = "spawn",
    progress: Optional[Callable[[JobResult, int, int], None]] = None,
    sink: Optional[RowSink] = None,
    sink_timing: bool = False,
    cache: Optional[RunCache] = None,
) -> CampaignResult:
    """Execute a campaign across ``jobs`` worker processes.

    ``progress`` (optional) is called in completion order with
    ``(result, completed, total)`` — completion order varies with the worker
    count, but the returned :class:`CampaignResult` is always re-sorted into
    job order, so everything downstream is deterministic.

    ``sink`` (optional) receives every row **in completion order**, the
    moment its job finishes — the crash-safety channel: a
    :class:`~repro.campaign.sinks.JsonlSink` has already flushed every
    completed row when the process dies, so ``--resume`` only re-runs what
    is genuinely missing.  The sink's lifecycle belongs to the caller (it
    is not closed here); ``sink_timing=True`` adds the machine-dependent
    ``steps_per_sec`` field to the streamed rows, mirroring
    ``jsonl_lines(include_timing=True)``.

    Worker exceptions do not abort the drain: :func:`execute_job` converts
    them into ``status="error"`` rows (see
    :attr:`CampaignResult.errors`), so one poisoned job cannot discard the
    other 9,999 completed results.

    ``cache`` (optional, a :class:`~repro.campaign.store.RunCache`) is
    consulted **before dispatch**: jobs whose identity block has a cached
    row short-circuit execution and drain the stored row immediately
    (byte-identical by construction — rows are pure functions of their
    jobs), and every freshly executed non-error result is stored back.
    Hits drain first, in job order, so a sink sees them before any
    executed row.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if isinstance(spec_or_jobs, CampaignSpec):
        job_list = expand_jobs(spec_or_jobs)
    else:
        job_list = list(spec_or_jobs)
    start = time.perf_counter()  # repro-lint: disable=RL102 -- campaign wall time is --timing-only, never in rows
    plan = CampaignPlan(job_list, cache=cache)
    collector = RowCollector(
        sink=sink,
        sink_timing=sink_timing,
        cache=cache,
        progress=progress,
        total=len(plan.jobs),
    )
    for hit in plan.cached_results:
        collector.add_cached(hit)
    if jobs == 1 or len(plan.todo) <= 1:
        workers = SerialExecutor().run(plan.todo, collector)
    else:
        workers = PoolExecutor(jobs, mp_context=mp_context).run(plan.todo, collector)
    return CampaignResult(
        jobs=plan.jobs,
        results=collector.finish(),
        workers=workers,
        elapsed_seconds=time.perf_counter() - start,  # repro-lint: disable=RL102 -- --timing-only
        store=collector.store,
    )
