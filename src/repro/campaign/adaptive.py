"""Adaptive re-runs: grow the seed set of cells whose verdicts disagree.

A campaign cell (one point of the matrix with the seed axis projected
out) that reports ``ok=True`` under one seed and ``ok=False`` under
another is exactly where more evidence is cheapest to buy: the verdict is
seed-sensitive, so a handful of fresh seeds either tips the cell into
"reliably violating" or exposes the original violation as a rare
schedule.  ``repro-cc campaign --rerun-disagreements`` runs this pass
once, after the base matrix:

* :func:`disagreement_cells` groups results by cell and keeps the cells
  whose completed (non-error) runs disagree on ``ok``;
* :func:`rerun_jobs` re-expands each such cell with **fresh seeds
  appended deterministically** — as many new seeds as the cell originally
  had, numbered consecutively from one past its highest seed — and
  assigns job indices continuing after the existing jobs, so the extra
  rows extend the same JSONL stream and the whole (base + re-run) output
  is still a pure function of the spec.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.jobs import JobResult, RunJob

#: The cell identity: every RunJob field except ``index`` and ``seed``.
CELL_FIELDS = (
    "scenario",
    "random_seed",
    "algorithm",
    "token",
    "engine",
    "daemon",
    "environment",
    "discussion_steps",
    "max_steps",
    "arbitrary_start",
    "fault_every",
    "fault_fraction",
    "grace_steps",
)


def cell_key(job: RunJob) -> Tuple[object, ...]:
    """The matrix cell a job belongs to (all axes, seed projected out)."""
    return tuple(getattr(job, field) for field in CELL_FIELDS)


def disagreement_cells(
    jobs: Sequence[RunJob], results: Sequence[JobResult]
) -> List[List[Tuple[RunJob, JobResult]]]:
    """Cells whose completed runs disagree on ``ok``, in first-job order.

    Error rows are excluded from the comparison — a worker exception is a
    harness failure, not a verdict — but do not hide a disagreement among
    the cell's completed runs.
    """
    by_index = {result.index: result for result in results}
    cells: Dict[Tuple[object, ...], List[Tuple[RunJob, JobResult]]] = {}
    for job in jobs:
        result = by_index.get(job.index)
        if result is not None:
            cells.setdefault(cell_key(job), []).append((job, result))
    disagreeing = []
    for pairs in cells.values():
        verdicts = {
            result.ok for _, result in pairs if result.status != "error"
        }
        if len(verdicts) > 1:
            disagreeing.append(pairs)
    disagreeing.sort(key=lambda pairs: pairs[0][0].index)
    return disagreeing


def rerun_jobs(
    jobs: Sequence[RunJob],
    results: Sequence[JobResult],
    next_index: Optional[int] = None,
) -> List[RunJob]:
    """Fresh-seed jobs for every disagreeing cell, deterministically indexed.

    ``next_index`` defaults to one past the highest existing job index, so
    the re-run rows append cleanly to the base campaign's JSONL stream.
    """
    if next_index is None:
        next_index = max((job.index for job in jobs), default=-1) + 1
    extra: List[RunJob] = []
    for pairs in disagreement_cells(jobs, results):
        seeds = sorted({job.seed for job, _ in pairs})
        start = seeds[-1] + 1
        for offset in range(len(seeds)):
            extra.append(
                replace(pairs[0][0], index=next_index + len(extra), seed=start + offset)
            )
    return extra
