"""Resume an interrupted campaign from its partial JSONL stream.

The JSONL sink (:class:`repro.campaign.sinks.JsonlSink`) flushes one row
per completed job, in completion order, with the job index carried in-row.
This module turns such a partial file back into campaign state:

* :func:`read_rows` re-ingests the file, tolerating exactly the artifact a
  crash leaves behind — one truncated, non-JSON *final* line (the row that
  was mid-``write`` when the process died).  Corruption anywhere else is an
  error: the file is not a campaign stream.
* :func:`validate_rows_match_jobs` cross-checks every row's identity
  fields against the job at its index, so ``--resume`` with a mismatched
  matrix (different scenarios, seeds, axes — i.e. somebody else's file)
  fails loudly instead of silently merging garbage.
* :func:`remaining_jobs` returns the jobs with no row yet — the work a
  resumed campaign still has to do.  ``retry_errors=True`` additionally
  re-queues jobs whose row is an error row (transient worker failures).
* :func:`as_job_result` / :func:`merge_results` lift prior rows back into
  :class:`~repro.campaign.jobs.JobResult`s and merge them with the resumed
  run's results into one full :class:`~repro.campaign.runner.CampaignResult`,
  so the summary table and the final job-order rewrite cover *all* rows.

Byte-identity contract: rows are written by
:func:`repro.campaign.sinks.row_line` (sorted-key JSON) and parsed back by
:func:`parse_rows`; re-dumping a parsed row reproduces its line exactly
(Python float repr round-trips), which is why an interrupted campaign,
resumed and finally rewritten in job order, matches an uninterrupted
``--jobs 1`` run byte for byte.  ``tools/check_repo.py`` asserts this
round-trip for every schema'd row shape in tier-1.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Sequence

from repro.campaign.jobs import ROW_IDENTITY_ATTRS, JobResult, RunJob


class ResumeError(ValueError):
    """A partial JSONL file that cannot belong to the campaign being resumed."""


#: row key -> RunJob attribute, cross-checked by
#: :func:`validate_rows_match_jobs`.  Shared with the row emitters
#: (``repro.campaign.jobs.ROW_IDENTITY_ATTRS``) so the validated fields can
#: never drift from the persisted ones; ``"job"`` is the lookup key rather
#: than a compared field.
_IDENTITY_ATTRS = {
    key: attr for key, attr in ROW_IDENTITY_ATTRS.items() if key != "job"
}


def parse_rows(lines: Iterable[str], source: str = "<stream>") -> List[Dict[str, object]]:
    """Parse JSONL lines into row dicts, tolerating one truncated tail line.

    A line that fails to parse (or is not an object with an integer
    ``"job"``) is dropped *iff* it is the last non-blank line — the
    signature of a process killed mid-write.  The same defect earlier in
    the stream raises :class:`ResumeError`.
    """
    entries = [
        (number, line)
        for number, line in enumerate(lines, start=1)
        if line.strip()
    ]
    rows: List[Dict[str, object]] = []
    for position, (number, line) in enumerate(entries):
        try:
            row = json.loads(line)
            if not isinstance(row, dict) or not isinstance(row.get("job"), int):
                raise ValueError("not a row object with an integer 'job' index")
        except ValueError as exc:
            if position == len(entries) - 1:
                break  # truncated tail from an interrupted write: re-run that job
            raise ResumeError(
                f"{source}:{number}: corrupt row before end of stream ({exc})"
            ) from exc
        rows.append(row)
    return rows


def read_rows(path: str) -> List[Dict[str, object]]:
    """Rows of a (possibly interrupted) campaign JSONL file; [] if absent."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        return parse_rows(fh, source=path)


def completed_rows(rows: Iterable[Dict[str, object]]) -> Dict[int, Dict[str, object]]:
    """Map ``job index -> row``; on duplicates the latest row wins."""
    return {int(row["job"]): row for row in rows}


def validate_rows_match_jobs(
    jobs: Sequence[RunJob], rows: Iterable[Dict[str, object]]
) -> None:
    """Raise :class:`ResumeError` unless every row matches its job's identity.

    Rows with indices beyond ``len(jobs)`` are ignored: they are adaptive
    re-run rows appended after the base matrix (their identity cannot be
    checked against the spec alone).
    """
    by_index = {job.index: job for job in jobs}
    for row in rows:
        job = by_index.get(int(row["job"]))
        if job is None:
            continue
        validate_row_matches_job(job, row)


def validate_row_matches_job(job: RunJob, row: Dict[str, object]) -> None:
    """Raise :class:`ResumeError` unless ``row``'s identity matches ``job``.

    The single-row core of :func:`validate_rows_match_jobs`, exposed so
    streaming consumers (the shard collector acks one row at a time) can
    validate in O(1) per row instead of rebuilding the job index per call.
    """
    for key, attr in _IDENTITY_ATTRS.items():
        if key in row and row[key] != getattr(job, attr):
            raise ResumeError(
                f"row for job {job.index} does not match the campaign matrix: "
                f"{key}={row[key]!r} in the file vs {getattr(job, attr)!r} "
                "expanded from the spec (is this another campaign's output file?)"
            )


def reconcile_extra_rows(
    extra_jobs: Sequence[RunJob],
    rows: Iterable[Dict[str, object]],
) -> "tuple[List[Dict[str, object]], List[Dict[str, object]]]":
    """Split beyond-matrix rows into ``(valid, stale)`` against re-run jobs.

    :func:`validate_rows_match_jobs` deliberately ignores rows with indices
    beyond the base matrix — their jobs are not derivable from the spec
    alone.  On ``--resume --rerun-disagreements`` they *are* derivable: the
    adaptive layer regenerates the same deterministic ``extra_jobs``, and
    every prior extra row must be identity-checked against the job now at
    its index.  A row whose index no longer exists (the disagreement set
    changed, e.g. ``--retry-errors`` flipped a base verdict) or whose
    identity block mismatches the regenerated job is *stale*: keeping it
    would silently attribute a result to a different run.  Stale rows are
    returned for reporting; their jobs re-run.
    """
    by_index = {job.index: job for job in extra_jobs}
    valid: List[Dict[str, object]] = []
    stale: List[Dict[str, object]] = []
    for row in rows:
        job = by_index.get(int(row["job"]))
        if job is None:
            stale.append(row)
            continue
        try:
            validate_row_matches_job(job, row)
        except ResumeError:
            stale.append(row)
        else:
            valid.append(row)
    return valid, stale


def remaining_jobs(
    jobs: Sequence[RunJob],
    rows: Iterable[Dict[str, object]],
    retry_errors: bool = False,
) -> List[RunJob]:
    """The jobs a resumed campaign still has to execute, in job order."""
    done = completed_rows(rows)
    remaining = []
    for job in jobs:
        row = done.get(job.index)
        if row is None or (retry_errors and row.get("status") == "error"):
            remaining.append(job)
    return remaining


def as_job_result(row: Dict[str, object]) -> JobResult:
    """Lift a previously persisted row back into a :class:`JobResult`.

    Wall-clock never enters the row (unless ``--timing`` opted in), so the
    elapsed time is reconstructed from a stored ``steps_per_sec`` when
    present and zero otherwise — :attr:`JobResult.steps_per_sec` then
    reports 0.0, and summary tables render ``-`` for throughput that was
    never measured in this process.  A stored ``steps_per_sec`` stays *in*
    the row: resuming a ``--timing`` campaign must rewrite prior rows with
    their original measured value, byte for byte, not a lossy
    reconstruction (and certainly not without the field).
    """
    row = dict(row)
    steps = int(row.get("steps", 0) or 0)
    steps_per_sec = row.get("steps_per_sec")
    elapsed = steps / float(steps_per_sec) if steps_per_sec else 0.0
    return JobResult(
        index=int(row["job"]),
        row=row,
        steps=steps,
        elapsed_seconds=elapsed,
        ok=bool(row.get("ok", False)),
    )


def merge_results(
    prior_rows: Iterable[Dict[str, object]],
    executed: Sequence[JobResult],
) -> List[JobResult]:
    """Prior rows + freshly executed results, deduplicated, in job order.

    A freshly executed result wins over a prior row with the same index
    (the ``retry_errors`` path re-runs jobs whose prior row was an error).
    """
    by_index: Dict[int, JobResult] = {
        int(row["job"]): as_job_result(row) for row in prior_rows
    }
    for result in executed:
        by_index[result.index] = result
    return [by_index[index] for index in sorted(by_index)]
