"""Baselines from the related-work section (Section 6).

These comparators are round-based simulators sharing one interface
(:class:`~repro.baselines.base.BaselineCoordinator`); they run on the same
hypergraphs and request models as the paper's algorithms and report the same
throughput / fairness / concurrency metrics, so the comparison benchmark can
put ``CC1``/``CC2``/``CC3`` and the baselines in one table.

* :class:`~repro.baselines.dining.DiningPhilosophersCoordinator` -- the
  Chandy-Misra reduction: one "philosopher" per committee, forks on every
  pair of conflicting committees, a committee meets while its philosopher
  eats [2].
* :class:`~repro.baselines.drinking.DrinkingPhilosophersCoordinator` -- the
  drinking-philosophers style reduction where bottles are the shared
  professors [2, 4, 17].
* :class:`~repro.baselines.manager_token.ManagerTokenCoordinator` --
  Bagrodia's event-manager scheme: committees are partitioned among managers
  and inter-manager conflicts are resolved by a circulating token [3].
* :class:`~repro.baselines.kumar_tokens.KumarTokenCoordinator` -- Kumar's
  fair algorithm with one token per committee [7].
* :class:`~repro.baselines.centralized.CentralizedGreedyCoordinator` -- a
  non-distributed greedy oracle, an upper bound on achievable concurrency.
"""

from repro.baselines.base import BaselineCoordinator, BaselineResult
from repro.baselines.centralized import CentralizedGreedyCoordinator
from repro.baselines.dining import DiningPhilosophersCoordinator
from repro.baselines.drinking import DrinkingPhilosophersCoordinator
from repro.baselines.manager_token import ManagerTokenCoordinator
from repro.baselines.kumar_tokens import KumarTokenCoordinator

__all__ = [
    "BaselineCoordinator",
    "BaselineResult",
    "CentralizedGreedyCoordinator",
    "DiningPhilosophersCoordinator",
    "DrinkingPhilosophersCoordinator",
    "ManagerTokenCoordinator",
    "KumarTokenCoordinator",
]
