"""Bagrodia's event-manager scheme with a circulating token [3].

Committees are partitioned among a small set of *managers*.  A manager
resolves conflicts among its own committees locally; conflicts between
committees of different managers are resolved through a token circulating
among the managers -- only the token-holding manager may convene committees
that conflict with another manager's committees.

The policy below follows that structure:

* committees are assigned to managers round-robin by committee index;
* every manager may convene any of its eligible committees whose conflicting
  committees are *all managed by itself* (local resolution);
* committees with cross-manager conflicts are convened only by the current
  token holder, greedily;
* the token advances to the next manager every round.

With one manager this degenerates to a centralized greedy coordinator; with
many managers the cross-manager serialization shows up as reduced
concurrency, which is the behaviour the paper attributes to [3].
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.base import BaselineCoordinator
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph


class ManagerTokenCoordinator(BaselineCoordinator):
    """Manager-partitioned coordination with a circulating inter-manager token."""

    name = "manager-token"

    def __init__(self, hypergraph: Hypergraph, num_managers: int = 3, **kwargs) -> None:
        super().__init__(hypergraph, **kwargs)
        if num_managers < 1:
            raise ValueError("need at least one manager")
        self.num_managers = min(num_managers, hypergraph.m)
        self._manager_of: Dict[Tuple[int, ...], int] = {
            edge.members: index % self.num_managers
            for index, edge in enumerate(hypergraph.hyperedges)
        }
        self._token_manager = 0
        # Pre-compute whether each committee has a cross-manager conflict.
        self._cross_conflict: Dict[Tuple[int, ...], bool] = {}
        edges = hypergraph.hyperedges
        for edge in edges:
            cross = any(
                other != edge
                and other.intersects(edge)
                and self._manager_of[other.members] != self._manager_of[edge.members]
                for other in edges
            )
            self._cross_conflict[edge.members] = cross

    def choose_committees(self, eligible: List[Hyperedge]) -> List[Hyperedge]:
        chosen: List[Hyperedge] = []
        used: set = set()

        def try_add(edge: Hyperedge) -> None:
            if not (set(edge.members) & used):
                chosen.append(edge)
                used.update(edge.members)

        # Local resolution first: committees whose conflicts are all intra-manager.
        for edge in sorted(eligible, key=lambda e: e.members):
            if not self._cross_conflict[edge.members]:
                try_add(edge)
        # Cross-manager committees: only the token-holding manager convenes them.
        for edge in sorted(eligible, key=lambda e: e.members):
            if (
                self._cross_conflict[edge.members]
                and self._manager_of[edge.members] == self._token_manager
            ):
                try_add(edge)

        self._token_manager = (self._token_manager + 1) % self.num_managers
        return chosen
