"""Chandy-Misra dining-philosophers reduction [2].

Each *committee* is a philosopher; two philosophers share a fork iff their
committees conflict (share a professor).  A committee may convene only while
its philosopher holds every incident fork and is "eating".  The hygienic
solution's essential behaviour is that fork priority alternates between the
two sharers: after a philosopher eats, it yields the shared forks to its
neighbours.

The policy below captures exactly that: every conflicting pair of committees
carries a priority bit that flips each time one of the two convenes, and an
eligible committee convenes only if it has priority over (or no contention
with) every eligible conflicting committee.  The paper's criticism of this
reduction -- one philosopher serializes all the committees it manages, so
concurrency drops -- is visible in the benchmark as a lower meetings/round
than ``CC1`` on conflict-heavy topologies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.base import BaselineCoordinator
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph


class DiningPhilosophersCoordinator(BaselineCoordinator):
    """Committee-as-philosopher reduction with alternating fork priorities."""

    name = "dining-philosophers"

    def __init__(self, hypergraph: Hypergraph, **kwargs) -> None:
        super().__init__(hypergraph, **kwargs)
        # fork priority: maps an unordered pair of conflicting committees to
        # the committee currently holding the clean fork (priority).
        self._priority: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], Tuple[int, ...]] = {}
        edges = hypergraph.hyperedges
        for i, a in enumerate(edges):
            for b in edges[i + 1 :]:
                if a.intersects(b):
                    key = (a.members, b.members)
                    # Initially the lexicographically smaller committee has priority.
                    self._priority[key] = min(a.members, b.members)

    def _pair_key(self, a: Hyperedge, b: Hyperedge) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        key = (a.members, b.members)
        if key in self._priority:
            return key
        key = (b.members, a.members)
        if key in self._priority:
            return key
        return None

    def _has_priority_over(self, a: Hyperedge, b: Hyperedge) -> bool:
        key = self._pair_key(a, b)
        if key is None:
            return True
        return self._priority[key] == a.members

    def choose_committees(self, eligible: List[Hyperedge]) -> List[Hyperedge]:
        chosen: List[Hyperedge] = []
        for edge in sorted(eligible, key=lambda e: e.members):
            rivals = [other for other in eligible if other != edge and other.intersects(edge)]
            if all(self._has_priority_over(edge, rival) for rival in rivals):
                chosen.append(edge)
        # Resolve any residual overlap (two committees may both claim priority
        # through disjoint rival sets): keep earlier choices.
        final: List[Hyperedge] = []
        used: set = set()
        for edge in chosen:
            if not (set(edge.members) & used):
                final.append(edge)
                used.update(edge.members)
        # Yield forks: a committee that just ate loses priority to its rivals.
        for edge in final:
            for other in self.hypergraph.hyperedges:
                if other == edge or not other.intersects(edge):
                    continue
                key = self._pair_key(edge, other)
                if key is not None:
                    self._priority[key] = other.members
        return final
