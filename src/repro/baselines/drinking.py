"""Drinking-philosophers style reduction [2, 4, 17].

In the drinking-philosophers formulation each shared resource is a *bottle*;
here the bottles are the professors themselves: a committee needs to grab
the bottle of every one of its members to convene.  Bottle arbitration is
per-professor: each professor grants itself to the requesting committee it
has served least recently (ties by committee id), so a popular professor
spreads its availability across its committees.

This yields more concurrency than the dining reduction (conflicts are
resolved per shared professor rather than per philosopher pair) but still
not maximal concurrency -- matching the paper's observation that drinking-
philosophers-based solutions "result in more concurrency, but not maximal".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.base import BaselineCoordinator
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId


class DrinkingPhilosophersCoordinator(BaselineCoordinator):
    """Per-professor bottle arbitration with least-recently-served preference."""

    name = "drinking-philosophers"

    def __init__(self, hypergraph: Hypergraph, **kwargs) -> None:
        super().__init__(hypergraph, **kwargs)
        # Last round at which each professor served each of its committees.
        self._last_served: Dict[ProcessId, Dict[Tuple[int, ...], int]] = {
            p: {e.members: -1 for e in hypergraph.incident_edges(p)}
            for p in hypergraph.vertices
        }

    def choose_committees(self, eligible: List[Hyperedge]) -> List[Hyperedge]:
        if not eligible:
            return []
        # Every professor grants its bottle to one requesting committee.
        grants: Dict[ProcessId, Tuple[int, ...]] = {}
        requests: Dict[ProcessId, List[Hyperedge]] = {}
        for edge in eligible:
            for member in edge:
                requests.setdefault(member, []).append(edge)
        for member, edges in requests.items():
            history = self._last_served[member]
            choice = min(edges, key=lambda e: (history.get(e.members, -1), e.members))
            grants[member] = choice.members

        chosen: List[Hyperedge] = []
        used: set = set()
        for edge in sorted(eligible, key=lambda e: e.members):
            if all(grants.get(member) == edge.members for member in edge) and not (
                set(edge.members) & used
            ):
                chosen.append(edge)
                used.update(edge.members)
        for edge in chosen:
            for member in edge:
                self._last_served[member][edge.members] = self.round_index
        return chosen
