"""Centralized greedy coordinator (concurrency upper bound).

A non-distributed oracle that, every round, greedily convenes a maximal set
of eligible committees (largest-first, then lexicographic).  No distributed
algorithm can sustain more simultaneous meetings than this policy on the
same workload, so it anchors the top of the comparison table.  It makes no
fairness effort whatsoever -- under contention the same committees can win
every round -- which is also informative next to ``CC2``.
"""

from __future__ import annotations

from typing import List

from repro.baselines.base import BaselineCoordinator
from repro.hypergraph.hypergraph import Hyperedge


class CentralizedGreedyCoordinator(BaselineCoordinator):
    """Greedy maximal selection of eligible committees each round."""

    name = "centralized-greedy"

    def choose_committees(self, eligible: List[Hyperedge]) -> List[Hyperedge]:
        chosen: List[Hyperedge] = []
        used: set = set()
        for edge in sorted(eligible, key=lambda e: (-e.size, e.members)):
            if not (set(edge.members) & used):
                chosen.append(edge)
                used.update(edge.members)
        return chosen
