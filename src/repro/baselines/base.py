"""Common round-based engine for the baseline coordinators.

The baselines of Section 6 are message-passing or semaphore-style algorithms
whose fine-grained mechanics are orthogonal to what the comparison benchmark
measures (throughput, concurrency, fairness).  They are therefore modelled as
*round-based* coordinators: every round,

1. idle professors decide whether to start waiting (per the request model),
2. the coordinator's policy picks which committees convene among the
   *eligible* ones (all members waiting, no conflict with a meeting in
   progress) -- this is where the baselines differ,
3. meetings in progress age and terminate after their discussion duration,
   returning their members to the idle state.

Exclusion and Synchronization hold by construction (step 2 only offers
eligible, mutually non-conflicting committees); Progress and fairness depend
on the policy, which is exactly the paper's point of comparison.

This simplification is recorded as a substitution in DESIGN.md §3: the
baselines are *policy-faithful* rather than *protocol-faithful*.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId


@dataclass
class BaselineResult:
    """Metrics of one baseline run (mirrors :class:`~repro.metrics.throughput.ThroughputResult`)."""

    rounds: int
    meetings_convened: int
    per_professor: Dict[ProcessId, int]
    per_committee: Dict[Tuple[ProcessId, ...], int]
    concurrency_profile: List[int] = field(default_factory=list)

    @property
    def meetings_per_round(self) -> float:
        return self.meetings_convened / self.rounds if self.rounds else 0.0

    @property
    def mean_concurrency(self) -> float:
        if not self.concurrency_profile:
            return 0.0
        return sum(self.concurrency_profile) / len(self.concurrency_profile)

    @property
    def peak_concurrency(self) -> int:
        return max(self.concurrency_profile) if self.concurrency_profile else 0

    @property
    def min_professor_participations(self) -> int:
        return min(self.per_professor.values()) if self.per_professor else 0

    @property
    def starved_professors(self) -> Tuple[ProcessId, ...]:
        return tuple(sorted(p for p, c in self.per_professor.items() if c == 0))

    def jain_fairness_index(self) -> float:
        values = list(self.per_professor.values())
        if not values or all(v == 0 for v in values):
            return 0.0
        return sum(values) ** 2 / (len(values) * sum(v * v for v in values))

    def as_row(self) -> dict:
        return {
            "rounds": self.rounds,
            "meetings": self.meetings_convened,
            "meetings/round": round(self.meetings_per_round, 3),
            "mean_conc": round(self.mean_concurrency, 3),
            "peak_conc": self.peak_concurrency,
            "min_part": self.min_professor_participations,
            "jain": round(self.jain_fairness_index(), 3),
        }


class BaselineCoordinator(abc.ABC):
    """Round-based committee coordinator skeleton.

    Parameters
    ----------
    hypergraph:
        Professors and committees.
    meeting_duration:
        Number of rounds a meeting lasts once convened.
    request_probability:
        Probability that an idle professor starts waiting in a given round
        (1.0 reproduces the always-requesting assumption of the fair
        algorithms).
    seed:
        RNG seed.
    """

    name: str = "baseline"

    def __init__(
        self,
        hypergraph: Hypergraph,
        meeting_duration: int = 2,
        request_probability: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        if meeting_duration < 1:
            raise ValueError("meeting_duration must be >= 1")
        if not 0.0 < request_probability <= 1.0:
            raise ValueError("request_probability must be in (0, 1]")
        self.hypergraph = hypergraph
        self.meeting_duration = meeting_duration
        self.request_probability = request_probability
        self.rng = random.Random(seed)
        # dynamic state
        self.waiting: Set[ProcessId] = set()
        self.meeting_of: Dict[ProcessId, Hyperedge] = {}
        self.remaining: Dict[Hyperedge, int] = {}
        self.round_index = 0
        # Delta-driven eligibility (the round engine's analog of the
        # scheduler's dirty-set protocol): instead of re-scanning every
        # committee's full member list each round, maintain a per-committee
        # count of waiting members, updated only when a professor's waiting
        # status actually changes; a committee is eligible iff it is not in
        # progress and its count equals its size (waiting and meeting are
        # disjoint by construction, so "no member busy" is implied).
        self._edge_index: Dict[Hyperedge, int] = {
            e: i for i, e in enumerate(hypergraph.hyperedges)
        }
        self._incident: Dict[ProcessId, Tuple[Hyperedge, ...]] = {
            p: hypergraph.incident_edges(p) for p in hypergraph.vertices
        }
        self._waiting_count: Dict[Hyperedge, int] = {
            e: 0 for e in hypergraph.hyperedges
        }
        self._eligible: Set[Hyperedge] = set()
        # statistics
        self.per_professor: Dict[ProcessId, int] = {p: 0 for p in hypergraph.vertices}
        self.per_committee: Dict[Tuple[ProcessId, ...], int] = {
            e.members: 0 for e in hypergraph.hyperedges
        }
        self.concurrency_profile: List[int] = []

    # ------------------------------------------------------------------ #
    # policy hook
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def choose_committees(self, eligible: List[Hyperedge]) -> List[Hyperedge]:
        """Pick which eligible committees convene this round.

        ``eligible`` lists committees whose members are all waiting and that
        do not conflict with any meeting in progress.  The returned list must
        be a subset of ``eligible`` whose members are pairwise disjoint; the
        engine re-checks this and drops offending committees (keeping the
        earlier ones), so a sloppy policy cannot violate Exclusion.
        """

    # ------------------------------------------------------------------ #
    # engine
    # ------------------------------------------------------------------ #
    def _start_waiting(self, pid: ProcessId) -> None:
        """Move ``pid`` into the waiting set, updating committee eligibility."""
        if pid in self.waiting:
            return
        self.waiting.add(pid)
        counts = self._waiting_count
        for edge in self._incident[pid]:
            counts[edge] += 1
            if counts[edge] == edge.size and edge not in self.remaining:
                self._eligible.add(edge)

    def _stop_waiting(self, pid: ProcessId) -> None:
        """Remove ``pid`` from the waiting set, updating committee eligibility."""
        if pid not in self.waiting:
            return
        self.waiting.discard(pid)
        counts = self._waiting_count
        for edge in self._incident[pid]:
            counts[edge] -= 1
            self._eligible.discard(edge)

    def _eligible_committees(self) -> List[Hyperedge]:
        """Committees all of whose members wait, none busy, none in progress.

        Served from the incrementally maintained eligible set (see
        ``__init__``); only the hyperedge-order sort — required so policies
        see candidates in the same deterministic order as the historical
        full scan — touches more than the committees whose membership
        actually changed.
        """
        return sorted(self._eligible, key=self._edge_index.__getitem__)

    def step_round(self) -> List[Hyperedge]:
        """Advance one round; returns the committees that convened."""
        # 1. idle professors may start waiting.
        for pid in self.hypergraph.vertices:
            if pid in self.waiting or pid in self.meeting_of:
                continue
            if self.request_probability >= 1.0 or self.rng.random() < self.request_probability:
                self._start_waiting(pid)

        # 2. the policy convenes committees.
        eligible = self._eligible_committees()
        eligible_set = self._eligible
        convened: List[Hyperedge] = []
        used: Set[ProcessId] = set(self.meeting_of)
        for edge in self.choose_committees(list(eligible)):
            if edge not in eligible_set:
                continue
            if any(member in used for member in edge):
                continue
            convened.append(edge)
            used.update(edge.members)
        for edge in convened:
            self.remaining[edge] = self.meeting_duration
            self._eligible.discard(edge)
            self.per_committee[edge.members] += 1
            for member in edge:
                self._stop_waiting(member)
                self.meeting_of[member] = edge
                self.per_professor[member] += 1

        # 3. meetings age and terminate.
        finished = []
        for edge in list(self.remaining):
            self.remaining[edge] -= 1
            if self.remaining[edge] <= 0:
                finished.append(edge)
        for edge in finished:
            del self.remaining[edge]
            for member in edge:
                self.meeting_of.pop(member, None)
            # No eligibility update needed here: every member of the ended
            # meeting is idle (not waiting), so the committee only becomes
            # eligible again through ``_start_waiting`` in phase 1 of a
            # later round.

        self.concurrency_profile.append(len(self.remaining))
        self.round_index += 1
        return convened

    def run(self, rounds: int = 500) -> BaselineResult:
        """Run for a fixed number of rounds and return the aggregated metrics."""
        total_convened = 0
        for _ in range(rounds):
            total_convened += len(self.step_round())
        return BaselineResult(
            rounds=self.round_index,
            meetings_convened=total_convened,
            per_professor=dict(self.per_professor),
            per_committee=dict(self.per_committee),
            concurrency_profile=list(self.concurrency_profile),
        )
