"""Kumar's fair n-party synchronization with one token per committee [7].

Kumar circumvents the Tsay-Bagrodia impossibility by assuming professors
request meetings infinitely often and uses one token per committee to ensure
that every committee whose members keep requesting eventually convenes.  The
essential mechanism is *reservation*: a waiting professor binds itself to the
interaction whose token it holds (here: the committee that has waited the
longest) and keeps that reservation until the interaction fires, even while
other members are still busy elsewhere.

The policy captures that mechanism: each committee carries an *age* (rounds
since it last convened).  A professor that starts waiting commits to its
oldest incident committee -- eligible or not -- and the commitment persists
until the committee convenes.  A committee convenes once every member is
waiting and committed to it.  Because ages grow unboundedly while a committee
is passed over, every committee (and hence every professor) with persistently
requesting members eventually gets its turn; the cost is that committed
members refuse other meetings in the meantime, i.e. concurrency is lower than
the greedy policies -- the same fairness-versus-concurrency trade-off the
paper proves in Theorem 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.base import BaselineCoordinator
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId


class KumarTokenCoordinator(BaselineCoordinator):
    """Per-committee tokens with persistent age-based reservations."""

    name = "kumar-tokens"

    def __init__(self, hypergraph: Hypergraph, **kwargs) -> None:
        super().__init__(hypergraph, **kwargs)
        self._age: Dict[Tuple[int, ...], int] = {e.members: 0 for e in hypergraph.hyperedges}
        self._commitment: Dict[ProcessId, Optional[Tuple[int, ...]]] = {
            p: None for p in hypergraph.vertices
        }

    def _refresh_commitments(self) -> None:
        """Waiting professors without a live reservation bind to their oldest committee."""
        for pid in self.hypergraph.vertices:
            if pid in self.meeting_of:
                self._commitment[pid] = None
                continue
            if pid not in self.waiting:
                continue
            if self._commitment[pid] is not None:
                continue
            incident = self.hypergraph.incident_edges(pid)
            if not incident:
                continue
            choice = max(incident, key=lambda e: (self._age[e.members], e.members))
            self._commitment[pid] = choice.members

    def choose_committees(self, eligible: List[Hyperedge]) -> List[Hyperedge]:
        self._refresh_commitments()

        chosen: List[Hyperedge] = []
        used: set = set()
        for edge in sorted(eligible, key=lambda e: (-self._age[e.members], e.members)):
            if set(edge.members) & used:
                continue
            if all(self._commitment.get(member) == edge.members for member in edge):
                chosen.append(edge)
                used.update(edge.members)

        convened = {edge.members for edge in chosen}
        for edge in chosen:
            for member in edge:
                self._commitment[member] = None
        for members in self._age:
            if members in convened:
                self._age[members] = 0
            else:
                self._age[members] += 1
        return chosen
