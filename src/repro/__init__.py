"""repro -- reproduction of *Snap-Stabilizing Committee Coordination*.

The package implements, from scratch, everything the paper (Bonakdarpour,
Devismes, Petit; IPDPS 2011 / JPDC 2016) describes or depends on:

* the hypergraph model of professors and committees and the matching theory
  behind the degree-of-fair-concurrency analysis (:mod:`repro.hypergraph`),
* the locally-shared-memory guarded-action computational model with daemons,
  rounds and transient faults (:mod:`repro.kernel`),
* self-stabilizing token circulation substrates (:mod:`repro.tokenring`),
* the three committee coordination algorithms ``CC1``, ``CC2``, ``CC3`` and
  their ``∘ TC`` compositions (:mod:`repro.core`),
* baselines from the related-work section (:mod:`repro.baselines`),
* executable specification checkers (:mod:`repro.spec`) and metrics
  (:mod:`repro.metrics`),
* workloads, analytical bounds and reporting (:mod:`repro.workloads`,
  :mod:`repro.analysis`),
* the parallel campaign engine fanning seeded scenario matrices across
  worker processes (:mod:`repro.campaign`).

Quickstart::

    from repro import CommitteeCoordinator, figure1_hypergraph

    outcome = CommitteeCoordinator(figure1_hypergraph(), algorithm="cc2", seed=1).run(2000)
    print(outcome.metrics.as_row())
"""

from repro.hypergraph import (
    Hyperedge,
    Hypergraph,
    MatchingAnalysis,
    complete_hypergraph,
    cycle_of_committees,
    figure1_hypergraph,
    figure2_hypergraph,
    figure3_hypergraph,
    figure4_hypergraph,
    path_of_committees,
    random_k_uniform_hypergraph,
    star_hypergraph,
)
from repro.core import (
    CC1Algorithm,
    CC2Algorithm,
    CC3Algorithm,
    CommitteeCoordinator,
    SimulationOutcome,
    TokenBinding,
)
from repro.tokenring import (
    ComposedTokenCirculation,
    DijkstraRingToken,
    OracleTokenModule,
    SelfStabilizingLeaderElection,
    TreeTokenCirculation,
)
from repro.analysis import bounds_for
from repro.campaign import CampaignSpec, FaultSchedule, run_campaign
from repro.spec import (
    CounterexampleWindow,
    SpecVerdicts,
    SpecViolationError,
    StreamingSpecSuite,
)
from repro.workloads import RandomScenarioSpec, random_scenario, random_scenarios

__version__ = "1.2.0"

__all__ = [
    "Hyperedge",
    "Hypergraph",
    "MatchingAnalysis",
    "complete_hypergraph",
    "cycle_of_committees",
    "figure1_hypergraph",
    "figure2_hypergraph",
    "figure3_hypergraph",
    "figure4_hypergraph",
    "path_of_committees",
    "random_k_uniform_hypergraph",
    "star_hypergraph",
    "CC1Algorithm",
    "CC2Algorithm",
    "CC3Algorithm",
    "CommitteeCoordinator",
    "SimulationOutcome",
    "TokenBinding",
    "ComposedTokenCirculation",
    "DijkstraRingToken",
    "OracleTokenModule",
    "SelfStabilizingLeaderElection",
    "TreeTokenCirculation",
    "bounds_for",
    "CampaignSpec",
    "FaultSchedule",
    "run_campaign",
    "CounterexampleWindow",
    "SpecVerdicts",
    "SpecViolationError",
    "StreamingSpecSuite",
    "RandomScenarioSpec",
    "random_scenario",
    "random_scenarios",
    "__version__",
]
