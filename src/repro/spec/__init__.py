"""Specification checkers for the committee coordination problem.

Every checker operates on recorded traces (or single configurations) and is
algorithm-agnostic: it only relies on the shared variable names ``S`` and
``P`` and on the hypergraph, so the same checkers validate ``CC1``, ``CC2``,
``CC3`` and arbitrary-initial-configuration (snap-stabilization) runs.
"""

from repro.spec.events import (
    MeetingEvent,
    committee_meets,
    convened_meetings,
    meetings_in,
    meeting_events,
    participations,
    terminated_meetings,
    waiting_processes,
)
from repro.spec.properties import (
    PropertyReport,
    Violation,
    check_exclusion,
    check_progress,
    check_synchronization,
)
from repro.spec.streaming import (
    CounterexampleWindow,
    SpecVerdicts,
    SpecViolationError,
    StreamingExclusionMonitor,
    StreamingFairnessMonitor,
    StreamingProgressMonitor,
    StreamingSpecSuite,
    StreamingSynchronizationMonitor,
)
from repro.spec.discussion import (
    StreamingEssentialDiscussionMonitor,
    StreamingVoluntaryDiscussionMonitor,
    check_essential_discussion,
    check_voluntary_discussion,
)
from repro.spec.fairness import committee_fairness_counts, professor_fairness_counts
from repro.spec.concurrency import check_maximal_concurrency, measure_fair_concurrency
from repro.spec.stabilization import snap_stabilization_sweep

__all__ = [
    "MeetingEvent",
    "committee_meets",
    "convened_meetings",
    "meetings_in",
    "meeting_events",
    "participations",
    "terminated_meetings",
    "waiting_processes",
    "PropertyReport",
    "Violation",
    "check_exclusion",
    "check_progress",
    "check_synchronization",
    "CounterexampleWindow",
    "SpecVerdicts",
    "SpecViolationError",
    "StreamingExclusionMonitor",
    "StreamingFairnessMonitor",
    "StreamingProgressMonitor",
    "StreamingSpecSuite",
    "StreamingSynchronizationMonitor",
    "StreamingEssentialDiscussionMonitor",
    "StreamingVoluntaryDiscussionMonitor",
    "check_essential_discussion",
    "check_voluntary_discussion",
    "committee_fairness_counts",
    "professor_fairness_counts",
    "check_maximal_concurrency",
    "measure_fair_concurrency",
    "snap_stabilization_sweep",
]
