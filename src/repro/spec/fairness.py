"""Fairness measurements (Definitions 3 and 4).

Professor Fairness ("every professor participates infinitely often") and
Committee Fairness ("every committee convenes infinitely often") are liveness
properties; on finite traces we report participation counts and let the
caller (tests, benchmarks) assert the finite rendering appropriate for the
experiment -- e.g. *every professor participated at least k times* for a
sufficiently long run of ``CC2 ∘ TC``, or *some professor was starved under
the adversarial schedule* for the Theorem 1 witness on ``CC1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.trace import Trace
from repro.spec.events import convened_meetings, participations


@dataclass(frozen=True)
class FairnessSummary:
    """Participation statistics over one trace."""

    per_professor: Dict[ProcessId, int]
    per_committee: Dict[Tuple[ProcessId, ...], int]

    @property
    def min_professor_participations(self) -> int:
        return min(self.per_professor.values()) if self.per_professor else 0

    @property
    def max_professor_participations(self) -> int:
        return max(self.per_professor.values()) if self.per_professor else 0

    @property
    def starved_professors(self) -> Tuple[ProcessId, ...]:
        """Professors that never participated in any meeting."""
        return tuple(sorted(p for p, c in self.per_professor.items() if c == 0))

    @property
    def starved_committees(self) -> Tuple[Tuple[ProcessId, ...], ...]:
        """Committees that never convened."""
        return tuple(sorted(c for c, n in self.per_committee.items() if n == 0))

    def professor_jain_index(self) -> float:
        """Jain's fairness index over professor participation counts (1.0 = perfectly even)."""
        values = list(self.per_professor.values())
        if not values or all(v == 0 for v in values):
            return 0.0
        numerator = sum(values) ** 2
        denominator = len(values) * sum(v * v for v in values)
        return numerator / denominator if denominator else 0.0


def professor_fairness_counts(trace: Trace, hypergraph: Hypergraph) -> FairnessSummary:
    """Participation counts per professor and per committee for one trace.

    Raises :class:`ValueError` on sparse traces; use
    :class:`repro.spec.streaming.StreamingFairnessMonitor` (or the
    :class:`~repro.metrics.collector.StreamingMetricsCollector`) on such runs.
    """
    trace.require_dense("professor_fairness_counts")
    per_prof = participations(trace, hypergraph)
    per_committee: Dict[Tuple[ProcessId, ...], int] = {
        e.members: 0 for e in hypergraph.hyperedges
    }
    for event in convened_meetings(trace, hypergraph):
        per_committee[event.committee.members] += 1
    return FairnessSummary(per_professor=per_prof, per_committee=per_committee)


def committee_fairness_counts(trace: Trace, hypergraph: Hypergraph) -> Dict[Tuple[ProcessId, ...], int]:
    """Convene counts per committee (Definition 4's finite rendering)."""
    return professor_fairness_counts(trace, hypergraph).per_committee
