"""The three core properties: Exclusion, Synchronization, Progress.

The checkers return :class:`PropertyReport` objects listing every violation
found, so failing checks are debuggable.  Because our algorithms are
snap-stabilizing, Exclusion and Synchronization are checked on *convened*
meetings only -- the paper's guarantee is that every meeting **convened
after the last fault** satisfies the specification; a committee that appears
to be "meeting" in the arbitrary initial configuration was not convened by
the algorithm and carries no guarantee (Section 2.5).

The verdict logic (what constitutes a violation, and the exact message it is
reported with) lives in the shared helpers
:func:`exclusion_violations_at`, :func:`synchronization_violations_at`,
:func:`progress_window` and :func:`progress_violation`; the dense post-hoc
checkers below and the streaming monitors in :mod:`repro.spec.streaming`
both build on them, so the two paths produce byte-identical
:class:`PropertyReport` objects for the same configuration stream.

The dense checkers need the full configuration sequence and therefore raise
a clear :class:`ValueError` on sparse traces
(``record_configurations=False``) instead of silently reporting vacuous
passes; use the streaming monitors on such runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.states import DONE, POINTER, STATUS, WAITING, LOOKING
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.configuration import Configuration
from repro.kernel.trace import Trace
from repro.spec.events import committee_meets, convened_meetings, meetings_in


@dataclass(frozen=True)
class Violation:
    """One structured property violation.

    ``committees`` names the involved committees (two for an Exclusion
    conflict, one for Synchronization and Progress); ``message`` is the
    human-readable rendering that :class:`PropertyReport` exposes.
    """

    property_name: str
    configuration_index: int
    committees: Tuple[Tuple[ProcessId, ...], ...]
    message: str


@dataclass
class PropertyReport:
    """Outcome of a property check."""

    name: str
    holds: bool
    violations: List[str] = field(default_factory=list)
    details: List[Violation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds


def report_from_details(name: str, details: Sequence[Violation]) -> PropertyReport:
    """Build a :class:`PropertyReport` from structured violations."""
    details = list(details)
    return PropertyReport(name, not details, [v.message for v in details], details)


# --------------------------------------------------------------------------- #
# shared verdict logic (used by the dense checkers and the streaming monitors)
# --------------------------------------------------------------------------- #
def exclusion_violations_at(
    index: int, held: Sequence[Hyperedge]
) -> List[Violation]:
    """Exclusion violations among the committees ``held`` meeting in ``γ_index``."""
    violations: List[Violation] = []
    for i, a in enumerate(held):
        for b in held[i + 1 :]:
            if a.intersects(b):
                violations.append(
                    Violation(
                        "Exclusion",
                        index,
                        (a.members, b.members),
                        f"configuration {index}: conflicting committees "
                        f"{tuple(a.members)} and {tuple(b.members)} meet "
                        "simultaneously",
                    )
                )
    return violations


def synchronization_violations_at(
    index: int, committee: Hyperedge, configuration: Configuration
) -> List[Violation]:
    """Lemma 2 violations for a committee that convened in ``γ_index``."""
    violations: List[Violation] = []
    for member in committee:
        status = configuration.get(member, STATUS)
        pointer = configuration.get(member, POINTER)
        if status != WAITING or pointer != committee:
            violations.append(
                Violation(
                    "Synchronization",
                    index,
                    (committee.members,),
                    f"configuration {index}: committee "
                    f"{tuple(committee.members)} convened but member {member} "
                    f"has S={status!r}, P={pointer!r}",
                )
            )
    return violations


def progress_window(
    n_configurations: int, grace_steps: Optional[int] = None
) -> Optional[int]:
    """The tail-window length for the finite-trace Progress check.

    Returns ``None`` when the trace is too short for the check to be
    meaningful (fewer than 4 configurations — the check passes vacuously).
    An explicit ``grace_steps`` must be >= 1: a zero window would make the
    dense tail slice (``[-0:]`` = the whole trace) and the streaming
    monitor's empty window silently disagree.
    """
    if grace_steps is not None and grace_steps < 1:
        raise ValueError(f"grace_steps must be >= 1, got {grace_steps!r}")
    if n_configurations < 4:
        return None
    window = grace_steps if grace_steps is not None else max(2, n_configurations // 2)
    return min(window, n_configurations - 1)


def progress_violation(edge: Hyperedge, window: int, last_index: int) -> Violation:
    """The Progress violation for a committee starved over the final window."""
    return Violation(
        "Progress",
        last_index,
        (edge.members,),
        f"committee {tuple(edge.members)}: all members waiting for the last "
        f"{window} configurations and none participated in any meeting",
    )


# --------------------------------------------------------------------------- #
# dense post-hoc checkers
# --------------------------------------------------------------------------- #
def check_exclusion(trace: Trace, hypergraph: Hypergraph) -> PropertyReport:
    """*No two conflicting committees may meet simultaneously.*

    Checked on every configuration from the first configuration in which a
    meeting convened (meetings inherited from the arbitrary initial
    configuration are exempt, but as soon as a committee convenes it must not
    conflict with any other *meeting* committee -- this is exactly the
    "no interference" guarantee of snap-stabilization).
    """
    trace.require_dense("check_exclusion")
    convene_indices = {e.configuration_index for e in convened_meetings(trace, hypergraph)}
    if not convene_indices:
        return PropertyReport("Exclusion", True)
    start = min(convene_indices)
    configurations = trace.configurations
    details: List[Violation] = []
    for index in range(start, len(configurations)):
        held = meetings_in(configurations[index], hypergraph)
        details.extend(exclusion_violations_at(index, held))
    return report_from_details("Exclusion", details)


def check_synchronization(trace: Trace, hypergraph: Hypergraph) -> PropertyReport:
    """*A meeting may convene only if all members of the committee are waiting.*

    Lemma 2 sharpens this: when a committee convenes, every member has
    ``P = ε`` and ``S = waiting``.  We check the sharpened form on the
    configuration in which each convene event occurs.
    """
    trace.require_dense("check_synchronization")
    configurations = trace.configurations
    details: List[Violation] = []
    for event in convened_meetings(trace, hypergraph):
        details.extend(
            synchronization_violations_at(
                event.configuration_index,
                event.committee,
                configurations[event.configuration_index],
            )
        )
    return report_from_details("Synchronization", details)


def check_progress(
    trace: Trace,
    hypergraph: Hypergraph,
    grace_steps: Optional[int] = None,
) -> PropertyReport:
    """*If all members of a committee are waiting, some member eventually meets.*

    Finite-trace rendering: we flag a violation if some committee had **all**
    its members continuously waiting (problem-level waiting, i.e. status
    ``looking`` or ``waiting``) for the last ``grace_steps`` configurations of
    the trace and none of its members ever participated in a meeting during
    that window.  ``grace_steps`` defaults to half the trace length.

    This is necessarily an approximation of a liveness property; the default
    window is generous enough that the algorithms' progress mechanisms (token
    priority) act well within it for the sizes we simulate.
    """
    trace.require_dense("check_progress")
    configurations = trace.configurations
    window = progress_window(len(configurations), grace_steps)
    if window is None:
        return PropertyReport("Progress", True)
    tail = configurations[-window:]

    details: List[Violation] = []
    for edge in hypergraph.hyperedges:
        all_waiting_throughout = all(
            all(cfg.get(q, STATUS) in (LOOKING, WAITING) for q in edge) for cfg in tail
        )
        if not all_waiting_throughout:
            continue
        # Did any member participate in a meeting during the window?
        member_met = False
        for cfg in tail:
            for other in hypergraph.hyperedges:
                if committee_meets(cfg, other) and any(q in other for q in edge):
                    member_met = True
                    break
            if member_met:
                break
        if not member_met:
            details.append(progress_violation(edge, window, len(configurations) - 1))
    return report_from_details("Progress", details)
