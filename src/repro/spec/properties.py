"""The three core properties: Exclusion, Synchronization, Progress.

The checkers return :class:`PropertyReport` objects listing every violation
found, so failing checks are debuggable.  Because our algorithms are
snap-stabilizing, Exclusion and Synchronization are checked on *convened*
meetings only -- the paper's guarantee is that every meeting **convened
after the last fault** satisfies the specification; a committee that appears
to be "meeting" in the arbitrary initial configuration was not convened by
the algorithm and carries no guarantee (Section 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.states import DONE, POINTER, STATUS, WAITING, LOOKING
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.configuration import Configuration
from repro.kernel.trace import Trace
from repro.spec.events import committee_meets, convened_meetings, meetings_in


@dataclass
class PropertyReport:
    """Outcome of a property check."""

    name: str
    holds: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds


def check_exclusion(trace: Trace, hypergraph: Hypergraph) -> PropertyReport:
    """*No two conflicting committees may meet simultaneously.*

    Checked on every configuration from the first configuration in which a
    meeting convened (meetings inherited from the arbitrary initial
    configuration are exempt, but as soon as a committee convenes it must not
    conflict with any other *meeting* committee -- this is exactly the
    "no interference" guarantee of snap-stabilization).
    """
    violations: List[str] = []
    convene_indices = {e.configuration_index for e in convened_meetings(trace, hypergraph)}
    if not convene_indices:
        return PropertyReport("Exclusion", True)
    start = min(convene_indices)
    configurations = trace.configurations
    for index in range(start, len(configurations)):
        held = meetings_in(configurations[index], hypergraph)
        for i, a in enumerate(held):
            for b in held[i + 1 :]:
                if a.intersects(b):
                    violations.append(
                        f"configuration {index}: conflicting committees {tuple(a.members)} "
                        f"and {tuple(b.members)} meet simultaneously"
                    )
    return PropertyReport("Exclusion", not violations, violations)


def check_synchronization(trace: Trace, hypergraph: Hypergraph) -> PropertyReport:
    """*A meeting may convene only if all members of the committee are waiting.*

    Lemma 2 sharpens this: when a committee convenes, every member has
    ``P = ε`` and ``S = waiting``.  We check the sharpened form on the
    configuration in which each convene event occurs.
    """
    violations: List[str] = []
    configurations = trace.configurations
    for event in convened_meetings(trace, hypergraph):
        cfg = configurations[event.configuration_index]
        for member in event.committee:
            status = cfg.get(member, STATUS)
            pointer = cfg.get(member, POINTER)
            if status != WAITING or pointer != event.committee:
                violations.append(
                    f"configuration {event.configuration_index}: committee "
                    f"{tuple(event.committee.members)} convened but member {member} has "
                    f"S={status!r}, P={pointer!r}"
                )
    return PropertyReport("Synchronization", not violations, violations)


def check_progress(
    trace: Trace,
    hypergraph: Hypergraph,
    grace_steps: Optional[int] = None,
) -> PropertyReport:
    """*If all members of a committee are waiting, some member eventually meets.*

    Finite-trace rendering: we flag a violation if some committee had **all**
    its members continuously waiting (problem-level waiting, i.e. status
    ``looking`` or ``waiting``) for the last ``grace_steps`` configurations of
    the trace and none of its members ever participated in a meeting during
    that window.  ``grace_steps`` defaults to half the trace length.

    This is necessarily an approximation of a liveness property; the default
    window is generous enough that the algorithms' progress mechanisms (token
    priority) act well within it for the sizes we simulate.
    """
    configurations = trace.configurations
    if len(configurations) < 4:
        return PropertyReport("Progress", True)
    window = grace_steps if grace_steps is not None else max(2, len(configurations) // 2)
    window = min(window, len(configurations) - 1)
    tail = configurations[-window:]

    violations: List[str] = []
    for edge in hypergraph.hyperedges:
        all_waiting_throughout = all(
            all(cfg.get(q, STATUS) in (LOOKING, WAITING) for q in edge) for cfg in tail
        )
        if not all_waiting_throughout:
            continue
        # Did any member participate in a meeting during the window?
        member_met = False
        for cfg in tail:
            for other in hypergraph.hyperedges:
                if committee_meets(cfg, other) and any(q in other for q in edge):
                    member_met = True
                    break
            if member_met:
                break
        if not member_met:
            violations.append(
                f"committee {tuple(edge.members)}: all members waiting for the last "
                f"{window} configurations and none participated in any meeting"
            )
    return PropertyReport("Progress", not violations, violations)
