"""2-Phase Discussion checkers (Definition 1).

* **Essential discussion**: after a meeting convenes, every participating
  professor performs its essential discussion (operationally: it executes the
  ``Step32`` / ``Step3`` action, i.e. reaches status ``done`` while its
  committee is meeting) before the meeting can terminate.
* **Voluntary discussion**: the meeting then continues until some professor
  *voluntarily* terminates it, i.e. the committee only stops meeting because
  a member executed ``Step4`` (left with status ``done``) -- never because a
  member abandoned the meeting in another way.

Both properties exist in two equivalent renderings: the dense post-hoc
checkers (:func:`check_essential_discussion` /
:func:`check_voluntary_discussion`, which need a recorded trace) and the
streaming monitors (:class:`StreamingEssentialDiscussionMonitor` /
:class:`StreamingVoluntaryDiscussionMonitor`) that consume the scheduler's
configuration stream in O(n + m) memory and produce byte-identical
:class:`~repro.spec.properties.PropertyReport` objects — so sparse
multi-million-step campaign runs can check 2-phase discussion online.  The
:class:`~repro.spec.streaming.StreamingSpecSuite` wires them up behind its
``check_discussion`` switch.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.states import DONE, POINTER, STATUS, WAITING
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.configuration import Configuration
from repro.kernel.trace import Trace
from repro.spec.events import MeetingEvent, committee_meets, meeting_events
from repro.spec.properties import PropertyReport


def _meeting_intervals(trace: Trace, hypergraph: Hypergraph) -> List[Tuple[Hyperedge, int, Optional[int]]]:
    """Pair every convene event with the matching terminate event (or ``None``)."""
    intervals: List[Tuple[Hyperedge, int, Optional[int]]] = []
    open_since: Dict[Hyperedge, int] = {}
    for event in meeting_events(trace, hypergraph):
        if event.kind == "convene":
            open_since[event.committee] = event.configuration_index
        else:
            start = open_since.pop(event.committee, None)
            if start is not None:
                intervals.append((event.committee, start, event.configuration_index))
    for committee, start in open_since.items():
        intervals.append((committee, start, None))
    return intervals


def check_essential_discussion(trace: Trace, hypergraph: Hypergraph) -> PropertyReport:
    """Every member of a convened-and-terminated meeting reached ``done`` during it."""
    violations: List[str] = []
    configurations = trace.configurations
    for committee, start, end in _meeting_intervals(trace, hypergraph):
        if end is None:
            continue  # still meeting at the end of the trace: nothing to check yet
        reached_done = {member: False for member in committee}
        for index in range(start, end):
            cfg = configurations[index]
            for member in committee:
                if cfg.get(member, STATUS) == DONE and cfg.get(member, POINTER) == committee:
                    reached_done[member] = True
        missing = [m for m, ok in reached_done.items() if not ok]
        if missing:
            violations.append(
                f"meeting of {tuple(committee.members)} (configurations {start}..{end}) "
                f"terminated before members {missing} performed their essential discussion"
            )
    return PropertyReport("EssentialDiscussion", not violations, violations)


def check_voluntary_discussion(trace: Trace, hypergraph: Hypergraph) -> PropertyReport:
    """A convened meeting only terminates because a member voluntarily left.

    Operationally: in the step that makes the committee stop meeting, at
    least one member that was pointing at the committee with status ``done``
    resets its pointer (the ``Step4`` signature).  A meeting that dissolves
    any other way (e.g. a member jumping straight to another committee)
    violates voluntary discussion.
    """
    violations: List[str] = []
    configurations = trace.configurations
    for committee, start, end in _meeting_intervals(trace, hypergraph):
        if end is None or end == 0:
            continue
        before = configurations[end - 1]
        after = configurations[end]
        voluntary = False
        for member in committee:
            was_done_here = (
                before.get(member, STATUS) == DONE
                and before.get(member, POINTER) == committee
            )
            left = after.get(member, POINTER) != committee
            if was_done_here and left:
                voluntary = True
                break
        if not voluntary:
            violations.append(
                f"meeting of {tuple(committee.members)} terminated at configuration {end} "
                "without any member voluntarily leaving from the done status"
            )
    return PropertyReport("VoluntaryDiscussion", not violations, violations)


# --------------------------------------------------------------------------- #
# streaming monitors (sparse-run counterparts of the checkers above)
# --------------------------------------------------------------------------- #
class StreamingEssentialDiscussionMonitor:
    """Online counterpart of :func:`check_essential_discussion`.

    Tracks, per *open* meeting (opened by a convene event — meetings
    inherited from an arbitrary initial configuration carry no guarantee and
    are skipped, exactly like the dense interval pairing), which members have
    reached ``done`` while pointing at the committee.  The dense checker
    scans configurations ``start..end-1``, so marks are updated from the
    convene configuration (inclusive) up to the one *before* the terminate
    event: terminations are handled first in :meth:`observe`.

    ``writers`` (the step delta's writer map, forwarded by the suite exactly
    when the shared event stream took its delta fast path) drives the
    ``O(|writers|)`` update: a member's mark can only flip when it writes its
    status or pointer.  ``None`` forces a full rescan of every open meeting —
    first observation, delta-less records, configuration-epoch changes.
    """

    name = "EssentialDiscussion"

    def __init__(self) -> None:
        self._violations: List[str] = []
        #: committee -> (convene index, member -> reached ``done`` here)
        self._open: Dict[Hyperedge, Tuple[int, Dict[ProcessId, bool]]] = {}
        self._member_open: Dict[ProcessId, Set[Hyperedge]] = {}

    @staticmethod
    def _mark(committee: Hyperedge, reached: Dict[ProcessId, bool],
              member: ProcessId, states: Mapping[ProcessId, Mapping[str, object]]) -> None:
        state = states[member]
        if state.get(STATUS) == DONE and state.get(POINTER) == committee:
            reached[member] = True

    def observe(
        self,
        index: int,
        configuration: Configuration,
        events: Sequence[MeetingEvent],
        writers: Optional[Mapping[ProcessId, Tuple[str, ...]]] = None,
    ) -> None:
        open_meetings = self._open
        member_open = self._member_open
        # Terminations first: γ_index is outside the dense scan window.
        for event in events:
            if event.kind != "terminate":
                continue
            entry = open_meetings.pop(event.committee, None)
            if entry is None:
                continue  # meeting inherited from the initial configuration
            start, reached = entry
            for member in event.committee:
                committees = member_open.get(member)
                if committees is not None:
                    committees.discard(event.committee)
            missing = [m for m, ok in reached.items() if not ok]
            if missing:
                self._violations.append(
                    f"meeting of {tuple(event.committee.members)} "
                    f"(configurations {start}..{index}) terminated before "
                    f"members {missing} performed their essential discussion"
                )
        states = configuration.states_view()
        # New meetings: the convene configuration is part of the scan window.
        for event in events:
            if event.kind != "convene":
                continue
            committee = event.committee
            reached = {member: False for member in committee}
            open_meetings[committee] = (index, reached)
            for member in committee:
                member_open.setdefault(member, set()).add(committee)
                self._mark(committee, reached, member, states)
        # Marks for meetings that stay open through γ_index.
        if writers is None:
            for committee, (_, reached) in open_meetings.items():
                for member in committee:
                    if not reached[member]:
                        self._mark(committee, reached, member, states)
        else:
            for pid, written in writers.items():
                if STATUS not in written and POINTER not in written:
                    continue
                for committee in member_open.get(pid, ()):
                    _, reached = open_meetings[committee]
                    if not reached[pid]:
                        self._mark(committee, reached, pid, states)

    def report(self) -> PropertyReport:
        """Dense-identical report: meetings still open are not checked yet."""
        return PropertyReport(self.name, not self._violations, list(self._violations))


class StreamingVoluntaryDiscussionMonitor:
    """Online counterpart of :func:`check_voluntary_discussion`.

    Keeps one reference to the previously observed configuration (O(1) —
    configurations are immutable and copy-on-write) so the terminate-step
    signature check ``done-with-pointer in γ_{end-1} ∧ pointer moved in
    γ_end`` is evaluated exactly as the dense checker does on the recorded
    pair.  Like the dense interval pairing, only meetings opened by an
    observed convene event are checked.
    """

    name = "VoluntaryDiscussion"

    def __init__(self) -> None:
        self._violations: List[str] = []
        self._convened: Set[Hyperedge] = set()
        self._previous: Optional[Configuration] = None

    def observe(
        self,
        index: int,
        configuration: Configuration,
        events: Sequence[MeetingEvent],
        writers: Optional[Mapping[ProcessId, Tuple[str, ...]]] = None,
    ) -> None:
        previous = self._previous
        for event in events:
            committee = event.committee
            if event.kind == "convene":
                self._convened.add(committee)
                continue
            if committee not in self._convened:
                continue  # inherited from the initial configuration
            self._convened.discard(committee)
            voluntary = False
            if previous is not None:
                for member in committee:
                    if (
                        previous.get(member, STATUS) == DONE
                        and previous.get(member, POINTER) == committee
                        and configuration.get(member, POINTER) != committee
                    ):
                        voluntary = True
                        break
            if not voluntary:
                self._violations.append(
                    f"meeting of {tuple(committee.members)} terminated at "
                    f"configuration {index} without any member voluntarily "
                    "leaving from the done status"
                )
        self._previous = configuration

    def report(self) -> PropertyReport:
        return PropertyReport(self.name, not self._violations, list(self._violations))
