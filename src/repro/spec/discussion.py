"""2-Phase Discussion checkers (Definition 1).

* **Essential discussion**: after a meeting convenes, every participating
  professor performs its essential discussion (operationally: it executes the
  ``Step32`` / ``Step3`` action, i.e. reaches status ``done`` while its
  committee is meeting) before the meeting can terminate.
* **Voluntary discussion**: the meeting then continues until some professor
  *voluntarily* terminates it, i.e. the committee only stops meeting because
  a member executed ``Step4`` (left with status ``done``) -- never because a
  member abandoned the meeting in another way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.states import DONE, POINTER, STATUS, WAITING
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.trace import Trace
from repro.spec.events import committee_meets, meeting_events
from repro.spec.properties import PropertyReport


def _meeting_intervals(trace: Trace, hypergraph: Hypergraph) -> List[Tuple[Hyperedge, int, Optional[int]]]:
    """Pair every convene event with the matching terminate event (or ``None``)."""
    intervals: List[Tuple[Hyperedge, int, Optional[int]]] = []
    open_since: Dict[Hyperedge, int] = {}
    for event in meeting_events(trace, hypergraph):
        if event.kind == "convene":
            open_since[event.committee] = event.configuration_index
        else:
            start = open_since.pop(event.committee, None)
            if start is not None:
                intervals.append((event.committee, start, event.configuration_index))
    for committee, start in open_since.items():
        intervals.append((committee, start, None))
    return intervals


def check_essential_discussion(trace: Trace, hypergraph: Hypergraph) -> PropertyReport:
    """Every member of a convened-and-terminated meeting reached ``done`` during it."""
    violations: List[str] = []
    configurations = trace.configurations
    for committee, start, end in _meeting_intervals(trace, hypergraph):
        if end is None:
            continue  # still meeting at the end of the trace: nothing to check yet
        reached_done = {member: False for member in committee}
        for index in range(start, end):
            cfg = configurations[index]
            for member in committee:
                if cfg.get(member, STATUS) == DONE and cfg.get(member, POINTER) == committee:
                    reached_done[member] = True
        missing = [m for m, ok in reached_done.items() if not ok]
        if missing:
            violations.append(
                f"meeting of {tuple(committee.members)} (configurations {start}..{end}) "
                f"terminated before members {missing} performed their essential discussion"
            )
    return PropertyReport("EssentialDiscussion", not violations, violations)


def check_voluntary_discussion(trace: Trace, hypergraph: Hypergraph) -> PropertyReport:
    """A convened meeting only terminates because a member voluntarily left.

    Operationally: in the step that makes the committee stop meeting, at
    least one member that was pointing at the committee with status ``done``
    resets its pointer (the ``Step4`` signature).  A meeting that dissolves
    any other way (e.g. a member jumping straight to another committee)
    violates voluntary discussion.
    """
    violations: List[str] = []
    configurations = trace.configurations
    for committee, start, end in _meeting_intervals(trace, hypergraph):
        if end is None or end == 0:
            continue
        before = configurations[end - 1]
        after = configurations[end]
        voluntary = False
        for member in committee:
            was_done_here = (
                before.get(member, STATUS) == DONE
                and before.get(member, POINTER) == committee
            )
            left = after.get(member, POINTER) != committee
            if was_done_here and left:
                voluntary = True
                break
        if not voluntary:
            violations.append(
                f"meeting of {tuple(committee.members)} terminated at configuration {end} "
                "without any member voluntarily leaving from the done status"
            )
    return PropertyReport("VoluntaryDiscussion", not violations, violations)
