"""Trace-level vocabulary: meetings, convening, terminating, participating.

These are the Section 4.2 definitions, applied to recorded configurations:

* a process ``p`` is **idle** iff ``S_p = idle``;
* ``p`` is **waiting** iff ``S_p ∈ {looking, waiting}``;
* a committee ``ε`` **meets** in ``γ`` iff every member ``p ∈ ε`` has
  ``P_p = ε`` and ``S_p ∈ {waiting, done}``;
* ``ε`` **convenes** in ``γ_i`` (``i > 0``) iff it meets in ``γ_i`` but not
  in ``γ_{i-1}``, and **terminates** symmetrically;
* every member of a meeting committee **participates** in it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.states import DONE, IDLE, LOOKING, POINTER, STATUS, WAITING
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.configuration import Configuration
from repro.kernel.trace import StepDelta, Trace


def committee_meets(configuration: Configuration, edge: Hyperedge) -> bool:
    """``True`` iff committee ``edge`` meets in ``configuration``."""
    return all(
        configuration.get(q, POINTER) == edge
        and configuration.get(q, STATUS) in (WAITING, DONE)
        for q in edge
    )


def meetings_in(configuration: Configuration, hypergraph: Hypergraph) -> Tuple[Hyperedge, ...]:
    """All committees meeting in ``configuration``."""
    return tuple(e for e in hypergraph.hyperedges if committee_meets(configuration, e))


def waiting_processes(configuration: Configuration) -> Tuple[ProcessId, ...]:
    """Processes in the problem-level *waiting* state (status looking or waiting)."""
    return tuple(
        p for p in configuration if configuration.get(p, STATUS) in (LOOKING, WAITING)
    )


def idle_processes(configuration: Configuration) -> Tuple[ProcessId, ...]:
    return tuple(p for p in configuration if configuration.get(p, STATUS) == IDLE)


@dataclass(frozen=True)
class MeetingEvent:
    """A convene or terminate event extracted from a trace."""

    kind: str  # "convene" or "terminate"
    committee: Hyperedge
    configuration_index: int  # index i such that the event happens "in γ_i"


class MeetingEventStream:
    """Online convene/terminate detection over a stream of configurations.

    Feed configurations in trace order to :meth:`observe`; it returns the
    events that happen "in" the observed configuration (the same events, in
    the same order, as :func:`meeting_events` over the full trace).  Used by
    the streaming metrics collector so sparse runs
    (``record_configurations=False``) never need the dense trace.

    **Delta fast path.**  When :meth:`observe` is also given the step's
    :class:`~repro.kernel.trace.StepDelta` (every scheduler-produced
    :class:`~repro.kernel.trace.StepRecord` carries one), only the committees
    incident to processes that wrote ``S`` or ``P`` are re-examined —
    ``O(|writers| · Δ)`` instead of the ``O(n + m)`` full sweep, with
    byte-identical events: a committee *meets* as a function of its members'
    statuses and pointers alone, so a committee none of whose members wrote
    either variable cannot have changed.  The fast path self-disables (full
    resync) whenever the delta's configuration epoch differs from the last
    applied one — i.e. after
    :meth:`~repro.kernel.scheduler.Scheduler.set_configuration` /
    :meth:`~repro.kernel.faults.FaultInjector.corrupt_scheduler` swapped the
    world between steps — and whenever no delta is supplied (dense post-hoc
    replays, hand-fed configurations).

    The stream also maintains the *conflict set* — ordered pairs of
    currently-held committees that share a member — so the streaming
    Exclusion monitor checks ``O(1)`` per step in the (normal) conflict-free
    case instead of scanning all held pairs.
    """

    def __init__(self, hypergraph: Hypergraph) -> None:
        self._edges = hypergraph.hyperedges
        self._edge_order: Dict[Hyperedge, int] = {
            edge: i for i, edge in enumerate(self._edges)
        }
        self._incident: Dict[ProcessId, Tuple[Hyperedge, ...]] = {
            p: hypergraph.incident_edges(p) for p in hypergraph.vertices
        }
        self._previous: Dict[Hyperedge, bool] = {}
        self._held_by_member: Dict[ProcessId, set] = {}
        self._conflicts: set = set()
        self._held_cache: Optional[Tuple[Hyperedge, ...]] = ()
        self._held_count = 0
        self._index = 0
        self._epoch: Optional[int] = None
        #: ``True`` iff the most recent :meth:`observe` swept every committee
        #: (first observation, no delta, or epoch change).  Observers that
        #: keep their own delta-derived state (the streaming Progress
        #: monitor's status watermarks) resynchronize exactly when this is
        #: set.
        self.last_scan_was_full = True
        #: Number of committees meeting in the most recently observed
        #: configuration (the online concurrency profile sample).
        self.current_meetings = 0
        #: The events returned by the most recent :meth:`observe` call, so a
        #: second observer sharing this stream (e.g. a spec suite riding the
        #: metrics collector's stream) can read them without re-scanning.
        self.last_events: List[MeetingEvent] = []

    @property
    def observations(self) -> int:
        """Number of configurations observed so far (shared-stream sync check)."""
        return self._index

    @property
    def held(self) -> Tuple[Hyperedge, ...]:
        """The committees meeting in the most recently observed configuration.

        In hyperedge order — the streaming counterpart of
        :func:`meetings_in`.  Materialized lazily (and cached until the held
        set changes): the delta-driven monitors never touch it on the hot
        path, so steps that change no meeting pay nothing for it.
        """
        if self._held_cache is None:
            self._held_cache = tuple(
                edge for edge in self._edges if self._previous.get(edge, False)
            )
        return self._held_cache

    def conflict_pairs(self) -> List[Tuple[Hyperedge, Hyperedge]]:
        """Currently-held intersecting committee pairs, in dense checker order.

        Each pair is ordered by hyperedge position, and the list is sorted the
        way :func:`repro.spec.properties.exclusion_violations_at` enumerates
        held pairs, so violations built from it are byte-identical to the
        dense checker's.  Empty (the overwhelmingly common case) is O(1).
        """
        if not self._conflicts:
            return []
        order = self._edge_order
        return sorted(self._conflicts, key=lambda pair: (order[pair[0]], order[pair[1]]))

    # ------------------------------------------------------------------ #
    # held-set bookkeeping (flips)
    # ------------------------------------------------------------------ #
    def _flip_on(self, edge: Hyperedge) -> None:
        self._held_count += 1
        self._held_cache = None
        order = self._edge_order
        for q in edge.members:
            others = self._held_by_member.setdefault(q, set())
            for other in others:
                pair = (
                    (other, edge) if order[other] < order[edge] else (edge, other)
                )
                self._conflicts.add(pair)
            others.add(edge)

    def _flip_off(self, edge: Hyperedge) -> None:
        self._held_count -= 1
        self._held_cache = None
        for q in edge.members:
            others = self._held_by_member.get(q)
            if others is not None:
                others.discard(edge)
        if self._conflicts:
            self._conflicts = {pair for pair in self._conflicts if edge not in pair}

    # ------------------------------------------------------------------ #
    # the stream
    # ------------------------------------------------------------------ #
    def observe(
        self, configuration: Configuration, delta: Optional["StepDelta"] = None
    ) -> List[MeetingEvent]:
        events: List[MeetingEvent] = []
        first = self._index == 0
        use_delta = (
            delta is not None
            and not first
            and self._epoch is not None
            and delta.epoch == self._epoch
        )
        self._epoch = delta.epoch if delta is not None else None
        self.last_scan_was_full = not use_delta
        if use_delta:
            # Only committees with a member that wrote S or P can have
            # changed their meeting status; everything else keeps its flag.
            candidates: List[Hyperedge] = []
            seen: set = set()
            incident = self._incident
            for pid, written in delta.writes.items():
                if STATUS not in written and POINTER not in written:
                    continue
                for edge in incident.get(pid, ()):
                    if edge not in seen:
                        seen.add(edge)
                        candidates.append(edge)
            # Events must come out in hyperedge order, like the full sweep's.
            candidates.sort(key=self._edge_order.__getitem__)
            edges = candidates
        else:
            edges = self._edges
        # Inlined committee_meets over the zero-copy state view: this runs
        # per candidate committee per step on sparse multi-million-step runs,
        # so the per-variable accessor cost matters.
        states = configuration.states_view()
        previous = self._previous
        for edge in edges:
            now = True
            for q in edge.members:
                state = states[q]
                pointer = state.get(POINTER)
                if pointer is not edge and pointer != edge:
                    now = False
                    break
                status = state.get(STATUS)
                if status != WAITING and status != DONE:
                    now = False
                    break
            before = previous.get(edge, False)
            if now and not before:
                if not first:
                    events.append(MeetingEvent("convene", edge, self._index))
                self._flip_on(edge)
            elif before and not now:
                if not first:
                    events.append(MeetingEvent("terminate", edge, self._index))
                self._flip_off(edge)
            previous[edge] = now
        self.current_meetings = self._held_count
        self.last_events = events
        self._index += 1
        return events


def meeting_events(trace: Trace, hypergraph: Hypergraph) -> List[MeetingEvent]:
    """All convene/terminate events of a (densely recorded) trace."""
    trace.require_dense("meeting_events")
    stream = MeetingEventStream(hypergraph)
    events: List[MeetingEvent] = []
    for configuration in trace.configurations:
        events.extend(stream.observe(configuration))
    return events


def convened_meetings(trace: Trace, hypergraph: Hypergraph) -> List[MeetingEvent]:
    """Only the convene events."""
    return [e for e in meeting_events(trace, hypergraph) if e.kind == "convene"]


def terminated_meetings(trace: Trace, hypergraph: Hypergraph) -> List[MeetingEvent]:
    """Only the terminate events."""
    return [e for e in meeting_events(trace, hypergraph) if e.kind == "terminate"]


def participations(trace: Trace, hypergraph: Hypergraph) -> Dict[ProcessId, int]:
    """Number of distinct meetings each professor participated in.

    A professor participates in a meeting for every convene event of a
    committee it belongs to.  (Counting convene events rather than
    configurations avoids counting a long meeting many times.)
    """
    counts: Dict[ProcessId, int] = {p: 0 for p in hypergraph.vertices}
    for event in convened_meetings(trace, hypergraph):
        for member in event.committee:
            counts[member] += 1
    return counts


def concurrency_profile(trace: Trace, hypergraph: Hypergraph) -> List[int]:
    """Number of simultaneously-held meetings in every configuration."""
    trace.require_dense("concurrency_profile")
    return [len(meetings_in(cfg, hypergraph)) for cfg in trace.configurations]
