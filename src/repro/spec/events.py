"""Trace-level vocabulary: meetings, convening, terminating, participating.

These are the Section 4.2 definitions, applied to recorded configurations:

* a process ``p`` is **idle** iff ``S_p = idle``;
* ``p`` is **waiting** iff ``S_p ∈ {looking, waiting}``;
* a committee ``ε`` **meets** in ``γ`` iff every member ``p ∈ ε`` has
  ``P_p = ε`` and ``S_p ∈ {waiting, done}``;
* ``ε`` **convenes** in ``γ_i`` (``i > 0``) iff it meets in ``γ_i`` but not
  in ``γ_{i-1}``, and **terminates** symmetrically;
* every member of a meeting committee **participates** in it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.states import DONE, IDLE, LOOKING, POINTER, STATUS, WAITING
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.configuration import Configuration
from repro.kernel.trace import Trace


def committee_meets(configuration: Configuration, edge: Hyperedge) -> bool:
    """``True`` iff committee ``edge`` meets in ``configuration``."""
    return all(
        configuration.get(q, POINTER) == edge
        and configuration.get(q, STATUS) in (WAITING, DONE)
        for q in edge
    )


def meetings_in(configuration: Configuration, hypergraph: Hypergraph) -> Tuple[Hyperedge, ...]:
    """All committees meeting in ``configuration``."""
    return tuple(e for e in hypergraph.hyperedges if committee_meets(configuration, e))


def waiting_processes(configuration: Configuration) -> Tuple[ProcessId, ...]:
    """Processes in the problem-level *waiting* state (status looking or waiting)."""
    return tuple(
        p for p in configuration if configuration.get(p, STATUS) in (LOOKING, WAITING)
    )


def idle_processes(configuration: Configuration) -> Tuple[ProcessId, ...]:
    return tuple(p for p in configuration if configuration.get(p, STATUS) == IDLE)


@dataclass(frozen=True)
class MeetingEvent:
    """A convene or terminate event extracted from a trace."""

    kind: str  # "convene" or "terminate"
    committee: Hyperedge
    configuration_index: int  # index i such that the event happens "in γ_i"


class MeetingEventStream:
    """Online convene/terminate detection over a stream of configurations.

    Feed configurations in trace order to :meth:`observe`; it returns the
    events that happen "in" the observed configuration (the same events, in
    the same order, as :func:`meeting_events` over the full trace).  Used by
    the streaming metrics collector so sparse runs
    (``record_configurations=False``) never need the dense trace.
    """

    def __init__(self, hypergraph: Hypergraph) -> None:
        self._edges = hypergraph.hyperedges
        self._previous: Dict[Hyperedge, bool] = {}
        self._index = 0
        #: Number of committees meeting in the most recently observed
        #: configuration (the online concurrency profile sample).
        self.current_meetings = 0
        #: The committees meeting in the most recently observed configuration,
        #: in hyperedge order — the streaming counterpart of
        #: :func:`meetings_in` (used by the streaming spec monitors).
        self.held: Tuple[Hyperedge, ...] = ()
        #: The events returned by the most recent :meth:`observe` call, so a
        #: second observer sharing this stream (e.g. a spec suite riding the
        #: metrics collector's stream) can read them without re-scanning.
        self.last_events: List[MeetingEvent] = []

    @property
    def observations(self) -> int:
        """Number of configurations observed so far (shared-stream sync check)."""
        return self._index

    def observe(self, configuration: Configuration) -> List[MeetingEvent]:
        events: List[MeetingEvent] = []
        first = self._index == 0
        held: List[Hyperedge] = []
        # Inlined committee_meets over the zero-copy state view: this runs
        # once per hyperedge per step on sparse multi-million-step runs, so
        # the per-variable accessor cost matters.
        states = configuration.states_view()
        for edge in self._edges:
            now = True
            for q in edge.members:
                state = states[q]
                pointer = state.get(POINTER)
                if pointer is not edge and pointer != edge:
                    now = False
                    break
                status = state.get(STATUS)
                if status != WAITING and status != DONE:
                    now = False
                    break
            if now:
                held.append(edge)
            if not first:
                before = self._previous[edge]
                if now and not before:
                    events.append(MeetingEvent("convene", edge, self._index))
                elif before and not now:
                    events.append(MeetingEvent("terminate", edge, self._index))
            self._previous[edge] = now
        self.held = tuple(held)
        self.current_meetings = len(held)
        self.last_events = events
        self._index += 1
        return events


def meeting_events(trace: Trace, hypergraph: Hypergraph) -> List[MeetingEvent]:
    """All convene/terminate events of a (densely recorded) trace."""
    trace.require_dense("meeting_events")
    stream = MeetingEventStream(hypergraph)
    events: List[MeetingEvent] = []
    for configuration in trace.configurations:
        events.extend(stream.observe(configuration))
    return events


def convened_meetings(trace: Trace, hypergraph: Hypergraph) -> List[MeetingEvent]:
    """Only the convene events."""
    return [e for e in meeting_events(trace, hypergraph) if e.kind == "convene"]


def terminated_meetings(trace: Trace, hypergraph: Hypergraph) -> List[MeetingEvent]:
    """Only the terminate events."""
    return [e for e in meeting_events(trace, hypergraph) if e.kind == "terminate"]


def participations(trace: Trace, hypergraph: Hypergraph) -> Dict[ProcessId, int]:
    """Number of distinct meetings each professor participated in.

    A professor participates in a meeting for every convene event of a
    committee it belongs to.  (Counting convene events rather than
    configurations avoids counting a long meeting many times.)
    """
    counts: Dict[ProcessId, int] = {p: 0 for p in hypergraph.vertices}
    for event in convened_meetings(trace, hypergraph):
        for member in event.committee:
            counts[member] += 1
    return counts


def concurrency_profile(trace: Trace, hypergraph: Hypergraph) -> List[int]:
    """Number of simultaneously-held meetings in every configuration."""
    trace.require_dense("concurrency_profile")
    return [len(meetings_in(cfg, hypergraph)) for cfg in trace.configurations]
