"""Streaming specification monitors: safety/progress/fairness in O(n + m) memory.

The dense checkers in :mod:`repro.spec.properties` and
:mod:`repro.spec.fairness` need the full recorded configuration sequence,
which production-scale runs (``record_configurations=False``) do not retain.
The monitors here consume the *stream* of configurations a scheduler
produces — via the observer protocol shared with
:class:`~repro.metrics.collector.StreamingMetricsCollector` (the scheduler's
``step_listener`` hook) — and produce the **same**
:class:`~repro.spec.properties.PropertyReport` /
:class:`~repro.spec.fairness.FairnessSummary` objects as the dense post-hoc
checkers, in memory proportional to the hypergraph, not to the run length.
This is the runtime-verification style of checking: properties are evaluated
incrementally over observations instead of over a stored trace.

Usage::

    suite = StreamingSpecSuite(hypergraph)
    scheduler = Scheduler(algorithm, ..., record_configurations=False,
                          step_listener=suite.observe_step)
    scheduler.run(max_steps=5_000_000)
    verdicts = suite.verdicts()     # == the dense checkers on the same run
    assert verdicts.exclusion.holds and verdicts.synchronization.holds

With ``stop_on_violation=True`` the suite raises
:class:`SpecViolationError` (a :class:`~repro.kernel.scheduler.StopRun`) at
the first safety violation; ``Scheduler.run`` halts at the offending step
with ``stop_reason == "violation"`` and the suite's
:attr:`~StreamingSpecSuite.first_violation` holds a
:class:`CounterexampleWindow` — the violation plus the trailing
configurations leading up to it — for debugging without a recorded trace.

Parity contract with the dense checkers, monitor by monitor:

* **Exclusion** — dense checks every configuration from the first convene
  onward; the monitor arms itself at the first convene event and checks the
  held meetings of every configuration from that one (inclusive) onward.
* **Synchronization** — checked on each convene event, in the configuration
  the event happens in; identical in both paths.
* **Progress** — the dense check examines only the *final* tail window of
  the trace, so a mid-run stall that recovers is not a violation; the
  monitor therefore keeps per-professor "last seen not-waiting" / "last seen
  in a meeting" watermarks and renders the verdict at :meth:`finalize` time,
  when the trace length (and hence the default window) is known.  Progress
  violations consequently never trigger the early stop — only the safety
  monitors (Exclusion, Synchronization) do.
* **Fairness** — convene-event counting, shared with the metrics collector.
* **2-phase discussion** (``check_discussion=True``) — the
  Essential/Voluntary checkers of :mod:`repro.spec.discussion` stream too:
  intervals are paired on convene/terminate events exactly like the dense
  ``_meeting_intervals`` pairing, so the reports match byte for byte.
  Campaign runs (:mod:`repro.campaign`) enable this so 2-phase discussion is
  checked on sparse runs.

**Cost per step.**  As of the kernel's writer-set delta protocol
(:class:`~repro.kernel.trace.StepDelta`), the suite updates from each step's
exact ``(process, variable)`` writes in ``O(|writers|)`` amortized per step:
the shared :class:`~repro.spec.events.MeetingEventStream` re-examines only
committees incident to a process that wrote ``S`` or ``P``, the Exclusion
monitor consults the stream's (normally empty) conflict set, and the
Progress monitor updates its watermarks from status flips and
convene/terminate events instead of sweeping every professor.  The suite
falls back to the original ``O(n + m)`` full sweep exactly when the delta
cannot be trusted: the first observation, records without a delta
(hand-driven streams), and — crucially — whenever the delta's configuration
*epoch* differs from the last applied one, which is how the kernel signals
an external configuration swap
(:meth:`~repro.kernel.scheduler.Scheduler.set_configuration`,
:meth:`~repro.kernel.faults.FaultInjector.corrupt_scheduler`) between steps.
Verdicts are byte-identical on every path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.states import LOOKING, POINTER, STATUS, WAITING
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.configuration import Configuration
from repro.kernel.scheduler import StopRun
from repro.kernel.trace import StepRecord
from repro.spec.discussion import (
    StreamingEssentialDiscussionMonitor,
    StreamingVoluntaryDiscussionMonitor,
)
from repro.spec.events import MeetingEvent, MeetingEventStream
from repro.spec.fairness import FairnessSummary
from repro.spec.properties import (
    PropertyReport,
    Violation,
    exclusion_violations_at,
    progress_violation,
    progress_window,
    report_from_details,
    synchronization_violations_at,
)


@dataclass(frozen=True)
class CounterexampleWindow:
    """A violation plus the trailing configurations that led up to it.

    ``frames`` holds ``(configuration_index, configuration)`` pairs in trace
    order, ending with the configuration the violation occurred in — the
    debuggable artefact a sparse run can still produce, because the suite
    keeps a small bounded deque of recent configurations.
    """

    violation: Violation
    frames: Tuple[Tuple[int, Configuration], ...]

    @property
    def step_index(self) -> int:
        """Index of the configuration (= scheduler step count) of the violation."""
        return self.violation.configuration_index

    @property
    def committees(self) -> Tuple[Tuple[ProcessId, ...], ...]:
        return self.violation.committees

    def describe(self) -> str:
        """Multi-line human-readable rendering (used by ``repro-cc check``)."""
        lines = [self.violation.message]
        for index, configuration in self.frames:
            states = ", ".join(
                f"{pid}:S={configuration.get(pid, STATUS)!r}"
                f",P={_pointer_label(configuration, pid)}"
                for pid in configuration
            )
            lines.append(f"  γ_{index}: {states}")
        return "\n".join(lines)


def _pointer_label(configuration: Configuration, pid: ProcessId) -> str:
    pointer = configuration.get(pid, POINTER)
    if isinstance(pointer, Hyperedge):
        return str(tuple(pointer.members))
    return repr(pointer)


class SpecViolationError(StopRun):
    """Raised by a monitor in ``stop_on_violation`` mode; halts the scheduler.

    Subclasses :class:`~repro.kernel.scheduler.StopRun`, so
    ``Scheduler.run`` catches it and returns with
    ``stop_reason == "violation"`` after committing the offending step.
    """

    def __init__(self, counterexample: CounterexampleWindow) -> None:
        super().__init__("violation", counterexample.violation.message)
        self.counterexample = counterexample


# --------------------------------------------------------------------------- #
# individual monitors
# --------------------------------------------------------------------------- #
class StreamingPropertyMonitor:
    """Base class: consumes per-configuration observations, accumulates violations.

    Safety monitors implement :meth:`observe` (full-information: the held
    meetings of the configuration) and may additionally provide an
    ``observe_stream(index, configuration, events, stream)`` fast path that
    reads the shared :class:`~repro.spec.events.MeetingEventStream` instead
    of a materialized held tuple; the suite prefers the fast path when
    present and falls back to :meth:`observe` for third-party monitors.

    :class:`StreamingProgressMonitor` is *not* a safety monitor (its verdict
    is finalize-time only) and deliberately does not implement this
    signature — its ``observe(index, configuration, events, writers)`` is
    the suite's delta-driven hook; see its docstring.
    """

    name: str = "Property"

    def __init__(self) -> None:
        self._details: List[Violation] = []

    def observe(
        self,
        index: int,
        configuration: Configuration,
        held: Sequence[Hyperedge],
        events: Sequence[MeetingEvent],
    ) -> List[Violation]:
        """Consume ``γ_index``; returns the violations that occur *in* it."""
        raise NotImplementedError

    def finalize(self, n_configurations: int) -> List[Violation]:
        """Violations only decidable once the stream length is known."""
        return []

    def report(self, n_configurations: int) -> PropertyReport:
        """The dense-identical :class:`PropertyReport` for the observed stream."""
        return report_from_details(
            self.name, self._details + self.finalize(n_configurations)
        )


class StreamingExclusionMonitor(StreamingPropertyMonitor):
    """Online counterpart of :func:`repro.spec.properties.check_exclusion`.

    Note that under the single-pointer trace vocabulary a violation cannot
    arise from ``committee_meets``-consistent states: a shared member of two
    conflicting committees has one ``P`` value, so distinct intersecting
    committees can never *meet* simultaneously — exactly like the dense
    checker, whose verdict this monitor replicates.  The monitor is
    defense-in-depth: it guards the meeting-detection invariant itself (a
    regression in ``committee_meets``/pointer handling, or a future
    multi-pointer algorithm, would surface here), while observed safety
    violations in practice come from the Synchronization monitor.
    """

    name = "Exclusion"

    def __init__(self) -> None:
        super().__init__()
        self._armed = False

    def _arm_on_convene(self, events) -> bool:
        if not self._armed and any(e.kind == "convene" for e in events):
            # The first convene: from this configuration (inclusive) onward
            # every pair of held meetings must be conflict-free — exactly the
            # dense checker's ``start = min(convene_indices)``.
            self._armed = True
        return self._armed

    def observe(self, index, configuration, held, events):
        """Full-held path: scan all pairs of the materialized held tuple."""
        if not self._arm_on_convene(events):
            return []
        found = exclusion_violations_at(index, held)
        self._details.extend(found)
        return found

    def observe_stream(self, index, configuration, events, stream):
        """Delta path: read the stream's conflict set — O(1) when conflict-free.

        The stream maintains the intersecting pairs among currently-held
        committees across flips, so in the (normal) conflict-free steady
        state this costs one empty-set check per step instead of an
        all-pairs scan of the held meetings.  Pairs come out in the dense
        checker's enumeration order, so accumulated violations stay
        byte-identical.
        """
        if not self._arm_on_convene(events):
            return []
        pairs = stream.conflict_pairs()
        if not pairs:
            return []
        found: List[Violation] = []
        for a, b in pairs:
            found.extend(exclusion_violations_at(index, (a, b)))
        self._details.extend(found)
        return found


class StreamingSynchronizationMonitor(StreamingPropertyMonitor):
    """Online counterpart of :func:`repro.spec.properties.check_synchronization`.

    Already event-driven — the check runs only on convene events — so the
    delta fast path (:meth:`observe_stream`) just skips the unused held
    tuple.
    """

    name = "Synchronization"

    def observe(self, index, configuration, held, events):
        found: List[Violation] = []
        for event in events:
            if event.kind == "convene":
                found.extend(
                    synchronization_violations_at(index, event.committee, configuration)
                )
        self._details.extend(found)
        return found

    def observe_stream(self, index, configuration, events, stream):
        return self.observe(index, configuration, (), events)


class StreamingProgressMonitor(StreamingPropertyMonitor):
    """Online counterpart of :func:`repro.spec.properties.check_progress`.

    Keeps two watermarks per professor — the last configuration index in
    which it was *not* problem-level waiting, and the last one in which it
    participated in a held meeting.  A committee violates Progress iff both
    watermarks of every member predate the final grace window, which is
    exactly the dense tail-window condition.  Being a liveness rendering,
    the verdict is only available at :meth:`finalize`.

    The watermarks are maintained in ``O(|writers|)`` per step: a professor's
    waiting-ness can only flip when it writes its status ``S`` (tracked from
    the step delta's writer set; a full rescan happens exactly when the
    shared stream full-scans, i.e. on the first observation, delta-less
    records, and configuration-epoch changes), and meeting participation is
    tracked from terminate events plus — for meetings still held when the
    verdict is rendered — the stream's current held set.  Not-waiting
    professors carry an *implicit* current watermark (their last-not-waiting
    index is "now"); :meth:`finalize` materializes it, so the reports stay
    byte-identical to the dense checker's at any observation point.
    """

    name = "Progress"

    def __init__(
        self,
        hypergraph: Hypergraph,
        grace_steps: Optional[int] = None,
        *,
        stream: MeetingEventStream,
    ) -> None:
        super().__init__()
        if grace_steps is not None and grace_steps < 1:
            # Fail at construction, not after a multi-million-step run.
            raise ValueError(f"grace_steps must be >= 1, got {grace_steps!r}")
        if stream is None:
            # The finalize-time "still meeting" credit comes from the
            # stream's held set; without it the monitor would silently
            # report false violations for meetings held through the window.
            raise ValueError(
                "StreamingProgressMonitor requires the MeetingEventStream "
                "whose events it consumes (StreamingSpecSuite wires this up)"
            )
        self._hypergraph = hypergraph
        self._grace_steps = grace_steps
        self._stream = stream
        # Is the professor currently problem-level waiting (status looking or
        # waiting)?  While False, its last-not-waiting watermark is
        # implicitly the current index; the stored value is only
        # authoritative while True.
        self._waiting: Dict[ProcessId, bool] = {p: False for p in hypergraph.vertices}
        self._last_not_waiting: Dict[ProcessId, int] = {
            p: -1 for p in hypergraph.vertices
        }
        self._last_met: Dict[ProcessId, int] = {p: -1 for p in hypergraph.vertices}

    def _update_waiting(self, pid: ProcessId, status: object, index: int) -> None:
        if status == LOOKING or status == WAITING:
            if not self._waiting[pid]:
                # Entered the waiting state in this configuration: the last
                # not-waiting index is the previous one (-1 before γ_0),
                # exactly what the dense per-configuration sweep recorded.
                self._last_not_waiting[pid] = index - 1
                self._waiting[pid] = True
        else:
            self._waiting[pid] = False

    def observe(
        self,
        index: int,
        configuration: Configuration,
        events: Sequence[MeetingEvent],
        writers: Optional[Mapping[ProcessId, Tuple[str, ...]]] = None,
    ) -> List[Violation]:
        """Consume ``γ_index``.

        ``writers`` is the step delta's writer map when the incremental path
        applies (only those professors can have flipped their status);
        ``None`` forces a full status rescan — first observation, delta-less
        record, or epoch change.
        """
        states = configuration.states_view()
        if writers is None:
            for pid in self._waiting:
                self._update_waiting(pid, states[pid].get(STATUS), index)
        else:
            for pid, written in writers.items():
                if STATUS in written and pid in self._waiting:
                    self._update_waiting(pid, states[pid].get(STATUS), index)
        last_met = self._last_met
        for event in events:
            if event.kind == "terminate":
                # The meeting was held up to (and including) the previous
                # configuration; members still meeting now are covered by the
                # stream's held set at finalize time.
                for member in event.committee:
                    if last_met[member] < index - 1:
                        last_met[member] = index - 1
        return []

    def finalize(self, n_configurations: int) -> List[Violation]:
        window = progress_window(n_configurations, self._grace_steps)
        if window is None:
            return []
        start = n_configurations - window
        last_index = n_configurations - 1
        # Materialize the implicit watermarks: not-waiting professors are
        # not-waiting *now*, members of still-held meetings are meeting now.
        meeting_now: set = set()
        for edge in self._stream.held:
            meeting_now.update(edge.members)
        waiting = self._waiting
        last_not_waiting = self._last_not_waiting
        last_met = self._last_met
        found: List[Violation] = []
        for edge in self._hypergraph.hyperedges:
            if any(
                (last_index if not waiting[q] else last_not_waiting[q]) >= start
                for q in edge
            ):
                continue  # some member left the waiting state inside the window
            if any(
                (last_index if q in meeting_now else last_met[q]) >= start
                for q in edge
            ):
                continue  # some member participated in a meeting inside the window
            found.append(progress_violation(edge, window, last_index))
        return found


class StreamingFairnessMonitor:
    """Online counterpart of :func:`repro.spec.fairness.professor_fairness_counts`.

    Counts convene events per professor and per committee; shared by
    :class:`StreamingSpecSuite` and the
    :class:`~repro.metrics.collector.StreamingMetricsCollector` so the two
    observers never disagree on participation counts.
    """

    def __init__(self, hypergraph: Hypergraph) -> None:
        self._per_professor: Dict[ProcessId, int] = {p: 0 for p in hypergraph.vertices}
        self._per_committee: Dict[Tuple[ProcessId, ...], int] = {
            e.members: 0 for e in hypergraph.hyperedges
        }
        self.meetings_convened = 0

    def consume(self, events: Sequence[MeetingEvent]) -> None:
        for event in events:
            if event.kind != "convene":
                continue
            self.meetings_convened += 1
            self._per_committee[event.committee.members] += 1
            for member in event.committee:
                self._per_professor[member] += 1

    def summary(self) -> FairnessSummary:
        return FairnessSummary(
            per_professor=dict(self._per_professor),
            per_committee=dict(self._per_committee),
        )


# --------------------------------------------------------------------------- #
# the suite
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SpecVerdicts:
    """The bundle a spec-checked run produces (dense-identical reports).

    ``essential`` / ``voluntary`` carry the 2-phase discussion reports when
    the suite ran with ``check_discussion=True`` (campaign runs do); they are
    ``None`` otherwise and then do not participate in :attr:`all_hold`.
    """

    exclusion: PropertyReport
    synchronization: PropertyReport
    progress: PropertyReport
    fairness: FairnessSummary
    first_violation: Optional[CounterexampleWindow] = None
    essential: Optional[PropertyReport] = None
    voluntary: Optional[PropertyReport] = None

    @property
    def all_hold(self) -> bool:
        checked = self.exclusion.holds and self.synchronization.holds and self.progress.holds
        for report in (self.essential, self.voluntary):
            if report is not None:
                checked = checked and report.holds
        return checked

    @property
    def reports(self) -> Tuple[PropertyReport, ...]:
        """The checked reports, in table order (discussion only when enabled)."""
        base = (self.exclusion, self.synchronization, self.progress)
        extra = tuple(r for r in (self.essential, self.voluntary) if r is not None)
        return base + extra

    def as_rows(self) -> List[Dict[str, object]]:
        """One row per property (used by the ``repro-cc check`` table)."""
        rows: List[Dict[str, object]] = []
        for report in self.reports:
            rows.append(
                {
                    "property": report.name,
                    "holds": report.holds,
                    "violations": len(report.violations),
                    "first": (
                        report.details[0].configuration_index if report.details else "-"
                    ),
                }
            )
        return rows


class StreamingSpecSuite:
    """All four streaming monitors behind one scheduler observer.

    Parameters
    ----------
    hypergraph:
        Professors and committees (the spec is algorithm-agnostic).
    grace_steps:
        Progress tail window; defaults to half the trace length, like the
        dense checker.
    stop_on_violation:
        Raise :class:`SpecViolationError` at the first Exclusion or
        Synchronization violation, halting the scheduler at the offending
        step (Progress is a finalize-time verdict and never early-stops).
    window_size:
        Number of trailing ``(index, configuration)`` frames retained for the
        counterexample window.
    stream, fairness:
        Optional *shared* :class:`MeetingEventStream` /
        :class:`StreamingFairnessMonitor` already driven by an upstream
        observer in the same listener list (the
        :class:`~repro.metrics.collector.StreamingMetricsCollector` exposes
        both).  When given, the suite reads the stream's last scan instead of
        re-scanning every committee, so metrics + spec checking together pay
        the per-step meeting sweep once.  The driving observer must be
        registered *before* this suite in the scheduler's ``step_listener``
        sequence.

    Attach via the scheduler's ``step_listener``; the suite consumes each
    configuration exactly once and keeps O(n + m + window_size) state.

    Mid-run fault injection caveat: like the dense post-hoc checkers on a
    trace that contains mid-run corruption, the monitors attribute every
    meeting transition to the observed stream — a meeting *fabricated* by
    :meth:`~repro.kernel.faults.FaultInjector.corrupt_scheduler` is reported
    as a convene (and, typically, as a Synchronization/Exclusion violation)
    on both paths identically.  The paper's guarantee is scoped to meetings
    convened *after the last fault*; to check snap-stabilization, attach a
    fresh suite after the last injected fault (cf.
    :func:`repro.spec.stabilization.snap_stabilization_sweep`, which starts
    each checked computation from the arbitrary configuration).
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        *,
        grace_steps: Optional[int] = None,
        stop_on_violation: bool = False,
        window_size: int = 8,
        stream: Optional[MeetingEventStream] = None,
        fairness: Optional[StreamingFairnessMonitor] = None,
        check_discussion: bool = False,
    ) -> None:
        self.hypergraph = hypergraph
        self.stop_on_violation = stop_on_violation
        self._drives_stream = stream is None
        self._stream = stream if stream is not None else MeetingEventStream(hypergraph)
        self._counts_fairness = fairness is None
        self.exclusion = StreamingExclusionMonitor()
        self.synchronization = StreamingSynchronizationMonitor()
        self.progress = StreamingProgressMonitor(
            hypergraph, grace_steps, stream=self._stream
        )
        # 2-phase discussion (Definition 1) rides along when asked for; the
        # reports are byte-identical to the dense checkers in
        # :mod:`repro.spec.discussion`.  Discussion violations never trigger
        # the early stop — they are interval-shaped (reported at terminate
        # events), not per-configuration safety checks.
        self.essential = StreamingEssentialDiscussionMonitor() if check_discussion else None
        self.voluntary = StreamingVoluntaryDiscussionMonitor() if check_discussion else None
        self.fairness = fairness if fairness is not None else StreamingFairnessMonitor(hypergraph)
        self._safety_monitors = (self.exclusion, self.synchronization)
        self._frames: Deque[Tuple[int, Configuration]] = deque(maxlen=window_size)
        self._index = 0
        self.first_violation: Optional[CounterexampleWindow] = None

    @property
    def configurations_observed(self) -> int:
        return self._index

    def observe_step(
        self, configuration: Configuration, record: Optional[StepRecord] = None
    ) -> None:
        """Scheduler ``step_listener`` hook.

        ``record``'s :class:`~repro.kernel.trace.StepDelta` (when present)
        drives the ``O(|writers|)`` fast path; a missing record/delta or a
        configuration-epoch change falls back to the full ``O(n + m)`` sweep
        with identical verdicts.
        """
        index = self._index
        self._index += 1
        delta = record.delta if record is not None else None
        if self._drives_stream:
            events = self._stream.observe(configuration, delta)
        else:
            # The stream was already driven this step by the upstream
            # observer (e.g. the metrics collector); reuse its scan.  Guard
            # the ordering invariant — reading a stale scan would silently
            # shift every verdict by one configuration.
            if self._stream.observations != self._index:
                # A listener-ordering bug in the harness wiring must crash
                # loudly — a StopRun here would masquerade as a clean early
                # stop and silently ship one-configuration-shifted verdicts.
                raise RuntimeError(  # repro-lint: disable=RL401 -- misconfiguration guard, not a run outcome
                    "shared MeetingEventStream is out of sync (stream saw "
                    f"{self._stream.observations} configurations, suite saw "
                    f"{self._index}); the observer driving the stream must be "
                    "registered before this suite in the scheduler's "
                    "step_listener sequence"
                )
            events = self._stream.last_events
        # The stream decided full-vs-delta (it owns the epoch bookkeeping);
        # the Progress monitor's status watermarks must resync exactly when
        # the stream full-scanned.
        writers = (
            None
            if delta is None or self._stream.last_scan_was_full
            else delta.writes
        )
        self._frames.append((index, configuration))
        if self._counts_fairness:
            self.fairness.consume(events)
        self.progress.observe(index, configuration, events, writers)
        if self.essential is not None:
            self.essential.observe(index, configuration, events, writers)
            self.voluntary.observe(index, configuration, events, writers)
        # Let every safety monitor observe the committed step *before*
        # raising, so post-halt verdicts stay dense-identical on the
        # recorded prefix even when several properties break at once.
        first_found: Optional[Violation] = None
        for monitor in self._safety_monitors:
            stream_hook = getattr(monitor, "observe_stream", None)
            if stream_hook is not None:
                found = stream_hook(index, configuration, events, self._stream)
            else:
                # Third-party monitor with the full-information signature:
                # materialize the held tuple for it (lazy + cached, so this
                # only costs when such a monitor is actually installed).
                found = monitor.observe(index, configuration, self._stream.held, events)
            if found and first_found is None:
                first_found = found[0]
        if first_found is not None and self.first_violation is None:
            self.first_violation = CounterexampleWindow(
                violation=first_found, frames=tuple(self._frames)
            )
            if self.stop_on_violation:
                raise SpecViolationError(self.first_violation)

    def verdicts(self) -> SpecVerdicts:
        """Dense-identical reports for the stream observed so far.

        Callable at any point (also after an early stop); Progress is
        rendered against the configurations observed so far, exactly as the
        dense checker would render it for the recorded prefix.
        """
        n = self._index
        return SpecVerdicts(
            exclusion=self.exclusion.report(n),
            synchronization=self.synchronization.report(n),
            progress=self.progress.report(n),
            fairness=self.fairness.summary(),
            first_violation=self.first_violation,
            essential=self.essential.report() if self.essential is not None else None,
            voluntary=self.voluntary.report() if self.voluntary is not None else None,
        )
