"""Snap-stabilization harness.

Snap-stabilization (Section 2.5) means: *starting from any arbitrary
configuration, every computation satisfies the specification* -- concretely,
every meeting convened after the (simulated) last fault satisfies Exclusion,
Synchronization and the 2-Phase Discussion, and Progress is never lost.

The sweep below samples many arbitrary initial configurations, runs the
algorithm from each, and checks the safety properties on the resulting
traces.  It is the executable counterpart of Theorems 2 and 3 and is used by
both the test-suite and the ``bench_thm2/thm3`` benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.base import CommitteeAlgorithmBase
from repro.kernel.algorithm import Environment
from repro.kernel.daemon import Daemon, default_daemon
from repro.kernel.scheduler import Scheduler
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.events import convened_meetings
from repro.spec.properties import PropertyReport, check_exclusion, check_progress, check_synchronization


@dataclass
class StabilizationReport:
    """Aggregated result of a snap-stabilization sweep."""

    trials: int
    total_convened_meetings: int
    reports: Dict[str, List[PropertyReport]] = field(default_factory=dict)

    @property
    def all_hold(self) -> bool:
        return all(report.holds for reports in self.reports.values() for report in reports)

    def violations(self) -> List[str]:
        out: List[str] = []
        for name, reports in self.reports.items():
            for index, report in enumerate(reports):
                if not report.holds:
                    out.extend(f"[{name} trial {index}] {v}" for v in report.violations)
        return out

    def summary(self) -> Dict[str, bool]:
        return {
            name: all(r.holds for r in reports) for name, reports in self.reports.items()
        }


def snap_stabilization_sweep(
    algorithm: CommitteeAlgorithmBase,
    environment_factory: Callable[[], Environment],
    trials: int = 10,
    max_steps: int = 1500,
    seed: int = 0,
    daemon_factory: Optional[Callable[[int], Daemon]] = None,
    check_progress_property: bool = True,
) -> StabilizationReport:
    """Run ``trials`` computations from arbitrary configurations and check safety.

    Every trial uses a fresh arbitrary initial configuration and a fresh
    daemon seed.  The environment factory is called once per trial so that
    stateful request models start clean.
    """
    reports: Dict[str, List[PropertyReport]] = {
        "Exclusion": [],
        "Synchronization": [],
        "EssentialDiscussion": [],
        "VoluntaryDiscussion": [],
    }
    if check_progress_property:
        reports["Progress"] = []
    total_convened = 0

    for trial in range(trials):
        rng = random.Random(seed + 1000 * trial)
        initial = algorithm.arbitrary_configuration(rng)
        daemon = (
            daemon_factory(seed + trial) if daemon_factory is not None else default_daemon(seed=seed + trial)
        )
        scheduler = Scheduler(
            algorithm,
            environment=environment_factory(),
            daemon=daemon,
            initial_configuration=initial,
        )
        result = scheduler.run(max_steps=max_steps)
        trace = result.trace
        hypergraph = algorithm.hypergraph
        total_convened += len(convened_meetings(trace, hypergraph))

        reports["Exclusion"].append(check_exclusion(trace, hypergraph))
        reports["Synchronization"].append(check_synchronization(trace, hypergraph))
        reports["EssentialDiscussion"].append(check_essential_discussion(trace, hypergraph))
        reports["VoluntaryDiscussion"].append(check_voluntary_discussion(trace, hypergraph))
        if check_progress_property:
            reports["Progress"].append(check_progress(trace, hypergraph))

    return StabilizationReport(
        trials=trials, total_convened_meetings=total_convened, reports=reports
    )
