"""Maximal Concurrency (Definition 2) and Degree of Fair Concurrency (Definition 5).

Both definitions use the same artefact: let (some) professors remain in their
meetings forever and observe which meetings the algorithm still manages to
convene.  Operationally we run the algorithm under
:class:`~repro.workloads.request_models.InfiniteMeetingEnvironment` (nobody
ever leaves) until the set of held meetings stops changing, then:

* **Maximal Concurrency** holds for the run iff the held meetings form a
  *maximal matching* of the hypergraph -- equivalently, no committee remains
  whose members are all still waiting (if one did, Definition 2 would require
  a further meeting to convene);
* the **Degree of Fair Concurrency** observed in the run is simply the
  number of held meetings in the quiescent configuration; Theorem 4 lower-
  bounds the worst case over all runs by ``min_{MM ∪ AMM}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.base import CommitteeAlgorithmBase
from repro.core.states import LOOKING, STATUS, WAITING
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.configuration import Configuration
from repro.kernel.daemon import Daemon, default_daemon
from repro.kernel.scheduler import Scheduler
from repro.spec.events import meetings_in
from repro.spec.properties import PropertyReport
from repro.workloads.request_models import InfiniteMeetingEnvironment


@dataclass(frozen=True)
class ConcurrencyMeasurement:
    """Result of one infinite-meeting ("quiescence") experiment."""

    meetings_held: Tuple[Hyperedge, ...]
    held_is_maximal_matching: bool
    blocked_free_committees: Tuple[Hyperedge, ...]
    steps: int
    terminated: bool

    @property
    def degree(self) -> int:
        """Number of meetings held once the system went quiescent."""
        return len(self.meetings_held)


def _fully_waiting_committees(
    configuration: Configuration, hypergraph: Hypergraph, held: Sequence[Hyperedge]
) -> Tuple[Hyperedge, ...]:
    """Committees whose members are all waiting (and which do not themselves meet)."""
    in_meeting = set()
    for edge in held:
        in_meeting.update(edge.members)
    blocked: List[Hyperedge] = []
    for edge in hypergraph.hyperedges:
        if edge in held:
            continue
        if all(
            member not in in_meeting
            and configuration.get(member, STATUS) in (LOOKING, WAITING)
            for member in edge
        ):
            blocked.append(edge)
    return tuple(blocked)


def measure_fair_concurrency(
    algorithm: CommitteeAlgorithmBase,
    daemon: Optional[Daemon] = None,
    max_steps: int = 4000,
    settle_steps: int = 200,
    seed: Optional[int] = None,
    from_arbitrary: bool = False,
) -> ConcurrencyMeasurement:
    """Run the infinite-meeting experiment and report the quiescent meeting set.

    The run stops as soon as the set of held meetings has not changed for
    ``settle_steps`` consecutive steps (or at ``max_steps``, or at a terminal
    configuration).  ``from_arbitrary`` starts from an arbitrary configuration
    instead of the legitimate one (the degree of fair concurrency is a
    worst-case notion, so the benchmarks sweep both).
    """
    environment = InfiniteMeetingEnvironment(hypergraph=algorithm.hypergraph)
    daemon = daemon if daemon is not None else default_daemon(seed=seed)
    initial = None
    if from_arbitrary:
        import random as _random

        initial = algorithm.arbitrary_configuration(_random.Random(seed))
    scheduler = Scheduler(
        algorithm,
        environment=environment,
        daemon=daemon,
        initial_configuration=initial,
        record_configurations=False,
    )

    stable_for = 0
    last_held: Tuple[Hyperedge, ...] = meetings_in(scheduler.configuration, algorithm.hypergraph)
    terminated = False
    while scheduler.step_index < max_steps:
        record = scheduler.step()
        if record is None:
            terminated = True
            break
        held = meetings_in(scheduler.configuration, algorithm.hypergraph)
        if held == last_held:
            stable_for += 1
        else:
            stable_for = 0
            last_held = held
        if stable_for >= settle_steps:
            break

    final = scheduler.configuration
    held = meetings_in(final, algorithm.hypergraph)
    blocked = _fully_waiting_committees(final, algorithm.hypergraph, held)
    return ConcurrencyMeasurement(
        meetings_held=held,
        held_is_maximal_matching=not blocked,
        blocked_free_committees=blocked,
        steps=scheduler.step_index,
        terminated=terminated,
    )


def check_maximal_concurrency(
    algorithm: CommitteeAlgorithmBase,
    trials: int = 3,
    max_steps: int = 4000,
    seed: Optional[int] = None,
) -> PropertyReport:
    """Definition 2 check: with infinite meetings, no fully-waiting committee survives.

    Several randomized trials are run (different daemon seeds); a violation in
    any trial falsifies Maximal Concurrency for the algorithm on this
    hypergraph.  A passing report means every trial ended with the held
    meetings forming a maximal matching.
    """
    violations: List[str] = []
    base_seed = 0 if seed is None else seed
    for trial in range(trials):
        measurement = measure_fair_concurrency(
            algorithm, max_steps=max_steps, seed=base_seed + trial
        )
        if not measurement.held_is_maximal_matching:
            blocked = [tuple(e.members) for e in measurement.blocked_free_committees]
            violations.append(
                f"trial {trial}: committees {blocked} had every member waiting but never convened "
                f"(held meetings: {[tuple(e.members) for e in measurement.meetings_held]})"
            )
    return PropertyReport("MaximalConcurrency", not violations, violations)
