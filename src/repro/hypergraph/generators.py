"""Topology generators.

Two kinds of generators live here:

* the exact hypergraphs shown in the paper's figures (used by the trace
  benchmarks and by the examples), and
* parametric families (paths, cycles, stars, complete hypergraphs, random
  k-uniform hypergraphs) used by the test suite and the scaling benchmarks.

All generators return :class:`~repro.hypergraph.hypergraph.Hypergraph`
instances with connected underlying communication networks unless stated
otherwise.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph


# --------------------------------------------------------------------------- #
# Paper figures
# --------------------------------------------------------------------------- #
def figure1_hypergraph() -> Hypergraph:
    """The example of Figure 1(a).

    ``V = {1..6}`` and
    ``E = {{1,2}, {1,2,3,4}, {2,4,5}, {3,6}, {4,6}}``.
    """
    return Hypergraph(
        range(1, 7),
        [[1, 2], [1, 2, 3, 4], [2, 4, 5], [3, 6], [4, 6]],
    )


def figure1_communication_edges() -> Tuple[Tuple[int, int], ...]:
    """The underlying communication network of Figure 1(b), as stated in the paper."""
    return (
        (1, 2), (1, 3), (1, 4), (2, 3), (2, 4),
        (2, 5), (3, 4), (3, 6), (4, 5), (4, 6),
    )


def figure2_hypergraph() -> Hypergraph:
    """The impossibility witness of Theorem 1 / Figure 2.

    ``V = {1..5}`` and ``E = {{1,2}, {1,3,5}, {3,4}}``.  Professor 5 is the
    one that can be starved when Maximal Concurrency is enforced.
    """
    return Hypergraph(range(1, 6), [[1, 2], [1, 3, 5], [3, 4]])


def figure3_hypergraph() -> Hypergraph:
    """The 10-professor hypergraph used in the worked example of Figure 3.

    The figure shows professors 1..10 arranged in a ring of two-member
    committees plus the three-member committee ``{1, 2, 3}``:
    meetings ``{9,10}`` and ``{1,2,3}`` are in progress initially, professors
    5 and 6 wait on committee ``{5,6}``, 7 and 8 on ``{7,8}``, and committees
    ``{6,9}``, ``{6,7}``, ``{8,9}``, ``{4,5}``, ``{3,4}``, ``{1,10}`` link the
    ring together.
    """
    return Hypergraph(
        range(1, 11),
        [
            [1, 2, 3],
            [1, 10],
            [3, 4],
            [4, 5],
            [5, 6],
            [6, 7],
            [6, 9],
            [7, 8],
            [8, 9],
            [9, 10],
        ],
    )


def figure4_hypergraph() -> Hypergraph:
    """The 9-professor hypergraph of Figure 4 (the `locked` example of CC2).

    Committees: ``{1,2,5,8}`` (the committee the token holder 1 selects --
    it is professor 1's only, hence smallest, incident committee, as in the
    figure), ``{3,4,5}`` (currently meeting), ``{8,9}`` (higher id-priority
    for professor 9 but blocked because professor 8 is locked) and
    ``{6,7,9}`` (the committee that can still convene thanks to the lock
    bit, improving concurrency).
    """
    return Hypergraph(
        range(1, 10),
        [
            [1, 2, 5, 8],
            [3, 4, 5],
            [8, 9],
            [6, 7, 9],
        ],
    )


# --------------------------------------------------------------------------- #
# Parametric families
# --------------------------------------------------------------------------- #
def path_of_committees(num_committees: int, committee_size: int = 2) -> Hypergraph:
    """A path of committees sharing one professor between consecutive committees.

    With ``committee_size = 2`` this is a simple path graph; larger sizes give
    a "caterpillar" of overlapping committees.  ``minMM`` of a path of ``k``
    2-committees is ``ceil(k / 3)`` which makes this family handy for
    exercising the Theorem 5 bound.
    """
    if num_committees < 1:
        raise ValueError("need at least one committee")
    if committee_size < 2:
        raise ValueError("committees need at least two members")
    edges: List[List[int]] = []
    next_vertex = 1
    prev_last: Optional[int] = None
    for _ in range(num_committees):
        members: List[int] = []
        if prev_last is not None:
            members.append(prev_last)
        while len(members) < committee_size:
            members.append(next_vertex)
            next_vertex += 1
        prev_last = members[-1]
        edges.append(members)
    vertices = range(1, next_vertex)
    return Hypergraph(vertices, edges)


def cycle_of_committees(num_committees: int, committee_size: int = 2) -> Hypergraph:
    """A cycle of committees: like :func:`path_of_committees` but wrapped around."""
    if num_committees < 3:
        raise ValueError("a cycle needs at least three committees")
    path = path_of_committees(num_committees - 1, committee_size)
    edges = [list(e.members) for e in path.hyperedges]
    first_vertex = min(path.vertices)
    last_vertex = max(path.vertices)
    vertices = list(path.vertices)
    closing = [last_vertex, first_vertex]
    while len(closing) < committee_size:
        new_vertex = max(vertices) + 1
        vertices.append(new_vertex)
        closing.append(new_vertex)
    edges.append(closing)
    return Hypergraph(vertices, edges)


def star_hypergraph(num_committees: int, committee_size: int = 2) -> Hypergraph:
    """A star: one central professor belongs to every committee.

    All committees conflict pairwise, so at most one meeting can ever be held
    at a time -- the paper notes this is a topology where Maximal Concurrency
    and Professor Fairness are simultaneously achievable.
    """
    if num_committees < 1:
        raise ValueError("need at least one committee")
    if committee_size < 2:
        raise ValueError("committees need at least two members")
    center = 1
    edges: List[List[int]] = []
    next_vertex = 2
    for _ in range(num_committees):
        members = [center]
        for _ in range(committee_size - 1):
            members.append(next_vertex)
            next_vertex += 1
        edges.append(members)
    return Hypergraph(range(1, next_vertex), edges)


def complete_hypergraph(num_professors: int, committee_size: int = 2) -> Hypergraph:
    """All committees of a fixed size over ``num_professors`` professors."""
    if committee_size < 2 or committee_size > num_professors:
        raise ValueError("invalid committee size")
    vertices = list(range(1, num_professors + 1))
    edges = [list(c) for c in itertools.combinations(vertices, committee_size)]
    return Hypergraph(vertices, edges)


def disjoint_committees(num_committees: int, committee_size: int = 2) -> Hypergraph:
    """Pairwise-disjoint committees (no conflicts at all).

    The underlying communication network is disconnected; useful for testing
    the maximal-concurrency checker (every committee can always meet).
    """
    if num_committees < 1:
        raise ValueError("need at least one committee")
    edges: List[List[int]] = []
    next_vertex = 1
    for _ in range(num_committees):
        members = list(range(next_vertex, next_vertex + committee_size))
        next_vertex += committee_size
        edges.append(members)
    return Hypergraph(range(1, next_vertex), edges)


def random_k_uniform_hypergraph(
    num_professors: int,
    num_committees: int,
    committee_size: int = 2,
    seed: Optional[int] = None,
    ensure_connected: bool = True,
    max_attempts: int = 200,
) -> Hypergraph:
    """A random hypergraph with ``num_committees`` distinct size-``k`` committees.

    Every professor is guaranteed to belong to at least one committee.  With
    ``ensure_connected`` the construction retries (then falls back to chaining
    committees together) until the underlying communication network is
    connected, which the paper assumes throughout.
    """
    if committee_size < 2 or committee_size > num_professors:
        raise ValueError("invalid committee size")
    max_possible = 1
    for i in range(committee_size):
        max_possible = max_possible * (num_professors - i) // (i + 1)
    if num_committees > max_possible:
        raise ValueError("too many committees requested for this size")
    if num_committees * committee_size < num_professors:
        raise ValueError(
            "cannot cover every professor: num_committees * committee_size < num_professors"
        )

    rng = random.Random(seed)
    vertices = list(range(1, num_professors + 1))

    def build_candidate() -> set:
        chosen: set = set()
        # First cover every professor so none is isolated: anchor each new
        # committee at an uncovered professor and prefer uncovered partners.
        uncovered = list(vertices)
        rng.shuffle(uncovered)
        while uncovered and len(chosen) < num_committees:
            anchor = uncovered[0]
            pool = [v for v in uncovered if v != anchor]
            rest = [v for v in vertices if v != anchor and v not in pool]
            rng.shuffle(rest)
            partners = pool[: committee_size - 1]
            partners += rest[: committee_size - 1 - len(partners)]
            committee = tuple(sorted([anchor] + partners))
            chosen.add(committee)
            uncovered = [v for v in uncovered if v not in committee]
        # Fill the remaining committees at random.
        attempts = 0
        while len(chosen) < num_committees and attempts < 50 * num_committees:
            committee = tuple(sorted(rng.sample(vertices, committee_size)))
            chosen.add(committee)
            attempts += 1
        return chosen

    chosen: set = set()
    for _ in range(max_attempts):
        chosen = build_candidate()
        if len(chosen) != num_committees:
            continue
        hypergraph = Hypergraph(vertices, [list(c) for c in chosen])
        if not ensure_connected or hypergraph.is_connected():
            return hypergraph

    # Fallback: bridge the connected components with extra committees so the
    # underlying communication network becomes connected.
    if not chosen:
        chosen = build_candidate()
    hypergraph = Hypergraph(vertices, [list(c) for c in chosen])
    extra: List[List[int]] = [list(c) for c in chosen]
    while ensure_connected:
        components = hypergraph.connected_components()
        if len(components) <= 1:
            break
        first, second = components[0], components[1]
        pool = list(first) + list(second)
        bridge = sorted({first[0], second[0]} | set(rng.sample(pool, min(len(pool), committee_size))))
        bridge = bridge[: max(committee_size, 2)]
        if first[0] not in bridge:
            bridge[0] = first[0]
        if second[0] not in bridge:
            bridge[-1] = second[0]
        extra.append(sorted(set(bridge)))
        hypergraph = Hypergraph(vertices, extra)
    return hypergraph


def grid_of_committees(rows: int, cols: int) -> Hypergraph:
    """Professors on a grid; committees are the horizontal and vertical dominoes.

    A structured mid-size family with plenty of non-conflicting committees,
    used by the concurrency-comparison benchmark.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")

    def vid(r: int, c: int) -> int:
        return r * cols + c + 1

    vertices = [vid(r, c) for r in range(rows) for c in range(cols)]
    edges: List[List[int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append([vid(r, c), vid(r, c + 1)])
            if r + 1 < rows:
                edges.append([vid(r, c), vid(r + 1, c)])
    if not edges:
        raise ValueError("grid too small to contain a committee")
    return Hypergraph(vertices, edges)
