"""The hypergraph model of Section 2.1.

A distributed system is a simple self-loopless hypergraph ``H = (V, E)``
where vertices are processes (professors) and hyperedges are synchronization
events (committees).  Two processes can communicate directly if and only if
they share a hyperedge; this induces the *underlying communication network*
``G_H`` (an undirected simple graph).

The classes here are deliberately immutable: a :class:`Hypergraph` is the
static topology input to every algorithm in the library, and sharing one
instance across the simulator, the spec checkers and the analysis code must
be safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple

ProcessId = int


@dataclass(frozen=True, order=True)
class Hyperedge:
    """A committee: an immutable, canonically-ordered set of professor ids.

    Hyperedges compare and hash by their member set, so they can be used as
    values of the edge pointer variable ``P_p`` in the algorithms and as
    dictionary keys in the spec checkers.
    """

    members: Tuple[ProcessId, ...]

    def __init__(self, members: Iterable[ProcessId]) -> None:
        ordered = tuple(sorted(set(int(m) for m in members)))
        if len(ordered) == 0:
            raise ValueError("a committee must have at least one member")
        object.__setattr__(self, "members", ordered)

    def __contains__(self, process: object) -> bool:
        return process in self.members

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)

    @property
    def size(self) -> int:
        """Number of professors in the committee (``|ε|`` in the paper)."""
        return len(self.members)

    def as_set(self) -> FrozenSet[ProcessId]:
        return frozenset(self.members)

    def intersects(self, other: "Hyperedge") -> bool:
        """``True`` iff the two committees are *conflicting* (share a member)."""
        small, large = (self.members, other.members) if len(self) <= len(other) else (other.members, self.members)
        large_set = set(large)
        return any(m in large_set for m in small)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Hyperedge({%s})" % ", ".join(str(m) for m in self.members)


class Hypergraph:
    """A simple, self-loopless hypergraph ``H = (V, E)``.

    Parameters
    ----------
    vertices:
        Iterable of process identifiers.  Identifiers must be distinct
        integers; they double as the unique, totally-ordered process ids the
        algorithms rely on.
    hyperedges:
        Iterable of committees.  Each committee is an iterable of vertex ids
        (or a :class:`Hyperedge`).  Duplicate committees are collapsed.

    Notes
    -----
    The paper assumes every committee has at least two members (footnote 1);
    singleton committees are accepted here (they are trivially conflict-free)
    but generators never produce them by default.
    """

    def __init__(
        self,
        vertices: Iterable[ProcessId],
        hyperedges: Iterable[Iterable[ProcessId]],
    ) -> None:
        self._vertices: Tuple[ProcessId, ...] = tuple(sorted(set(int(v) for v in vertices)))
        if len(self._vertices) == 0:
            raise ValueError("a hypergraph needs at least one vertex")
        vertex_set = set(self._vertices)

        edges: List[Hyperedge] = []
        seen: Set[Tuple[ProcessId, ...]] = set()
        for raw in hyperedges:
            edge = raw if isinstance(raw, Hyperedge) else Hyperedge(raw)
            missing = [m for m in edge if m not in vertex_set]
            if missing:
                raise ValueError(
                    f"hyperedge {edge!r} references unknown vertices {missing}"
                )
            if edge.members not in seen:
                seen.add(edge.members)
                edges.append(edge)
        self._edges: Tuple[Hyperedge, ...] = tuple(sorted(edges))

        incident: Dict[ProcessId, List[Hyperedge]] = {v: [] for v in self._vertices}
        for edge in self._edges:
            for member in edge:
                incident[member].append(edge)
        self._incident: Dict[ProcessId, Tuple[Hyperedge, ...]] = {
            v: tuple(es) for v, es in incident.items()
        }

        neighbors: Dict[ProcessId, Set[ProcessId]] = {v: set() for v in self._vertices}
        for edge in self._edges:
            for member in edge:
                for other in edge:
                    if other != member:
                        neighbors[member].add(other)
        self._neighbors: Dict[ProcessId, Tuple[ProcessId, ...]] = {
            v: tuple(sorted(ns)) for v, ns in neighbors.items()
        }

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> Tuple[ProcessId, ...]:
        """All process identifiers, in increasing order."""
        return self._vertices

    @property
    def hyperedges(self) -> Tuple[Hyperedge, ...]:
        """All committees, canonically ordered."""
        return self._edges

    @property
    def n(self) -> int:
        """Number of processes (``n`` in the paper)."""
        return len(self._vertices)

    @property
    def m(self) -> int:
        """Number of committees."""
        return len(self._edges)

    def incident_edges(self, process: ProcessId) -> Tuple[Hyperedge, ...]:
        """``E_p``: committees that professor ``process`` is a member of."""
        return self._incident[process]

    def neighbors(self, process: ProcessId) -> Tuple[ProcessId, ...]:
        """``N(p)``: processes sharing at least one committee with ``process``."""
        return self._neighbors[process]

    def degree(self, process: ProcessId) -> int:
        """Number of committees incident to ``process``."""
        return len(self._incident[process])

    def min_incident_size(self, process: ProcessId) -> int:
        """``minE_p``: minimum size of a committee incident to ``process``."""
        edges = self._incident[process]
        if not edges:
            raise ValueError(f"process {process} belongs to no committee")
        return min(e.size for e in edges)

    def min_incident_edges(self, process: ProcessId) -> Tuple[Hyperedge, ...]:
        """``E^min_p``: committees incident to ``process`` of minimum size."""
        edges = self._incident[process]
        if not edges:
            return ()
        best = min(e.size for e in edges)
        return tuple(e for e in edges if e.size == best)

    def conflicting(self, a: Hyperedge, b: Hyperedge) -> bool:
        """``True`` iff committees ``a`` and ``b`` share a member."""
        return a.intersects(b)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Hyperedge):
            return item in self._edges
        return item in set(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._vertices == other._vertices and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._vertices, self._edges))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Hypergraph(n={self.n}, m={self.m})"

    # ------------------------------------------------------------------ #
    # derived structure
    # ------------------------------------------------------------------ #
    def communication_edges(self) -> Tuple[Tuple[ProcessId, ProcessId], ...]:
        """Edges of the underlying communication network ``G_H`` (Section 2.1).

        Two processes are linked iff they are neighbours, i.e. incident to a
        common hyperedge.  Each undirected edge ``{u, v}`` is reported once as
        a pair ``(u, v)`` with ``u < v``.
        """
        edges: Set[Tuple[ProcessId, ProcessId]] = set()
        for v in self._vertices:
            for u in self._neighbors[v]:
                edges.add((min(u, v), max(u, v)))
        return tuple(sorted(edges))

    def communication_adjacency(self) -> Dict[ProcessId, Tuple[ProcessId, ...]]:
        """Adjacency map of ``G_H`` (same as :meth:`neighbors`, full map)."""
        return dict(self._neighbors)

    def is_connected(self) -> bool:
        """``True`` iff the underlying communication network ``G_H`` is connected."""
        if self.n <= 1:
            return True
        seen: Set[ProcessId] = set()
        stack = [self._vertices[0]]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(u for u in self._neighbors[v] if u not in seen)
        return len(seen) == self.n

    def connected_components(self) -> List[Tuple[ProcessId, ...]]:
        """Connected components of ``G_H`` as sorted vertex tuples."""
        remaining = set(self._vertices)
        components: List[Tuple[ProcessId, ...]] = []
        while remaining:
            start = min(remaining)
            seen: Set[ProcessId] = set()
            stack = [start]
            while stack:
                v = stack.pop()
                if v in seen:
                    continue
                seen.add(v)
                stack.extend(u for u in self._neighbors[v] if u not in seen)
            components.append(tuple(sorted(seen)))
            remaining -= seen
        return components

    def induced_subhypergraph(self, removed: Iterable[ProcessId]) -> "Hypergraph":
        """``H_Y``: the subhypergraph induced by ``V \\ removed`` (Section 5.3).

        Hyperedges that lose at least one member are dropped entirely (a
        committee cannot meet without all of its members), matching the
        paper's use of ``H_X`` inside ``Almost(ε, X)``.
        """
        removed_set = set(removed)
        kept_vertices = [v for v in self._vertices if v not in removed_set]
        if not kept_vertices:
            raise ValueError("induced subhypergraph would be empty")
        kept_edges = [
            e for e in self._edges if all(m not in removed_set for m in e)
        ]
        return Hypergraph(kept_vertices, kept_edges)

    def bfs_spanning_tree(self, root: ProcessId) -> Dict[ProcessId, ProcessId]:
        """Breadth-first spanning tree of ``G_H`` rooted at ``root``.

        Returns a parent map (the root maps to itself).  Used by the
        tree-based token circulation substrate.
        """
        if root not in self._neighbors:
            raise ValueError(f"unknown root {root}")
        parent: Dict[ProcessId, ProcessId] = {root: root}
        frontier = [root]
        while frontier:
            next_frontier: List[ProcessId] = []
            for v in frontier:
                for u in self._neighbors[v]:
                    if u not in parent:
                        parent[u] = v
                        next_frontier.append(u)
            frontier = next_frontier
        return parent

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by the CLI and reports)."""
        return {
            "vertices": list(self._vertices),
            "hyperedges": [list(e.members) for e in self._edges],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Hypergraph":
        """Inverse of :meth:`to_dict`."""
        return cls(data["vertices"], data["hyperedges"])  # type: ignore[arg-type]
