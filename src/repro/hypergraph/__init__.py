"""Hypergraph model of the committee coordination problem.

The committee coordination problem (Chandy & Misra) maps professors to
processes and committees to synchronization hyperedges.  This subpackage
provides the static combinatorial model used throughout the library:

* :class:`~repro.hypergraph.hypergraph.Hypergraph` -- the distributed system
  ``H = (V, E)`` of Section 2.1 of the paper, together with its *underlying
  communication network* ``G_H``.
* :mod:`~repro.hypergraph.matching` -- matchings and maximal matchings of a
  hypergraph, and the quantities used in the complexity analysis of
  Section 5.3 (``minMM``, ``MaxMin``, ``MaxHEdge``, ``Almost``, ``AMM``).
* :mod:`~repro.hypergraph.generators` -- topology generators: the exact
  hypergraphs shown in Figures 1-4 of the paper and parametric families used
  by the benchmark harness.
"""

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph
from repro.hypergraph.matching import (
    MatchingAnalysis,
    all_maximal_matchings,
    is_matching,
    is_maximal_matching,
    max_hyperedge_size,
    max_min_incident_size,
    min_maximal_matching_size,
)
from repro.hypergraph.generators import (
    complete_hypergraph,
    cycle_of_committees,
    figure1_hypergraph,
    figure2_hypergraph,
    figure3_hypergraph,
    figure4_hypergraph,
    path_of_committees,
    random_k_uniform_hypergraph,
    star_hypergraph,
)

__all__ = [
    "Hyperedge",
    "Hypergraph",
    "MatchingAnalysis",
    "all_maximal_matchings",
    "is_matching",
    "is_maximal_matching",
    "max_hyperedge_size",
    "max_min_incident_size",
    "min_maximal_matching_size",
    "complete_hypergraph",
    "cycle_of_committees",
    "figure1_hypergraph",
    "figure2_hypergraph",
    "figure3_hypergraph",
    "figure4_hypergraph",
    "path_of_committees",
    "random_k_uniform_hypergraph",
    "star_hypergraph",
]
