"""Matchings of a hypergraph and the quantities of Section 5.3.

The degree-of-fair-concurrency analysis of Algorithm ``CC2 ∘ TC`` (Theorems 4
and 5) and of Algorithm ``CC3 ∘ TC`` (Theorems 7 and 8) is phrased in terms of

* matchings and maximal matchings of the hypergraph ``H``,
* ``minMM``  -- the size of the smallest *maximal* matching,
* ``MaxMin`` -- ``max_p min_{ε ∋ p} |ε|`` (largest, over processes, of the
  smallest incident-committee size),
* ``MaxHEdge`` -- the largest committee size,
* ``Almost(ε, X)`` and the sets ``AMM`` / ``AMM'`` characterising the
  quiescent configurations reachable when the token holder is blocked.

Everything here is exact enumeration.  Enumerating all maximal matchings is
exponential in the worst case, which is fine for the hypergraph sizes the
paper (and our benchmarks) consider; the enumeration is organised as a
branch-and-bound over hyperedges so that typical instances are fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId

Matching = FrozenSet[Hyperedge]


def is_matching(hypergraph: Hypergraph, edges: Iterable[Hyperedge]) -> bool:
    """``True`` iff no two hyperedges in ``edges`` share a vertex."""
    used: Set[ProcessId] = set()
    for edge in edges:
        if edge not in hypergraph.hyperedges:
            return False
        members = set(edge.members)
        if used & members:
            return False
        used |= members
    return True


def is_maximal_matching(hypergraph: Hypergraph, edges: Iterable[Hyperedge]) -> bool:
    """``True`` iff ``edges`` is a matching with no proper matching superset."""
    edge_set = set(edges)
    if not is_matching(hypergraph, edge_set):
        return False
    used: Set[ProcessId] = set()
    for edge in edge_set:
        used |= set(edge.members)
    for candidate in hypergraph.hyperedges:
        if candidate in edge_set:
            continue
        if not (set(candidate.members) & used):
            return False
    return True


def all_maximal_matchings(hypergraph: Hypergraph) -> List[Matching]:
    """Enumerate every maximal matching of ``hypergraph``.

    The enumeration walks the hyperedges in canonical order; at each edge the
    branch either includes it (if disjoint from the current partial matching)
    or excludes it.  A completed branch is kept only if its matching is
    maximal, and duplicates (which can arise from exclusion branches) are
    removed at the end.
    """
    edges = hypergraph.hyperedges
    results: Set[Matching] = set()

    def extend(index: int, chosen: List[Hyperedge], used: Set[ProcessId]) -> None:
        if index == len(edges):
            matching = frozenset(chosen)
            if is_maximal_matching(hypergraph, matching):
                results.add(matching)
            return
        edge = edges[index]
        members = set(edge.members)
        if not (members & used):
            chosen.append(edge)
            extend(index + 1, chosen, used | members)
            chosen.pop()
        extend(index + 1, chosen, used)

    extend(0, [], set())
    return sorted(results, key=lambda m: (len(m), tuple(sorted(e.members for e in m))))


def min_maximal_matching_size(hypergraph: Hypergraph) -> int:
    """``minMM``: the size of the smallest maximal matching of ``hypergraph``."""
    matchings = all_maximal_matchings(hypergraph)
    if not matchings:
        return 0
    return min(len(m) for m in matchings)


def max_maximal_matching_size(hypergraph: Hypergraph) -> int:
    """Size of the largest maximal matching (an upper bound on concurrency)."""
    matchings = all_maximal_matchings(hypergraph)
    if not matchings:
        return 0
    return max(len(m) for m in matchings)


def max_min_incident_size(hypergraph: Hypergraph) -> int:
    """``MaxMin = max_{p ∈ V} minE_p`` (Section 5.3).

    For every process take the size of its smallest incident committee, then
    take the maximum over processes.  Processes incident to no committee are
    skipped (they can never be a blocked token holder).
    """
    best = 0
    for p in hypergraph.vertices:
        edges = hypergraph.incident_edges(p)
        if not edges:
            continue
        best = max(best, min(e.size for e in edges))
    return best


def max_hyperedge_size(hypergraph: Hypergraph) -> int:
    """``MaxHEdge = max_{ε ∈ E} |ε|`` (Section 5.4)."""
    if not hypergraph.hyperedges:
        return 0
    return max(e.size for e in hypergraph.hyperedges)


def proper_subsets_containing(edge: Hyperedge, process: ProcessId) -> List[FrozenSet[ProcessId]]:
    """``Y_{ε,p} = { y ⊆ ε | p ∈ y ∧ |y| < |ε| }`` (Section 5.3)."""
    if process not in edge:
        return []
    others = [m for m in edge.members if m != process]
    subsets: List[FrozenSet[ProcessId]] = []
    for mask in range(1 << len(others)):
        subset = {process}
        for bit, member in enumerate(others):
            if mask & (1 << bit):
                subset.add(member)
        if len(subset) < edge.size:
            subsets.append(frozenset(subset))
    return subsets


def almost_matchings(
    hypergraph: Hypergraph, edge: Hyperedge, blocked: Iterable[ProcessId]
) -> List[Matching]:
    """``Almost(ε, X)``: maximal matchings of ``H_X`` covering ``ε \\ X``.

    The set ``X`` contains the blocked processes of committee ``ε`` (the token
    holder and the other members that are not currently meeting); the paper
    requires every member of ``ε`` *not* in ``X`` to be incident to a
    hyperedge of the matching.
    """
    blocked_set = frozenset(blocked)
    remaining = [v for v in hypergraph.vertices if v not in blocked_set]
    if not remaining:
        return []
    sub = hypergraph.induced_subhypergraph(blocked_set)
    need_cover = [q for q in edge.members if q not in blocked_set]
    result: List[Matching] = []
    for matching in all_maximal_matchings(sub):
        covered = set()
        for m_edge in matching:
            covered |= set(m_edge.members)
        if all(q in covered for q in need_cover):
            result.append(matching)
    return result


def amm(hypergraph: Hypergraph, min_edges_only: bool = True) -> List[Matching]:
    """The set ``AMM`` (Section 5.3) or ``AMM'`` (Section 5.4).

    ``AMM(p) = ⋃_{ε ∈ E^min_p} ⋃_{y ∈ Y_{ε,p}} Almost(ε, y)`` and
    ``AMM = ⋃_{p ∈ V} AMM(p)``.  With ``min_edges_only=False`` the union
    runs over *all* committees incident to ``p`` instead of only the smallest
    ones, yielding ``AMM'`` used for Algorithm ``CC3``.
    """
    collected: Set[Matching] = set()
    for p in hypergraph.vertices:
        if min_edges_only:
            edges = hypergraph.min_incident_edges(p)
        else:
            edges = hypergraph.incident_edges(p)
        for edge in edges:
            for blocked in proper_subsets_containing(edge, p):
                for matching in almost_matchings(hypergraph, edge, blocked):
                    collected.add(matching)
    return sorted(
        collected, key=lambda m: (len(m), tuple(sorted(e.members for e in m)))
    )


def min_mm_union_amm(hypergraph: Hypergraph, min_edges_only: bool = True) -> int:
    """``min_{MM ∪ AMM}`` (Theorem 4) or ``min_{MM ∪ AMM'}`` (Theorem 7).

    If ``AMM`` is empty (e.g. a single-committee hypergraph) the minimum is
    taken over the maximal matchings only, mirroring the paper's convention
    that the degree of fair concurrency is at least 1.
    """
    sizes = [len(m) for m in all_maximal_matchings(hypergraph)]
    sizes += [len(m) for m in amm(hypergraph, min_edges_only=min_edges_only)]
    sizes = [s for s in sizes if s > 0]
    if not sizes:
        return 1 if hypergraph.m > 0 else 0
    return min(sizes)


@dataclass(frozen=True)
class MatchingAnalysis:
    """Aggregate of all Section 5.3 / 5.4 quantities for one hypergraph.

    Attributes
    ----------
    min_mm:
        ``minMM``, the size of the smallest maximal matching.
    max_mm:
        Size of the largest maximal matching.
    max_min:
        ``MaxMin``.
    max_hedge:
        ``MaxHEdge``.
    min_mm_union_amm:
        ``min_{MM ∪ AMM}`` -- the Theorem 4 lower bound on the degree of fair
        concurrency of ``CC2 ∘ TC``.
    min_mm_union_amm_prime:
        ``min_{MM ∪ AMM'}`` -- the Theorem 7 bound for ``CC3 ∘ TC``.
    theorem5_bound:
        ``minMM − MaxMin + 1`` (Theorem 5 lower bound; may be ≤ 0, in which
        case the trivial bound 1 applies).
    theorem8_bound:
        ``minMM − MaxHEdge + 1`` (Theorem 8).
    """

    min_mm: int
    max_mm: int
    max_min: int
    max_hedge: int
    min_mm_union_amm: int
    min_mm_union_amm_prime: int
    theorem5_bound: int
    theorem8_bound: int

    @classmethod
    def of(cls, hypergraph: Hypergraph) -> "MatchingAnalysis":
        """Compute the full analysis for ``hypergraph`` by exact enumeration."""
        min_mm = min_maximal_matching_size(hypergraph)
        max_mm = max_maximal_matching_size(hypergraph)
        max_min = max_min_incident_size(hypergraph)
        max_hedge = max_hyperedge_size(hypergraph)
        bound4 = min_mm_union_amm(hypergraph, min_edges_only=True)
        bound7 = min_mm_union_amm(hypergraph, min_edges_only=False)
        return cls(
            min_mm=min_mm,
            max_mm=max_mm,
            max_min=max_min,
            max_hedge=max_hedge,
            min_mm_union_amm=bound4,
            min_mm_union_amm_prime=bound7,
            theorem5_bound=min_mm - max_min + 1,
            theorem8_bound=min_mm - max_hedge + 1,
        )

    def as_row(self) -> Dict[str, int]:
        """Flat dict used by the report generator."""
        return {
            "minMM": self.min_mm,
            "maxMM": self.max_mm,
            "MaxMin": self.max_min,
            "MaxHEdge": self.max_hedge,
            "min(MM ∪ AMM)": self.min_mm_union_amm,
            "min(MM ∪ AMM')": self.min_mm_union_amm_prime,
            "Thm5 bound": self.theorem5_bound,
            "Thm8 bound": self.theorem8_bound,
        }
