"""Analytical bounds and report formatting."""

from repro.analysis.theory import TheoreticalBounds, bounds_for
from repro.analysis.report import format_table, series_to_rows

__all__ = ["TheoreticalBounds", "bounds_for", "format_table", "series_to_rows"]
