"""The paper's analytical quantities, packaged for the benchmark harness.

Wraps :class:`~repro.hypergraph.matching.MatchingAnalysis` and adds the
derived inequalities the theorems assert, so a benchmark can print
"claimed vs. computed vs. measured" rows directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.matching import MatchingAnalysis


@dataclass(frozen=True)
class TheoreticalBounds:
    """All Section 5.3 / 5.4 quantities plus the theorem inequalities."""

    analysis: MatchingAnalysis

    # -- Theorem 4 / 5 (CC2) -------------------------------------------- #
    @property
    def cc2_degree_lower_bound(self) -> int:
        """Theorem 4: degree of fair concurrency of ``CC2 ∘ TC`` ≥ this."""
        return self.analysis.min_mm_union_amm

    @property
    def theorem5_holds(self) -> bool:
        """Theorem 5: ``min_{MM ∪ AMM} ≥ minMM − MaxMin + 1``."""
        return self.analysis.min_mm_union_amm >= self.analysis.theorem5_bound

    # -- Theorem 7 / 8 (CC3) -------------------------------------------- #
    @property
    def cc3_degree_lower_bound(self) -> int:
        """Theorem 7: degree of fair concurrency of ``CC3 ∘ TC`` ≥ this."""
        return self.analysis.min_mm_union_amm_prime

    @property
    def theorem8_holds(self) -> bool:
        """Theorem 8: ``min_{MM ∪ AMM'} ≥ minMM − MaxHEdge + 1``."""
        return self.analysis.min_mm_union_amm_prime >= self.analysis.theorem8_bound

    # -- Theorem 6 (waiting time) ---------------------------------------- #
    def waiting_time_bound_rounds(self, n: int, max_disc: int, constant: float = 8.0) -> float:
        """The ``O(maxDisc × n)`` reference value with an explicit constant.

        The constant absorbs the (unspecified) constants of the token
        circulation and leader election layers; the benchmark reports the
        measured/maxDisc·n ratio rather than asserting a particular constant.
        """
        return constant * max_disc * n

    def as_row(self) -> Dict[str, object]:
        row = dict(self.analysis.as_row())
        row["thm5_holds"] = self.theorem5_holds
        row["thm8_holds"] = self.theorem8_holds
        return row


def bounds_for(hypergraph: Hypergraph) -> TheoreticalBounds:
    """Compute every analytical quantity for ``hypergraph`` (exact enumeration)."""
    return TheoreticalBounds(analysis=MatchingAnalysis.of(hypergraph))
