"""Plain-text table formatting for benchmarks and ``EXPERIMENTS.md``.

Everything prints through these helpers so that the benchmark output and the
documented results share one format (a GitHub-flavoured Markdown table).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, Any]], title: str = "") -> str:
    """Render a list of dict rows as a Markdown table.

    Column order follows the keys of the first row; later rows may omit keys
    (rendered blank) but must not add new ones.
    """
    if not rows:
        return f"## {title}\n\n(no rows)\n" if title else "(no rows)\n"
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows)) for c in columns}

    def fmt_row(values: Iterable[str]) -> str:
        return "| " + " | ".join(str(v).ljust(widths[c]) for c, v in zip(columns, values)) + " |"

    lines: List[str] = []
    if title:
        lines.append(f"## {title}")
        lines.append("")
    lines.append(fmt_row(columns))
    lines.append("| " + " | ".join("-" * widths[c] for c in columns) + " |")
    for row in rows:
        lines.append(fmt_row([row.get(c, "") for c in columns]))
    lines.append("")
    return "\n".join(lines)


def series_to_rows(series: Mapping[Any, Mapping[str, Any]], key_name: str = "key") -> List[Dict[str, Any]]:
    """Turn ``{key: {col: val}}`` into a list of rows with the key as first column."""
    rows: List[Dict[str, Any]] = []
    for key, values in series.items():
        row: Dict[str, Any] = {key_name: key}
        row.update(values)
        rows.append(row)
    return rows
