"""Professor behaviour models (the ``RequestIn`` / ``RequestOut`` inputs).

The committee coordination algorithms are driven by two input predicates per
professor (Section 4.1):

* ``RequestIn(p)`` -- the professor autonomously decides to wait for a
  meeting (only meaningful in ``CC1``; ``CC2``/``CC3`` assume professors are
  always requesting);
* ``RequestOut(p)`` -- the professor wants to voluntarily stop discussing.
  The paper requires that once a professor is involved in a meeting (or a
  meeting it was in has terminated), ``RequestOut(p)`` eventually holds and
  then remains true until the professor leaves.

The environments here realize these predicates operationally:

* :class:`AlwaysRequestingEnvironment` -- always request in; request out
  after a configurable number of steps spent in the ``done`` status
  (``maxDisc`` in the paper's waiting-time analysis is the round-count analog
  of this knob).
* :class:`ProbabilisticRequestEnvironment` -- Bernoulli requests in, finite
  meetings; models sporadically interested professors.
* :class:`BurstyRequestEnvironment` -- alternating active/quiet phases.
* :class:`InfiniteMeetingEnvironment` -- nobody ever leaves (``RequestOut``
  identically false): the formal artefact used by Definition 2 (Maximal
  Concurrency) and Definition 5 (Degree of Fair Concurrency).
* :class:`SelectiveInfiniteMeetingEnvironment` -- a chosen subset ``P1``
  stays in meetings forever while everyone else behaves normally; used by the
  Maximal Concurrency checker.
* :class:`ScriptedEnvironment` -- fully scripted predicates; used to replay
  the paper's figures and the Theorem 1 adversarial execution.

:func:`environment_from_spec` builds the first three from a compact spec
string (``"always"``, ``"probabilistic[:P]"``, ``"bursty[:ACTIVE:QUIET]"``)
— the vocabulary the campaign engine's jobs and the randomized scenarios
share, so the two construction paths cannot drift.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Mapping, Optional, Set

from repro.core.states import DONE, STATUS
from repro.kernel.algorithm import Environment
from repro.kernel.configuration import Configuration, ProcessId


class _DoneCounterMixin:
    """Tracks, per professor, how many observed steps it has spent in ``done``.

    ``RequestOut`` built on this counter satisfies the paper's requirement:
    it becomes true after the professor has had time for its voluntary
    discussion and stays true until the professor actually leaves (leaving is
    the only way its status stops being ``done``).
    """

    def __init__(self) -> None:
        self._done_steps: Dict[ProcessId, int] = {}
        self._essential_discussions: Dict[ProcessId, int] = {}

    def reset(self) -> None:
        self._done_steps.clear()
        self._essential_discussions.clear()

    def observe(self, configuration: Configuration, step_index: int) -> None:
        for pid in configuration:
            if configuration.get(pid, STATUS) == DONE:
                self._done_steps[pid] = self._done_steps.get(pid, 0) + 1
            else:
                self._done_steps[pid] = 0

    def on_essential_discussion(self, pid: ProcessId) -> None:
        self._essential_discussions[pid] = self._essential_discussions.get(pid, 0) + 1

    def done_steps(self, pid: ProcessId) -> int:
        return self._done_steps.get(pid, 0)

    def essential_discussions(self, pid: ProcessId) -> int:
        return self._essential_discussions.get(pid, 0)


class AlwaysRequestingEnvironment(_DoneCounterMixin, Environment):
    """Professors always want to meet; they leave after ``discussion_steps`` in ``done``.

    ``discussion_steps`` may be an integer (same voluntary discussion length
    for everyone) or a mapping / callable per professor, which lets the
    waiting-time benchmark vary ``maxDisc``.
    """

    def __init__(
        self,
        discussion_steps: int | Mapping[ProcessId, int] | Callable[[ProcessId], int] = 1,
    ) -> None:
        _DoneCounterMixin.__init__(self)
        self._discussion_steps = discussion_steps

    def _limit(self, pid: ProcessId) -> int:
        if callable(self._discussion_steps):
            return int(self._discussion_steps(pid))
        if isinstance(self._discussion_steps, Mapping):
            return int(self._discussion_steps.get(pid, 1))
        return int(self._discussion_steps)

    def request_in(self, pid: ProcessId, configuration: Configuration) -> bool:
        return True

    def request_out(self, pid: ProcessId, configuration: Configuration) -> bool:
        return self.done_steps(pid) >= self._limit(pid)


class ProbabilisticRequestEnvironment(_DoneCounterMixin, Environment):
    """Bernoulli ``RequestIn``; finite meetings.

    An idle professor requests a meeting with probability
    ``request_probability``.  The draw is memoised per (pid, "idle spell") so
    that the predicate does not flap within a spell, which keeps executions
    realistic while remaining weakly fair at the problem level (each
    professor has infinitely many chances to request).

    The draws happen in :meth:`observe` — once per idle spell, in sorted
    process order, *outside* guard evaluation — so evaluating a guard more
    or fewer times cannot touch the RNG stream.  ``request_in`` is therefore
    a pure read of the memoised decision and the environment declares
    ``deterministic_guards = True``: it is fully compatible with the
    incremental scheduler engine (dense and incremental runs of the same
    seed produce identical traces).  Historical note: this environment used
    to draw lazily *inside* ``request_in`` and was rejected by the
    incremental engine; traces of old seeds are not comparable across that
    change.
    """

    deterministic_guards = True

    def __init__(
        self,
        request_probability: float = 0.7,
        discussion_steps: int = 1,
        seed: Optional[int] = None,
    ) -> None:
        _DoneCounterMixin.__init__(self)
        if not 0.0 < request_probability <= 1.0:
            raise ValueError("request_probability must be in (0, 1]")
        self._p = request_probability
        self._discussion_steps = discussion_steps
        self._rng = random.Random(seed)
        self._pending: Dict[ProcessId, bool] = {}

    def reset(self) -> None:
        super().reset()
        self._pending.clear()

    def observe(self, configuration: Configuration, step_index: int) -> None:
        super().observe(configuration, step_index)
        # Memoise the requests for the *next* guard sweep: professors that
        # left the idle state get a fresh draw next spell; idle professors
        # without a memoised decision draw now, in sorted process order (the
        # scheduler observes the initial configuration at construction, so
        # draws exist before the first guard is ever evaluated).
        pending = self._pending
        for pid in configuration:
            if configuration.get(pid, STATUS) != "idle":
                pending.pop(pid, None)
            elif pid not in pending:
                pending[pid] = self._rng.random() < self._p

    def request_in(self, pid: ProcessId, configuration: Configuration) -> bool:
        return self._pending.get(pid, False)

    def request_out(self, pid: ProcessId, configuration: Configuration) -> bool:
        return self.done_steps(pid) >= self._discussion_steps


class BurstyRequestEnvironment(_DoneCounterMixin, Environment):
    """Professors alternate between active and quiet phases.

    During an active phase ``RequestIn`` is true, during a quiet phase it is
    false.  Phase lengths are fixed per environment; professors are staggered
    by their id so the bursts overlap only partially -- a simple model of the
    bursty interaction patterns of component-based systems (BIP, Section 1).
    """

    def __init__(
        self,
        active_steps: int = 20,
        quiet_steps: int = 10,
        discussion_steps: int = 1,
    ) -> None:
        _DoneCounterMixin.__init__(self)
        if active_steps < 1 or quiet_steps < 0:
            raise ValueError("invalid phase lengths")
        self._active = active_steps
        self._quiet = quiet_steps
        self._discussion_steps = discussion_steps
        self._step = 0

    def reset(self) -> None:
        super().reset()
        self._step = 0

    def observe(self, configuration: Configuration, step_index: int) -> None:
        super().observe(configuration, step_index)
        self._step = step_index + 1

    def request_in(self, pid: ProcessId, configuration: Configuration) -> bool:
        period = self._active + self._quiet
        phase = (self._step + pid * 3) % period
        return phase < self._active

    def request_out(self, pid: ProcessId, configuration: Configuration) -> bool:
        return self.done_steps(pid) >= self._discussion_steps


class InfiniteMeetingEnvironment(_DoneCounterMixin, Environment):
    """Meetings never end (the Definitions 2 / 5 artefact).

    Following the paper's formalization exactly (Section 4.2): for every
    professor ``p``,

    * if ``p`` is involved in a meeting, the meeting never ends, so
      ``RequestOut(p)`` never holds;
    * if ``p`` satisfies ``S_p = done`` but ``¬Meeting(p)`` -- e.g. a stale
      ``done`` status inherited from an arbitrary initial configuration --
      then ``RequestOut(p)`` eventually holds, letting ``p`` re-enter the
      game.

    Distinguishing the two cases requires knowing the hypergraph; pass it at
    construction (the concurrency measurements do).  Without a hypergraph the
    environment degenerates to ``RequestOut ≡ false``.
    """

    def __init__(self, hypergraph: "object" = None) -> None:
        _DoneCounterMixin.__init__(self)
        self._hypergraph = hypergraph

    def _participates_in_meeting(self, pid: ProcessId, configuration: Configuration) -> bool:
        if self._hypergraph is None:
            return True  # conservatively treat done as "in a meeting"
        from repro.core.states import DONE as _DONE, POINTER as _P, WAITING as _W

        for edge in self._hypergraph.incident_edges(pid):
            if all(
                configuration.get(q, _P) == edge and configuration.get(q, STATUS) in (_W, _DONE)
                for q in edge
            ):
                return True
        return False

    def request_in(self, pid: ProcessId, configuration: Configuration) -> bool:
        return True

    def request_out(self, pid: ProcessId, configuration: Configuration) -> bool:
        if configuration.get(pid, STATUS) != DONE:
            return False
        # A professor in a real meeting never wants to leave; a professor with
        # a stale done status (no meeting behind it) eventually does.
        return not self._participates_in_meeting(pid, configuration)


class SelectiveInfiniteMeetingEnvironment(AlwaysRequestingEnvironment):
    """A chosen set of professors never leaves; the rest behave normally.

    Realizes the ``P1`` / ``P2`` split of Definition 2 (Maximal Concurrency):
    the professors in ``frozen`` stay in their meetings forever, everybody
    else requests and leaves as in :class:`AlwaysRequestingEnvironment`.
    """

    def __init__(
        self,
        frozen: Iterable[ProcessId],
        discussion_steps: int | Mapping[ProcessId, int] | Callable[[ProcessId], int] = 1,
        hypergraph: "object" = None,
    ) -> None:
        super().__init__(discussion_steps)
        self._frozen: Set[ProcessId] = set(frozen)
        self._hypergraph = hypergraph

    def _frozen_in_meeting(self, pid: ProcessId, configuration: Configuration) -> bool:
        if self._hypergraph is None:
            return True
        from repro.core.states import DONE as _DONE, POINTER as _P, WAITING as _W

        for edge in self._hypergraph.incident_edges(pid):
            if all(
                configuration.get(q, _P) == edge and configuration.get(q, STATUS) in (_W, _DONE)
                for q in edge
            ):
                return True
        return False

    def request_out(self, pid: ProcessId, configuration: Configuration) -> bool:
        if pid in self._frozen:
            # A frozen professor never leaves a *real* meeting; a stale done
            # status (arbitrary initial configuration) is abandoned as usual.
            if configuration.get(pid, STATUS) != DONE:
                return False
            return not self._frozen_in_meeting(pid, configuration)
        return super().request_out(pid, configuration)


class ScriptedEnvironment(_DoneCounterMixin, Environment):
    """Fully scripted request predicates.

    ``request_in_script`` / ``request_out_script`` map a professor id to a
    predicate over ``(configuration, step_count)``.  Unscripted professors
    fall back to always-requesting with a one-step voluntary discussion.
    Used to replay the executions of Figures 3 and 4 and the adversarial
    schedule of the Theorem 1 benchmark.
    """

    def __init__(
        self,
        request_in_script: Optional[Mapping[ProcessId, Callable[[Configuration, int], bool]]] = None,
        request_out_script: Optional[Mapping[ProcessId, Callable[[Configuration, int], bool]]] = None,
        default_discussion_steps: int = 1,
    ) -> None:
        _DoneCounterMixin.__init__(self)
        self._in_script = dict(request_in_script or {})
        self._out_script = dict(request_out_script or {})
        self._default_discussion = default_discussion_steps
        self._step = 0

    def reset(self) -> None:
        super().reset()
        self._step = 0

    def observe(self, configuration: Configuration, step_index: int) -> None:
        super().observe(configuration, step_index)
        self._step = step_index + 1

    def request_in(self, pid: ProcessId, configuration: Configuration) -> bool:
        if pid in self._in_script:
            return bool(self._in_script[pid](configuration, self._step))
        return True

    def request_out(self, pid: ProcessId, configuration: Configuration) -> bool:
        if pid in self._out_script:
            return bool(self._out_script[pid](configuration, self._step))
        return self.done_steps(pid) >= self._default_discussion


def environment_from_spec(
    spec: str,
    discussion_steps: int = 1,
    seed: Optional[int] = None,
) -> Environment:
    """Build an environment from a compact, JSONL/CLI-friendly spec string.

    ``"always"``, ``"probabilistic[:P]"`` (default ``P=0.7``) or
    ``"bursty[:ACTIVE:QUIET]"`` (defaults ``20:10``).  ``seed`` feeds the
    probabilistic model's RNG through a fixed derivation (``seed * 31 + 7``)
    so every caller — campaign jobs, randomized scenarios — draws the same
    request stream for the same seed.  Raises :class:`ValueError` on an
    unknown kind or malformed parameters, which the campaign matrix uses to
    validate eagerly, before any worker is spawned.
    """
    kind, _, params = spec.partition(":")
    try:
        if kind == "always":
            if params:
                raise ValueError("'always' takes no parameters")
            return AlwaysRequestingEnvironment(discussion_steps)
        if kind == "probabilistic":
            return ProbabilisticRequestEnvironment(
                request_probability=float(params or "0.7"),
                discussion_steps=discussion_steps,
                seed=None if seed is None else seed * 31 + 7,
            )
        if kind == "bursty":
            active, _, quiet = params.partition(":")
            return BurstyRequestEnvironment(
                active_steps=int(active or "20"),
                quiet_steps=int(quiet or "10"),
                discussion_steps=discussion_steps,
            )
    except ValueError as exc:
        raise ValueError(f"bad environment spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"unknown environment spec {spec!r}: expected 'always', "
        "'probabilistic[:P]' or 'bursty[:ACTIVE:QUIET]'"
    )
