"""Workloads: professor request models and benchmark scenarios."""

from repro.workloads.request_models import (
    AlwaysRequestingEnvironment,
    BurstyRequestEnvironment,
    InfiniteMeetingEnvironment,
    ProbabilisticRequestEnvironment,
    ScriptedEnvironment,
    SelectiveInfiniteMeetingEnvironment,
)
from repro.workloads.scenarios import Scenario, paper_scenarios, scaling_scenarios

__all__ = [
    "AlwaysRequestingEnvironment",
    "BurstyRequestEnvironment",
    "InfiniteMeetingEnvironment",
    "ProbabilisticRequestEnvironment",
    "ScriptedEnvironment",
    "SelectiveInfiniteMeetingEnvironment",
    "Scenario",
    "paper_scenarios",
    "scaling_scenarios",
]
