"""Workloads: professor request models and benchmark scenarios."""

from repro.workloads.request_models import (
    AlwaysRequestingEnvironment,
    BurstyRequestEnvironment,
    InfiniteMeetingEnvironment,
    ProbabilisticRequestEnvironment,
    ScriptedEnvironment,
    SelectiveInfiniteMeetingEnvironment,
)
from repro.workloads.scenarios import (
    Scenario,
    all_scenarios,
    paper_scenarios,
    scaling_scenarios,
    scenario_by_name,
    stress_scenarios,
)

__all__ = [
    "AlwaysRequestingEnvironment",
    "BurstyRequestEnvironment",
    "InfiniteMeetingEnvironment",
    "ProbabilisticRequestEnvironment",
    "ScriptedEnvironment",
    "SelectiveInfiniteMeetingEnvironment",
    "Scenario",
    "all_scenarios",
    "paper_scenarios",
    "scaling_scenarios",
    "scenario_by_name",
    "stress_scenarios",
]
