"""Workloads: professor request models and benchmark scenarios."""

from repro.workloads.request_models import (
    AlwaysRequestingEnvironment,
    BurstyRequestEnvironment,
    InfiniteMeetingEnvironment,
    ProbabilisticRequestEnvironment,
    ScriptedEnvironment,
    SelectiveInfiniteMeetingEnvironment,
)
from repro.workloads.random_scenarios import (
    RandomScenarioSpec,
    random_scenario,
    random_scenarios,
)
from repro.workloads.scenarios import (
    Scenario,
    all_scenarios,
    paper_scenarios,
    scaling_scenarios,
    scenario_by_name,
    stress_scenarios,
)

__all__ = [
    "RandomScenarioSpec",
    "random_scenario",
    "random_scenarios",
    "AlwaysRequestingEnvironment",
    "BurstyRequestEnvironment",
    "InfiniteMeetingEnvironment",
    "ProbabilisticRequestEnvironment",
    "ScriptedEnvironment",
    "SelectiveInfiniteMeetingEnvironment",
    "Scenario",
    "all_scenarios",
    "paper_scenarios",
    "scaling_scenarios",
    "scenario_by_name",
    "stress_scenarios",
]
