"""Seeded randomized scenarios: an unbounded workload space from one integer.

The named scenarios in :mod:`repro.workloads.scenarios` cover the paper's
figures and a dozen structured families; the campaign engine and the fuzz
tests need *arbitrary* workloads that are still perfectly reproducible.  One
seed deterministically derives a complete :class:`RandomScenarioSpec`:

* a random hypergraph drawn from the parametric families of
  :mod:`repro.hypergraph.generators` (paths, cycles, stars, grids, complete
  and connected random k-uniform hypergraphs),
* a request model (always-requesting, Bernoulli, bursty) with drawn
  parameters,
* a token substrate, a daemon choice, a voluntary-discussion length,
* an arbitrary-vs-legitimate initial configuration, and
* a mid-run transient-fault schedule (possibly none).

The spec is a frozen dataclass of primitives only — hashable, comparable and
picklable from a ``multiprocessing`` spawn context — with ``build_*``
methods that construct the live objects on whichever process executes the
run.  ``random_scenario(seed) == random_scenario(seed)`` always; the
differential fuzz harness (``tests/test_differential_harness.py``) and
``repro-cc campaign --random N`` both lean on that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.hypergraph.generators import (
    complete_hypergraph,
    cycle_of_committees,
    grid_of_committees,
    path_of_committees,
    random_k_uniform_hypergraph,
    star_hypergraph,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernel.algorithm import Environment
from repro.kernel.daemon import Daemon, daemon_from_name
from repro.workloads.request_models import environment_from_spec

#: Topology families a random scenario may draw (all connected, so every
#: token substrate works; ``disjoint_committees`` is deliberately absent).
TOPOLOGY_FAMILIES = ("path", "cycle", "star", "grid", "complete", "random")
ENVIRONMENTS = ("always", "probabilistic", "bursty")
DAEMONS = ("weakly_fair", "synchronous")
TOKENS = ("tree", "ring", "oracle")


@dataclass(frozen=True)
class RandomScenarioSpec:
    """One randomized workload, fully determined by :attr:`seed`.

    Primitives only: the spec travels to ``multiprocessing`` workers and
    into JSONL rows; the live hypergraph/environment/daemon are built on
    demand via the ``build_*`` methods.
    """

    seed: int
    topology: str
    topology_params: Tuple[int, ...]
    token: str
    daemon: str
    environment: str
    request_probability: float
    active_steps: int
    quiet_steps: int
    discussion_steps: int
    arbitrary_start: bool
    fault_every: int  # 0 = no mid-run fault bursts
    fault_fraction: float

    @property
    def name(self) -> str:
        return f"random-{self.seed}"

    @property
    def description(self) -> str:
        params = "x".join(str(p) for p in self.topology_params)
        faults = f", faults every {self.fault_every}" if self.fault_every else ""
        return (
            f"randomized scenario (seed {self.seed}): {self.topology}-{params}, "
            f"{self.environment} requests, {self.daemon} daemon, "
            f"{self.token} token{faults}"
        )

    # ------------------------------------------------------------------ #
    # builders (run on the executing process, possibly a spawned worker)
    # ------------------------------------------------------------------ #
    def build_hypergraph(self) -> Hypergraph:
        family, params = self.topology, self.topology_params
        if family == "path":
            return path_of_committees(params[0], params[1])
        if family == "cycle":
            return cycle_of_committees(params[0], params[1])
        if family == "star":
            return star_hypergraph(params[0], params[1])
        if family == "grid":
            return grid_of_committees(params[0], params[1])
        if family == "complete":
            return complete_hypergraph(params[0], params[1])
        if family == "random":
            n, m, size = params
            return random_k_uniform_hypergraph(
                n, m, committee_size=size, seed=self.seed
            )
        raise ValueError(f"unknown topology family {family!r}")

    @property
    def environment_spec(self) -> str:
        """The drawn request model as an ``environment_from_spec`` string.

        This is what campaign jobs carry and JSONL rows report, so the
        in-process build path and the worker build path are one code path.
        """
        if self.environment == "probabilistic":
            return f"probabilistic:{self.request_probability}"
        if self.environment == "bursty":
            return f"bursty:{self.active_steps}:{self.quiet_steps}"
        return "always"

    def build_environment(self) -> Environment:
        # The RNG seed (scenario seed) keeps a spec run twice — or on two
        # engines — drawing the same request stream.
        return environment_from_spec(
            self.environment_spec, self.discussion_steps, seed=self.seed
        )

    def build_daemon(self, seed: Optional[int] = None) -> Daemon:
        """The daemon, seeded by the *run* seed (so one scenario can be run
        under many schedules)."""
        return daemon_from_name(self.daemon, seed=seed if seed is not None else self.seed)


def random_scenario(seed: int) -> RandomScenarioSpec:
    """Derive one randomized scenario deterministically from ``seed``.

    Sizes stay small-to-mid (n ≈ 4..30) so a fuzz batch of dozens of
    scenarios is tier-1-fast; campaigns that want production sizes mix in
    the named stress scenarios instead.
    """
    rng = random.Random(seed * 9176 + 29)
    family = rng.choice(TOPOLOGY_FAMILIES)
    if family == "path":
        params: Tuple[int, ...] = (rng.randint(3, 10), rng.choice((2, 2, 3)))
    elif family == "cycle":
        params = (rng.randint(3, 10), 2)
    elif family == "star":
        params = (rng.randint(2, 6), rng.randint(2, 3))
    elif family == "grid":
        params = (rng.randint(2, 4), rng.randint(2, 4))
    elif family == "complete":
        params = (rng.randint(4, 6), 2)
    else:  # random k-uniform, connected by construction
        n = rng.randint(6, 12)
        size = rng.choice((2, 2, 3))
        # Every professor must be coverable: m * size >= n.
        min_committees = max(3, -(-n // size))
        params = (n, rng.randint(min_committees, n), size)
    environment = rng.choice(ENVIRONMENTS)
    return RandomScenarioSpec(
        seed=seed,
        topology=family,
        topology_params=params,
        token=rng.choice(TOKENS),
        daemon=rng.choice(("weakly_fair", "weakly_fair", "synchronous")),
        environment=environment,
        request_probability=rng.choice((0.3, 0.5, 0.7, 0.9)),
        active_steps=rng.randint(8, 24),
        quiet_steps=rng.randint(0, 12),
        discussion_steps=rng.randint(1, 3),
        arbitrary_start=rng.random() < 0.4,
        fault_every=rng.choice((0, 0, 0, 17, 29)),
        fault_fraction=rng.choice((0.3, 0.6)),
    )


def random_scenarios(count: int, base_seed: int = 0) -> List[RandomScenarioSpec]:
    """``count`` randomized scenarios at consecutive seeds from ``base_seed``."""
    if count < 0:
        raise ValueError("count must be >= 0")
    return [random_scenario(base_seed + i) for i in range(count)]
