"""The Theorem 1 witness execution (Figure 2).

Theorem 1: no committee coordination algorithm can satisfy both Maximal
Concurrency and Professor Fairness (assuming professors request infinitely
often).  The proof constructs, on the hypergraph ``V = {1..5}``,
``E = {{1,2}, {1,3,5}, {3,4}}``, a weakly-fair computation in which meetings
of ``{1,2}`` and ``{3,4}`` alternate in a staggered fashion so that
professors 1 and 3 are never simultaneously waiting -- hence ``{1,3,5}``
never convenes and professor 5 starves, even though every meeting demanded by
Maximal Concurrency is delivered.

This module reproduces that adversarial execution operationally for our
*actual* algorithms:

* run on ``CC1 ∘ TC`` (which satisfies Maximal Concurrency), the schedule
  starves professor 5 -- the unfairness the paper accepts in exchange for
  maximal concurrency;
* run on ``CC2 ∘ TC`` (which sacrifices Maximal Concurrency), the token
  eventually reaches professor 5, the lock mechanism holds committee
  ``{1,3,5}`` together, and professor 5 meets -- fairness restored.

The adversary needs two ingredients, both legitimate under the paper's
assumptions:

1. an initial configuration in which ``{1,2}`` is already meeting while
   3, 4, 5 are waiting (configuration *A* of Figure 2) -- any configuration
   is a legal starting point for a snap-stabilizing algorithm;
2. request timings (``RequestOut``) that keep the two 2-committees staggered:
   the members of ``{1,2}`` only want to leave while ``{3,4}`` is meeting and
   vice versa.  Professors re-request immediately (``RequestIn`` always true).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.base import CommitteeAlgorithmBase
from repro.core.states import DONE, LOOKING, POINTER, STATUS, TOKEN_FLAG
from repro.hypergraph.generators import figure2_hypergraph
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph
from repro.kernel.configuration import Configuration
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.spec.events import committee_meets, convened_meetings
from repro.spec.fairness import FairnessSummary, professor_fairness_counts
from repro.workloads.request_models import ScriptedEnvironment

E12 = Hyperedge([1, 2])
E135 = Hyperedge([1, 3, 5])
E34 = Hyperedge([3, 4])


@dataclass(frozen=True)
class ImpossibilityOutcome:
    """Result of one adversarial run."""

    algorithm: str
    steps: int
    fairness: FairnessSummary
    meetings_convened: int

    @property
    def professor5_participations(self) -> int:
        return self.fairness.per_professor.get(5, 0)

    @property
    def min_other_participations(self) -> int:
        others = [c for p, c in self.fairness.per_professor.items() if p != 5]
        return min(others) if others else 0

    def as_row(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "meetings": self.meetings_convened,
            "prof 1-4 min participations": self.min_other_participations,
            "prof 5 participations": self.professor5_participations,
            "prof 5 starved": self.professor5_participations == 0,
        }


def staggered_environment(
    hypergraph: Hypergraph, timeout_steps: int = 80
) -> ScriptedEnvironment:
    """Request model realizing the staggered meeting durations of the proof.

    Members of ``{1,2}`` want to leave only once ``{3,4}`` meets, and vice
    versa -- this keeps professors 1 and 3 out of phase, which is the entire
    adversarial trick of Theorem 1.  To remain a *legal* workload (the problem
    statement requires all meetings to terminate in finite time, and
    ``RequestOut`` must eventually hold for a professor stuck in a terminated
    or blocked meeting) every professor additionally agrees to leave after
    ``timeout_steps`` steps of discussion, whatever the other committee is
    doing.  Professor 5 follows the default behaviour.

    The environment tracks per-professor ``done`` step counts itself (via the
    shared mixin), so the timeout needs no extra machinery.
    """

    environment = ScriptedEnvironment(default_discussion_steps=1)

    def out_while(pid: int, other: Hyperedge):
        def predicate(configuration: Configuration, step: int) -> bool:
            if committee_meets(configuration, other):
                return True
            return environment.done_steps(pid) >= timeout_steps

        return predicate

    environment._out_script.update(  # scripted predicates close over the env itself
        {
            1: out_while(1, E34),
            2: out_while(2, E34),
            3: out_while(3, E12),
            4: out_while(4, E12),
        }
    )
    return environment


def configuration_a(algorithm: CommitteeAlgorithmBase) -> Configuration:
    """Configuration *A* of Figure 2: ``{1,2}`` meeting, professors 3, 4, 5 waiting."""
    states = algorithm.initial_configuration().to_dict()
    for pid in (1, 2):
        states[pid][STATUS] = DONE
        states[pid][POINTER] = E12
    for pid in (3, 4, 5):
        states[pid][STATUS] = LOOKING
        states[pid][POINTER] = None
        states[pid][TOKEN_FLAG] = False
    return Configuration(states)


def run_adversarial_schedule(
    algorithm: CommitteeAlgorithmBase,
    name: str,
    max_steps: int = 2500,
    seed: int = 0,
    timeout_steps: int = 80,
) -> ImpossibilityOutcome:
    """Run one algorithm under the Theorem 1 adversarial schedule."""
    hypergraph = algorithm.hypergraph
    environment = staggered_environment(hypergraph, timeout_steps=timeout_steps)
    scheduler = Scheduler(
        algorithm,
        environment=environment,
        daemon=default_daemon(seed=seed),
        initial_configuration=configuration_a(algorithm),
    )
    # Idle steps are allowed: while every process is disabled (e.g. everybody
    # discussing), external time still passes so the timeout fallback of the
    # request model can fire -- meetings stay finite, as the problem requires.
    result = scheduler.run(max_steps=max_steps, allow_idle_steps=True)
    fairness = professor_fairness_counts(result.trace, hypergraph)
    return ImpossibilityOutcome(
        algorithm=name,
        steps=result.steps,
        fairness=fairness,
        meetings_convened=len(convened_meetings(result.trace, hypergraph)),
    )
