"""Benchmark scenarios: named (topology, workload) pairs.

The benchmark harness iterates over these scenarios so that every experiment
reports the same rows for the same inputs.  ``paper_scenarios`` covers the
exact topologies of the paper's figures; ``scaling_scenarios`` provides the
parametric families used for the Theorem 5/6/8 sweeps and for the
concurrency comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.hypergraph.generators import (
    complete_hypergraph,
    cycle_of_committees,
    disjoint_committees,
    figure1_hypergraph,
    figure2_hypergraph,
    figure3_hypergraph,
    figure4_hypergraph,
    grid_of_committees,
    path_of_committees,
    random_k_uniform_hypergraph,
    star_hypergraph,
)
from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class Scenario:
    """A named topology (plus default workload knobs) used by the benchmarks."""

    name: str
    hypergraph: Hypergraph
    description: str = ""
    discussion_steps: int = 1

    @property
    def n(self) -> int:
        return self.hypergraph.n

    @property
    def m(self) -> int:
        return self.hypergraph.m


def paper_scenarios() -> List[Scenario]:
    """The four topologies drawn in the paper."""
    return [
        Scenario(
            name="figure1",
            hypergraph=figure1_hypergraph(),
            description="Figure 1: 6 professors, 5 committees (running example)",
        ),
        Scenario(
            name="figure2-impossibility",
            hypergraph=figure2_hypergraph(),
            description="Figure 2: 5 professors, the Theorem 1 impossibility witness",
        ),
        Scenario(
            name="figure3-cc1-example",
            hypergraph=figure3_hypergraph(),
            description="Figure 3: 10 professors, the CC1 worked example",
        ),
        Scenario(
            name="figure4-cc2-locks",
            hypergraph=figure4_hypergraph(),
            description="Figure 4: 9 professors, the CC2 lock example",
        ),
    ]


def scaling_scenarios(
    sizes: Tuple[int, ...] = (4, 6, 8),
    seed: int = 7,
) -> List[Scenario]:
    """Parametric families used by the scaling and comparison benchmarks."""
    scenarios: List[Scenario] = []
    for k in sizes:
        scenarios.append(
            Scenario(
                name=f"path-{k}",
                hypergraph=path_of_committees(k),
                description=f"path of {k} two-member committees",
            )
        )
    for k in sizes:
        if k >= 3:
            scenarios.append(
                Scenario(
                    name=f"cycle-{k}",
                    hypergraph=cycle_of_committees(k),
                    description=f"cycle of {k} two-member committees",
                )
            )
    scenarios.append(
        Scenario(
            name="star-5",
            hypergraph=star_hypergraph(5, 2),
            description="star: 5 committees sharing one professor (max 1 meeting at a time)",
        )
    )
    scenarios.append(
        Scenario(
            name="disjoint-4",
            hypergraph=disjoint_committees(4, 3),
            description="4 disjoint 3-member committees (no conflicts)",
        )
    )
    scenarios.append(
        Scenario(
            name="grid-3x3",
            hypergraph=grid_of_committees(3, 3),
            description="3x3 grid, committees are dominoes",
        )
    )
    scenarios.append(
        Scenario(
            name="complete-5-pairs",
            hypergraph=complete_hypergraph(5, 2),
            description="all pairs over 5 professors",
        )
    )
    scenarios.append(
        Scenario(
            name="random-10-8",
            hypergraph=random_k_uniform_hypergraph(10, 8, committee_size=3, seed=seed),
            description="random 3-uniform hypergraph, 10 professors, 8 committees",
        )
    )
    return scenarios


def stress_scenarios() -> List[Scenario]:
    """Production-ish sizes used by the streaming spec checkers and benches.

    These are the topologies the sparse-run tooling (``repro-cc check
    --sparse``, ``bench_streaming_spec``) exercises: big enough that
    recording every configuration is off the table, structured enough that
    the spec verdicts are interpretable.
    """
    return [
        Scenario(
            name="cycle-100",
            hypergraph=cycle_of_committees(100),
            description="cycle of 100 two-member committees (n=100, streaming-spec stress)",
        ),
        Scenario(
            name="path-64",
            hypergraph=path_of_committees(64),
            description="path of 64 two-member committees (n=65)",
        ),
        Scenario(
            name="grid-6x6",
            hypergraph=grid_of_committees(6, 6),
            description="6x6 grid, committees are dominoes (n=36)",
        ),
    ]


def all_scenarios() -> List[Scenario]:
    """Every named scenario: paper figures, scaling families, stress sizes."""
    return paper_scenarios() + scaling_scenarios() + stress_scenarios()


def scenario_by_name(name: str) -> Scenario:
    """Look up a scenario by name among all named scenarios."""
    for scenario in all_scenarios():
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario {name!r}")
