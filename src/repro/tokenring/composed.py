"""Leader election ∘ token circulation: the construction the paper suggests.

Section 4.1: *"To obtain such a token circulation, one can compose a
self-stabilizing leader election algorithm with one of the self-stabilizing
token circulation algorithms for arbitrary rooted networks.  The composition
only consists of two algorithms running concurrently with the following
rule: if a process decides that it is the leader, it executes the root code
of the token circulation.  Otherwise, it executes the code of the non-root
process."*

:class:`ComposedTokenCirculation` realizes this construction as a standalone
:class:`~repro.kernel.algorithm.DistributedAlgorithm`:

* the leader-election component is the max-id election of
  :mod:`repro.tokenring.leader_election` (variables ``lid``, ``d``);
* the token component is Dijkstra's K-state algorithm over the id-ordered
  virtual ring (variable ``c``), except that "being the root" is not wired to
  a fixed process -- a process runs the root code exactly when it currently
  believes it is the leader (``lid_p = p``);
* the composition is fair: both the ``Elect`` action and the ``T`` action are
  in every process's action list (``Elect`` has higher priority, appearing
  later, so stabilization of the election is never postponed by token
  passing -- this realizes "TC stabilizes independently of the activations of
  action T").

While the election has not stabilized several processes may act as roots and
several tokens may exist; once the election converges (O(n) rounds) the ring
degenerates to a single-root Dijkstra ring and the usual argument yields a
unique circulating token.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph, ProcessId
from repro.kernel.algorithm import (
    Action,
    ActionContext,
    DistributedAlgorithm,
    merge_read_dependency_variables,
)
from repro.kernel.configuration import Configuration
from repro.tokenring.leader_election import DISTANCE, LEADER, SelfStabilizingLeaderElection

COUNTER = "c"


class ComposedTokenCirculation(DistributedAlgorithm):
    """Fair composition of leader election and K-state token circulation."""

    def __init__(self, hypergraph: Hypergraph, k: int | None = None) -> None:
        self.hypergraph = hypergraph
        self.election = SelfStabilizingLeaderElection(hypergraph)
        self._pids = hypergraph.vertices
        self._ring = tuple(sorted(self._pids, reverse=True))
        index = {pid: i for i, pid in enumerate(self._ring)}
        self._pred = {pid: self._ring[(index[pid] - 1) % len(self._ring)] for pid in self._ring}
        self._k = k if k is not None else len(self._ring) + 1
        if self._k <= len(self._ring):
            raise ValueError("K must exceed the ring length")

    # ------------------------------------------------------------------ #
    # DistributedAlgorithm interface
    # ------------------------------------------------------------------ #
    def process_ids(self) -> Tuple[ProcessId, ...]:
        return self._pids

    def initial_state(self, pid: ProcessId) -> Dict[str, Any]:
        state = dict(self.election.initial_state(pid))
        state[COUNTER] = 0
        return state

    def arbitrary_state(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        state = dict(self.election.arbitrary_state(pid, rng))
        state[COUNTER] = rng.randrange(self._k)
        return state

    # -- token predicate ------------------------------------------------ #
    def _acts_as_root(self, read, pid: ProcessId) -> bool:
        return read(pid, LEADER) == pid

    def holds_token(self, read, pid: ProcessId) -> bool:
        own = read(pid, COUNTER) or 0
        pred = read(self._pred[pid], COUNTER) or 0
        if self._acts_as_root(read, pid):
            return own == pred
        return own != pred

    def token_holders(self, configuration: Configuration) -> Tuple[ProcessId, ...]:
        read = lambda q, var: configuration.get(q, var)
        return tuple(p for p in self._pids if self.holds_token(read, p))

    def actions(self, pid: ProcessId) -> Sequence[Action]:
        election_actions = list(self.election.actions(pid))

        def token_guard(ctx: ActionContext) -> bool:
            return self.holds_token(lambda q, var: ctx.read(q, var), ctx.pid)

        def token_statement(ctx: ActionContext) -> None:
            read = lambda q, var: ctx.read(q, var)
            own = read(ctx.pid, COUNTER) or 0
            if self._acts_as_root(read, ctx.pid):
                ctx.write(COUNTER, (own + 1) % self._k)
            else:
                ctx.write(COUNTER, read(self._pred[ctx.pid], COUNTER) or 0)
            ctx.mark_token_released()

        token_action = Action(label="T", guard=token_guard, statement=token_statement)
        # Election actions appear last: higher priority, so election
        # stabilization is independent of token passing.
        return tuple([token_action] + election_actions)

    # -- dirty-set protocol (incremental scheduler engine) ---------------- #
    def read_dependencies(self, pid: ProcessId) -> Tuple[ProcessId, ...]:
        """``T`` reads the ring predecessor's counter; ``Elect`` reads ``G_H`` neighbours."""
        deps = {pid, self._pred[pid]}
        deps.update(self.hypergraph.neighbors(pid))
        return tuple(sorted(deps))

    def read_dependency_variables(
        self, pid: ProcessId
    ) -> Dict[ProcessId, Optional[Tuple[str, ...]]]:
        """Per variable: ``T`` reads ``c`` of the ring predecessor (plus its own
        leader belief to decide root-vs-non-root); ``Elect`` reads the claims
        ``(lid, d)`` of the ``G_H`` neighbours.  A neighbour passing the token
        therefore no longer re-evaluates ``pid``'s election guard unless it is
        also the ring predecessor."""
        return merge_read_dependency_variables(
            {pid: None, self._pred[pid]: (COUNTER,)},
            {q: (LEADER, DISTANCE) for q in self.hypergraph.neighbors(pid)},
        )

    #: No guard consults the environment, so membership never changes.
    environment_sensitive_variables: Tuple[str, ...] = ()

    def environment_sensitive(self, pid, configuration) -> bool:
        return False

    def environment_sensitive_processes(self, configuration) -> Tuple[ProcessId, ...]:
        return ()  # neither guard consults the environment

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def is_stabilized(self, configuration: Configuration) -> bool:
        """``True`` iff the election is legitimate and a single token exists."""
        if not self.election.is_legitimate(configuration):
            return False
        return len(self.token_holders(configuration)) == 1
