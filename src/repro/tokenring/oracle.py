"""Idealized ("oracle") token module.

The paper's correctness arguments for the CC layer only rely on Property 1
(eventually a unique, fairly circulating token).  When testing or measuring
the CC layer itself it is often convenient to start from a token layer that
is *already* stabilized even when the CC variables are arbitrary -- the
oracle module provides exactly that: it behaves like
:class:`~repro.tokenring.dijkstra_ring.DijkstraRingToken` but its
"arbitrary" configurations are legitimate single-token configurations (with
a random token position), so stabilization noise from the token layer never
obscures a CC-layer experiment.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.kernel.configuration import ProcessId
from repro.tokenring.dijkstra_ring import COUNTER, DijkstraRingToken


class OracleTokenModule(DijkstraRingToken):
    """A Dijkstra ring whose arbitrary configurations are already legitimate.

    ``arbitrary_variables`` draws a single random *token position* rather than
    random counters: the processes up to (and including) the chosen holder's
    ring position get counter 1 and the rest keep counter 0, which is a
    legitimate configuration in which exactly the chosen process holds the
    token.  The draw is memoised per RNG instance so that all processes of a
    configuration agree on the position.
    """

    def arbitrary_variables(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        position = getattr(rng, "_oracle_token_position", None)
        if position is None:
            position = rng.randrange(len(self.ring))
            setattr(rng, "_oracle_token_position", position)
        ring = self.ring
        my_index = ring.index(pid)
        if position == len(ring) - 1:
            # Token back at the root: every counter equal.
            return {COUNTER: 0}
        # Processes at ring positions 1..position have copied the root's new
        # value (1); later positions still hold the old value (0).  The token
        # then sits at ring position ``position + 1`` ... i.e. the first
        # process whose counter differs from its predecessor's.
        if my_index == 0:
            return {COUNTER: 1}
        return {COUNTER: 1 if my_index <= position else 0}
