"""The ``TokenModule`` interface consumed by the CC ∘ TC compositions.

A token module contributes

* a set of per-process variables (namespaced by the composition),
* the predicate ``Token(p)`` -- does ``p`` currently hold a token? -- which a
  guard may evaluate by reading ``p``'s and its ring-predecessor's variables,
* the statement ``ReleaseToken_p`` -- pass the token on -- which writes only
  ``p``'s own variables,
* optional *maintenance actions* that run in fair composition with the CC
  layer and realize the "stabilizes independently of the activations of
  action ``T``" part of Property 1 (empty for the ring modules, whose
  stabilization happens through token passing itself -- a documented
  substitution, see DESIGN.md §3).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.kernel.algorithm import Action, ActionContext
from repro.kernel.configuration import ProcessId

#: ``read(pid, variable)`` accessor over the token module's (un-prefixed)
#: variable names; the composition supplies one that maps to the prefixed
#: names of the composed state.
Reader = Callable[[ProcessId, str], Any]


class TokenModule(abc.ABC):
    """Abstract self-stabilizing token circulation (Property 1)."""

    @abc.abstractmethod
    def process_ids(self) -> Tuple[ProcessId, ...]:
        """Processes the module circulates the token among."""

    @abc.abstractmethod
    def initial_variables(self, pid: ProcessId) -> Dict[str, Any]:
        """Legitimate (stabilized, single-token) starting values for ``pid``."""

    @abc.abstractmethod
    def arbitrary_variables(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        """Arbitrary values for ``pid`` (transient-fault starting points)."""

    @abc.abstractmethod
    def holds_token(self, read: Reader, pid: ProcessId) -> bool:
        """The ``Token(p)`` predicate evaluated against a snapshot reader."""

    @abc.abstractmethod
    def release_token(self, ctx: ActionContext, read: Reader) -> None:
        """The ``ReleaseToken_p`` statement.

        ``ctx.write`` must only touch ``pid``'s own (un-prefixed) variable
        names; the composition wraps the context so writes land in the
        namespaced state.
        """

    def maintenance_actions(self, pid: ProcessId) -> Sequence[Action]:
        """Stabilization actions other than ``T`` (default: none)."""
        return ()

    def read_dependencies(self, pid: ProcessId) -> Tuple[ProcessId, ...]:
        """Processes whose module variables ``Token(pid)`` (and the guards of
        any maintenance actions of ``pid``) may read.

        Consumed by the incremental scheduler engine via the composition.
        The default is conservative (every process); the ring modules read
        only the ring predecessor and override accordingly.
        """
        return self.process_ids()

    def read_dependency_variables(
        self, pid: ProcessId
    ) -> Dict[ProcessId, Optional[Tuple[str, ...]]]:
        """Variable-granular read dependencies, in *un-prefixed* module names.

        ``source -> variable names`` with ``None`` meaning "any module
        variable of that source"; the composition prefixes the names before
        handing them to the scheduler.  The default delegates to
        :meth:`read_dependencies` at process granularity; the ring modules
        override this to declare exactly the counter of the ring predecessor.
        """
        return {source: None for source in self.read_dependencies(pid)}

    # ------------------------------------------------------------------ #
    # diagnostics shared by implementations
    # ------------------------------------------------------------------ #
    def token_holders(self, read: Reader) -> Tuple[ProcessId, ...]:
        """All processes currently satisfying ``Token(p)`` (≥1 for ring modules)."""
        return tuple(p for p in self.process_ids() if self.holds_token(read, p))

    def is_stabilized(self, read: Reader) -> bool:
        """``True`` iff exactly one process holds a token."""
        return len(self.token_holders(read)) == 1
