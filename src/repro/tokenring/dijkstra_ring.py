"""Dijkstra's K-state self-stabilizing token circulation.

The classic algorithm (Dijkstra 1974) on a unidirectional ring of ``n``
processes with a distinguished root:

* every process ``p`` holds a counter ``c_p ∈ {0, ..., K-1}`` with ``K > n``;
* the root holds a token iff its counter equals its predecessor's
  (``c_root = c_pred``); it passes the token by incrementing its counter
  modulo ``K``;
* a non-root holds a token iff its counter differs from its predecessor's
  (``c_p ≠ c_pred``); it passes the token by copying the predecessor.

From any initial assignment at least one process holds a token, and after at
most ``O(n²)`` token passes exactly one token remains and circulates the ring
forever -- the classical self-stabilization result, which gives Property 1.

Two classes are provided:

* :class:`DijkstraRingToken` -- the :class:`~repro.tokenring.interfaces.TokenModule`
  used by the CC ∘ TC compositions (the pass action ``T`` is emulated by the
  CC layer).
* :class:`DijkstraRingAlgorithm` -- a standalone
  :class:`~repro.kernel.algorithm.DistributedAlgorithm` whose only action is
  ``T``; used to unit-test the stabilization and fairness properties of the
  ring in isolation.

The ring order is *virtual*: by default processes are arranged in increasing
id order, regardless of the communication topology.  This is the substitution
documented in DESIGN.md §3 -- the paper's ``TC`` passes the token between
``G_H``-neighbours, ours between ring-neighbours; the CC layer only ever uses
the predicate ``Token(p)`` and the statement ``ReleaseToken_p``, so Property 1
(the only interface the proofs rely on) is preserved.  Use
:class:`~repro.tokenring.tree_circulation.TreeTokenCirculation` for a ring
that follows the communication graph.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.kernel.algorithm import Action, ActionContext, DistributedAlgorithm
from repro.kernel.configuration import ProcessId
from repro.tokenring.interfaces import Reader, TokenModule

COUNTER = "c"


class DijkstraRingToken(TokenModule):
    """K-state token circulation over a virtual ring of process ids.

    Parameters
    ----------
    process_ids:
        The processes among which the token circulates.
    ring_order:
        Optional explicit ring order (a permutation of ``process_ids``).  The
        first element is the root.  Defaults to decreasing id order with the
        largest id as root (so the root is the natural "leader" by id).
    k:
        Number of counter states; must exceed the ring length.  Defaults to
        ``n + 1``.
    """

    def __init__(
        self,
        process_ids: Sequence[ProcessId],
        ring_order: Optional[Sequence[ProcessId]] = None,
        k: Optional[int] = None,
    ) -> None:
        pids = tuple(sorted(set(process_ids)))
        if not pids:
            raise ValueError("need at least one process")
        if ring_order is None:
            ring = tuple(sorted(pids, reverse=True))
        else:
            ring = tuple(ring_order)
            if tuple(sorted(ring)) != pids:
                raise ValueError("ring_order must be a permutation of process_ids")
        self._pids = pids
        self._ring = ring
        self._root = ring[0]
        self._k = k if k is not None else len(ring) + 1
        if self._k <= len(ring):
            raise ValueError("K must exceed the ring length for self-stabilization")
        index = {pid: i for i, pid in enumerate(ring)}
        self._pred = {pid: ring[(index[pid] - 1) % len(ring)] for pid in ring}
        self._succ = {pid: ring[(index[pid] + 1) % len(ring)] for pid in ring}

    # ------------------------------------------------------------------ #
    # structural accessors
    # ------------------------------------------------------------------ #
    def process_ids(self) -> Tuple[ProcessId, ...]:
        return self._pids

    @property
    def ring(self) -> Tuple[ProcessId, ...]:
        return self._ring

    @property
    def root(self) -> ProcessId:
        return self._root

    @property
    def k(self) -> int:
        return self._k

    def predecessor(self, pid: ProcessId) -> ProcessId:
        return self._pred[pid]

    def successor(self, pid: ProcessId) -> ProcessId:
        return self._succ[pid]

    # ------------------------------------------------------------------ #
    # TokenModule interface
    # ------------------------------------------------------------------ #
    def initial_variables(self, pid: ProcessId) -> Dict[str, Any]:
        # All counters equal: exactly the root holds the token.
        return {COUNTER: 0}

    def arbitrary_variables(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        return {COUNTER: rng.randrange(self._k)}

    def holds_token(self, read: Reader, pid: ProcessId) -> bool:
        own = read(pid, COUNTER)
        pred = read(self._pred[pid], COUNTER)
        own = 0 if own is None else own
        pred = 0 if pred is None else pred
        if pid == self._root:
            return own == pred
        return own != pred

    def release_token(self, ctx: ActionContext, read: Reader) -> None:
        pid = ctx.pid
        own = read(pid, COUNTER)
        own = 0 if own is None else own
        if pid == self._root:
            ctx.write(COUNTER, (own + 1) % self._k)
        else:
            pred_value = read(self._pred[pid], COUNTER)
            ctx.write(COUNTER, 0 if pred_value is None else pred_value)

    def read_dependencies(self, pid: ProcessId) -> Tuple[ProcessId, ...]:
        """``Token(p)`` reads only ``p``'s counter and its ring predecessor's."""
        return (pid, self._pred[pid])

    def read_dependency_variables(
        self, pid: ProcessId
    ) -> Dict[ProcessId, Optional[Tuple[str, ...]]]:
        """``Token(p)`` reads exactly the counter ``c`` of ``p`` and its predecessor.

        Declaring the variable (not just the process) means a composed CC
        layer is re-evaluated for its ring successor only when a process
        writes ``c`` (token release), not on every status/pointer move.
        """
        return {pid: (COUNTER,), self._pred[pid]: (COUNTER,)}


class DijkstraRingAlgorithm(DistributedAlgorithm):
    """Standalone version of the ring with the explicit pass action ``T``.

    Every process has the single action ``T :: Token(p) |-> ReleaseToken_p``;
    running it under any (weakly fair) daemon demonstrates self-stabilization
    to a unique circulating token, which the token-circulation unit tests and
    the snap-vs-self benchmark verify.
    """

    def __init__(self, module: DijkstraRingToken) -> None:
        self.module = module

    def process_ids(self) -> Tuple[ProcessId, ...]:
        return self.module.process_ids()

    def initial_state(self, pid: ProcessId) -> Dict[str, Any]:
        return self.module.initial_variables(pid)

    def arbitrary_state(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        return self.module.arbitrary_variables(pid, rng)

    def actions(self, pid: ProcessId) -> Sequence[Action]:
        module = self.module

        def guard(ctx: ActionContext) -> bool:
            return module.holds_token(lambda q, var: ctx.read(q, var), ctx.pid)

        def statement(ctx: ActionContext) -> None:
            module.release_token(ctx, lambda q, var: ctx.read(q, var))
            ctx.mark_token_released()

        return (Action(label="T", guard=guard, statement=statement),)

    # -- dirty-set protocol (incremental scheduler engine) ---------------- #
    def read_dependencies(self, pid: ProcessId) -> Tuple[ProcessId, ...]:
        return self.module.read_dependencies(pid)

    def read_dependency_variables(
        self, pid: ProcessId
    ) -> Dict[ProcessId, Optional[Tuple[str, ...]]]:
        return self.module.read_dependency_variables(pid)

    #: No guard consults the environment, so membership never changes.
    environment_sensitive_variables: Tuple[str, ...] = ()

    def environment_sensitive(self, pid, configuration) -> bool:
        return False

    def environment_sensitive_processes(self, configuration) -> Tuple[ProcessId, ...]:
        return ()  # the ``T`` guard never consults the environment

    # Convenience used by tests.
    def token_holders_in(self, configuration) -> Tuple[ProcessId, ...]:
        return self.module.token_holders(lambda q, var: configuration.get(q, var))
