"""Token circulation along a spanning tree of the communication network.

The virtual ring of :class:`~repro.tokenring.dijkstra_ring.DijkstraRingToken`
ignores the topology; this module instead orders the processes by the DFS
preorder of a BFS spanning tree of the underlying communication network
``G_H``, rooted at the maximum-id process (the leader the election module
elects).  Consecutive ring positions are then related by short tree paths, so
the circulation approximates the neighbour-to-neighbour hand-off of the DFS
token circulations the paper cites ([24-27]); the counter mechanics (and the
self-stabilization argument) are exactly Dijkstra's K-state algorithm.

This is the token module the high-level runner uses by default when the
hypergraph is connected.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph, ProcessId
from repro.tokenring.dijkstra_ring import DijkstraRingToken


def dfs_preorder_of_spanning_tree(
    hypergraph: Hypergraph, root: Optional[ProcessId] = None
) -> Tuple[ProcessId, ...]:
    """DFS preorder of a BFS spanning tree of ``G_H`` rooted at ``root``.

    ``root`` defaults to the maximum process id.  Children are visited in
    increasing id order so the order is deterministic.  For a disconnected
    communication network the remaining components are appended in id order
    (each traversed the same way), so the result is always a permutation of
    the vertex set.
    """
    if root is None:
        root = max(hypergraph.vertices)
    parent = hypergraph.bfs_spanning_tree(root)
    children: Dict[ProcessId, List[ProcessId]] = {v: [] for v in parent}
    for child, par in parent.items():
        if child != par:
            children[par].append(child)
    for kids in children.values():
        kids.sort()

    order: List[ProcessId] = []
    stack: List[ProcessId] = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(reversed(children[node]))

    visited = set(order)
    for pid in hypergraph.vertices:
        if pid not in visited:
            # Disconnected component: traverse it the same way.
            sub_parent = hypergraph.bfs_spanning_tree(pid)
            sub_children: Dict[ProcessId, List[ProcessId]] = {v: [] for v in sub_parent}
            for child, par in sub_parent.items():
                if child != par:
                    sub_children[par].append(child)
            for kids in sub_children.values():
                kids.sort()
            sub_stack = [pid]
            while sub_stack:
                node = sub_stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                order.append(node)
                sub_stack.extend(reversed(sub_children.get(node, [])))
    return tuple(order)


class TreeTokenCirculation(DijkstraRingToken):
    """Dijkstra K-state circulation over the DFS preorder of a spanning tree."""

    def __init__(self, hypergraph: Hypergraph, root: Optional[ProcessId] = None, k: Optional[int] = None) -> None:
        order = dfs_preorder_of_spanning_tree(hypergraph, root)
        super().__init__(hypergraph.vertices, ring_order=order, k=k)
        self.hypergraph = hypergraph
