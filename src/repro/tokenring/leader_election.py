"""Self-stabilizing leader election (max-id with bounded distances).

The paper suggests obtaining ``TC`` by composing a self-stabilizing leader
election (e.g. Datta-Larmore-Vemula [23]) with a token circulation rooted at
the elected leader.  This module provides a compact self-stabilizing leader
election in the same spirit:

* every process ``p`` maintains a believed leader id ``lid_p`` and a distance
  ``d_p`` to it;
* the legitimate configurations have ``lid_p = max(V)`` for all ``p`` and
  ``d_p`` equal to the hop distance from ``p`` to the maximum-id process in
  the underlying communication network;
* the single rule makes ``(lid_p, d_p)`` equal to the best claim available
  locally: ``(p, 0)`` or ``(lid_q, d_q + 1)`` for a neighbour ``q``, where
  claims are ordered by larger id first and smaller distance second;
* distances are bounded by ``n``: claims whose distance would exceed ``n``
  are discarded, which kills "ghost" leader ids surviving from an arbitrary
  initial configuration (they can only persist by growing their distance
  around a cycle).

Convergence takes ``O(n)`` rounds, after which the process with the maximum
identifier is the unique process satisfying ``IsLeader``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernel.algorithm import Action, ActionContext, DistributedAlgorithm
from repro.kernel.configuration import Configuration, ProcessId

LEADER = "lid"
DISTANCE = "d"


class SelfStabilizingLeaderElection(DistributedAlgorithm):
    """Max-id leader election on the underlying communication network ``G_H``."""

    def __init__(self, hypergraph: Hypergraph) -> None:
        self.hypergraph = hypergraph
        self._pids = hypergraph.vertices
        self._neighbors = hypergraph.communication_adjacency()
        self._n = hypergraph.n
        self._max_id = max(self._pids)
        # Hop distances from the true leader, for legitimate initialisation
        # and for the convergence checks in the tests.
        self._true_distance = self._bfs_distances(self._max_id)

    def _bfs_distances(self, source: ProcessId) -> Dict[ProcessId, int]:
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt = []
            for v in frontier:
                for u in self._neighbors[v]:
                    if u not in dist:
                        dist[u] = dist[v] + 1
                        nxt.append(u)
            frontier = nxt
        return dist

    # ------------------------------------------------------------------ #
    # DistributedAlgorithm interface
    # ------------------------------------------------------------------ #
    def process_ids(self) -> Tuple[ProcessId, ...]:
        return self._pids

    def initial_state(self, pid: ProcessId) -> Dict[str, Any]:
        return {LEADER: self._max_id, DISTANCE: self._true_distance.get(pid, 0)}

    def arbitrary_state(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        # Possibly a ghost id larger than every real id, and any distance.
        return {
            LEADER: rng.randrange(0, self._max_id + 4),
            DISTANCE: rng.randrange(0, self._n + 2),
        }

    def _best_claim(self, ctx: ActionContext) -> Tuple[ProcessId, int]:
        pid = ctx.pid
        best = (pid, 0)
        for q in self._neighbors[pid]:
            lid_q = ctx.read(q, LEADER)
            d_q = ctx.read(q, DISTANCE)
            if lid_q is None or d_q is None:
                continue
            candidate = (lid_q, d_q + 1)
            if candidate[1] > self._n:
                continue  # distance bound: discard ghost claims
            if candidate[0] > best[0] or (candidate[0] == best[0] and candidate[1] < best[1]):
                best = candidate
        return best

    def actions(self, pid: ProcessId) -> Sequence[Action]:
        def guard(ctx: ActionContext) -> bool:
            best = self._best_claim(ctx)
            return (ctx.own(LEADER), ctx.own(DISTANCE)) != best

        def statement(ctx: ActionContext) -> None:
            lid, dist = self._best_claim(ctx)
            ctx.write(LEADER, lid)
            ctx.write(DISTANCE, dist)

        return (Action(label="Elect", guard=guard, statement=statement),)

    # -- dirty-set protocol (incremental scheduler engine) ---------------- #
    def read_dependencies(self, pid: ProcessId) -> Tuple[ProcessId, ...]:
        """The ``Elect`` guard reads the claims of ``pid`` and its ``G_H`` neighbours."""
        return (pid,) + tuple(self._neighbors[pid])

    def read_dependency_variables(
        self, pid: ProcessId
    ) -> Dict[ProcessId, Optional[Tuple[str, ...]]]:
        """Per variable: only the claims ``(lid, d)`` of the neighbours matter."""
        spec: Dict[ProcessId, Optional[Tuple[str, ...]]] = {pid: None}
        for q in self._neighbors[pid]:
            spec[q] = (LEADER, DISTANCE)
        return spec

    #: No guard consults the environment, so membership never changes.
    environment_sensitive_variables: Tuple[str, ...] = ()

    def environment_sensitive(self, pid, configuration) -> bool:
        return False

    def environment_sensitive_processes(self, configuration) -> Tuple[ProcessId, ...]:
        return ()  # election guards never consult the environment

    # ------------------------------------------------------------------ #
    # queries used by tests, the composition, and the benchmarks
    # ------------------------------------------------------------------ #
    @property
    def true_leader(self) -> ProcessId:
        return self._max_id

    def believes_leader(self, configuration: Configuration, pid: ProcessId) -> bool:
        """``True`` iff ``pid`` currently believes it is the leader."""
        return configuration.get(pid, LEADER) == pid

    def elected(self, configuration: Configuration) -> Tuple[ProcessId, ...]:
        """Processes believing they are the leader (exactly one once stabilized)."""
        return tuple(p for p in self._pids if self.believes_leader(configuration, p))

    def is_legitimate(self, configuration: Configuration) -> bool:
        """``True`` iff every process agrees on the true leader with exact distances."""
        for pid in self._pids:
            if configuration.get(pid, LEADER) != self._max_id:
                return False
            if configuration.get(pid, DISTANCE) != self._true_distance.get(pid):
                return False
        return True
