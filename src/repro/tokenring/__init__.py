"""Self-stabilizing token circulation substrate (the paper's ``TC`` module).

Section 4.1 treats token circulation as a black box with **Property 1**:

* it offers one action ``T :: Token(p) |-> ReleaseToken_p`` passing the token
  from neighbour to neighbour,
* once stabilized, every process executes ``T`` infinitely often, and when
  ``T`` is enabled at a process it is enabled at no other process (a unique
  token circulating fairly),
* ``TC`` stabilizes independently of the activations of ``T``.

The committee coordination algorithms consume this interface through
:class:`~repro.tokenring.interfaces.TokenModule`: the composed algorithm
``CC ∘ TC`` does not contain ``T`` explicitly -- ``Token(p)`` is a predicate
input and ``ReleaseToken_p`` a statement input, exactly as in the paper.

Provided implementations:

* :class:`~repro.tokenring.dijkstra_ring.DijkstraRingToken` -- Dijkstra's
  K-state self-stabilizing token circulation over a virtual ring (default:
  processes in id order).  Tolerates arbitrary counter values: spurious
  tokens disappear as the token(s) circulate.
* :class:`~repro.tokenring.oracle.OracleTokenModule` -- the same algorithm
  but always initialized in a legitimate (single-token) configuration; used
  to isolate the CC layer in tests and in experiments where the paper
  assumes ``TC`` already stabilized.
* :class:`~repro.tokenring.tree_circulation.TreeTokenCirculation` -- token
  circulation along the DFS (Euler-tour) order of a spanning tree of the
  underlying communication network, so consecutive holders are always
  neighbours in ``G_H``.
* :class:`~repro.tokenring.leader_election.SelfStabilizingLeaderElection`
  and :class:`~repro.tokenring.composed.ComposedTokenCirculation` -- the
  leader-election ∘ token-circulation construction the paper cites for
  building ``TC`` in arbitrary networks.
"""

from repro.tokenring.interfaces import TokenModule
from repro.tokenring.dijkstra_ring import DijkstraRingAlgorithm, DijkstraRingToken
from repro.tokenring.oracle import OracleTokenModule
from repro.tokenring.leader_election import SelfStabilizingLeaderElection
from repro.tokenring.tree_circulation import TreeTokenCirculation
from repro.tokenring.composed import ComposedTokenCirculation

__all__ = [
    "TokenModule",
    "DijkstraRingAlgorithm",
    "DijkstraRingToken",
    "OracleTokenModule",
    "SelfStabilizingLeaderElection",
    "TreeTokenCirculation",
    "ComposedTokenCirculation",
]
