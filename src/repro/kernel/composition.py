"""Fair composition of distributed algorithms.

The paper composes the committee coordination layer with the token
circulation layer.  Two composition mechanisms are provided:

* :class:`FairComposition` -- the textbook fair composition [13]: the
  composed algorithm's per-process action list is the concatenation of the
  component lists (with labels namespaced), so that under a weakly fair
  daemon no component is starved.  Variable namespaces are kept disjoint by
  prefixing.
* The CC ∘ TC compositions in :mod:`repro.core.composition` are *emulating*
  compositions in the paper's sense -- the token-passing action ``T`` of the
  token module is not an explicit action of the composed algorithm but is
  emulated by the CC layer through the ``Token(p)`` predicate and the
  ``ReleaseToken_p`` statement.  Those compositions are built directly in the
  core package because they need the token module's interface, not the
  generic mechanism here.

:class:`FairComposition` is used to compose the self-stabilizing leader
election with the tree token circulation (Section 4.1 suggests exactly this
construction for obtaining ``TC``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.kernel.algorithm import Action, ActionContext, DistributedAlgorithm, Environment
from repro.kernel.configuration import ProcessId


class _NamespacedContext(ActionContext):
    """Context view that transparently prefixes variable names of one component."""

    __slots__ = ("_prefix",)

    def __init__(self, inner: ActionContext, prefix: str) -> None:
        # Share the inner context's buffers so writes land in the same step.
        self.pid = inner.pid
        self.configuration = inner.configuration
        self.environment = inner.environment
        self._writes = inner._writes
        self._released_token = inner._released_token
        self._prefix = prefix

    def read(self, pid: ProcessId, variable: str, default: Any = None) -> Any:
        return self.configuration.get(pid, self._prefix + variable, default)

    def own(self, variable: str, default: Any = None) -> Any:
        return self.configuration.get(self.pid, self._prefix + variable, default)

    def write(self, variable: str, value: Any) -> None:
        self._writes[self._prefix + variable] = value


def namespaced_action(action: Action, prefix: str) -> Action:
    """Wrap an action so its guard/statement see prefixed variable names."""

    def guard(ctx: ActionContext) -> bool:
        return action.guard(_NamespacedContext(ctx, prefix))

    def statement(ctx: ActionContext) -> None:
        action.statement(_NamespacedContext(ctx, prefix))

    return Action(label=f"{prefix}{action.label}", guard=guard, statement=statement)


class FairComposition(DistributedAlgorithm):
    """Fair composition ``P1 ∘ P2 ∘ ...`` of algorithms over the same processes.

    Each component's variables are stored under ``"<name>."``-prefixed keys
    and each component's actions are namespaced accordingly.  The composed
    action list interleaves the components in the given order; priorities
    within a component are preserved, and under a weakly fair daemon every
    component's continuously enabled actions are eventually executed, which
    is exactly the fair-composition requirement of [13].
    """

    def __init__(self, components: Sequence[Tuple[str, DistributedAlgorithm]]) -> None:
        if not components:
            raise ValueError("need at least one component")
        names = [name for name, _ in components]
        if len(set(names)) != len(names):
            raise ValueError("component names must be distinct")
        pids = components[0][1].process_ids()
        for _, algo in components[1:]:
            if algo.process_ids() != pids:
                raise ValueError("all components must run on the same process set")
        self._components: Tuple[Tuple[str, DistributedAlgorithm], ...] = tuple(components)
        self._pids = pids

    def process_ids(self) -> Tuple[ProcessId, ...]:
        return self._pids

    def initial_state(self, pid: ProcessId) -> Dict[str, Any]:
        state: Dict[str, Any] = {}
        for name, algo in self._components:
            for var, value in algo.initial_state(pid).items():
                state[f"{name}.{var}"] = value
        return state

    def arbitrary_state(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        state: Dict[str, Any] = {}
        for name, algo in self._components:
            for var, value in algo.arbitrary_state(pid, rng).items():
                state[f"{name}.{var}"] = value
        return state

    def actions(self, pid: ProcessId) -> Sequence[Action]:
        actions: List[Action] = []
        for name, algo in self._components:
            prefix = f"{name}."
            for action in algo.actions(pid):
                actions.append(namespaced_action(action, prefix))
        return actions

    def component(self, name: str) -> DistributedAlgorithm:
        for comp_name, algo in self._components:
            if comp_name == name:
                return algo
        raise KeyError(name)
