"""Batched lockstep execution: many seeds of one scenario over shared arrays.

The third engine.  Where ``dense`` and ``incremental`` execute one computation
at a time, the batched engine executes ``runs`` independent computations
("lanes") of the *same* scenario in lockstep: per-process variables live in
numpy arrays of shape ``(runs, n)``, guard evaluation is one vectorized sweep
across all lanes (see :mod:`repro.core.batched_program`), and only the
per-lane parts that are inherently sequential — daemon RNG streams, statement
execution of the selected processes, listeners — run as ordinary Python.

The lane contract
-----------------

Lane ``i`` reproduces, step for step, the exact run a solo
:class:`~repro.kernel.scheduler.Scheduler` would produce with lane ``i``'s
seed-derived inputs (initial configuration, daemon, fault injector):

* identical :class:`~repro.kernel.trace.StepRecord` streams — ``selected``,
  ``executed``, ``enabled_before``, ``neutralized``, ``round_index`` and the
  :class:`~repro.kernel.trace.StepDelta` writer sets stamped with the lane's
  own configuration epoch;
* identical final configurations, step/round counts and stop reasons;
* identical listener observations (the streaming metrics / spec monitors
  attached per lane see the same ``(configuration, record)`` stream).

This holds because statements are never re-implemented: the *real*
:class:`~repro.kernel.algorithm.Action` objects execute against the real
:class:`~repro.kernel.algorithm.ActionContext`, reading the pre-step arrays
through a lane view that decodes them back to canonical Python values.  Only
guard evaluation is transcribed to array form, and the differential harness
byte-compares the resulting enabled sets and action choices against the
``dense`` oracle.

Lockstep + lane independence
----------------------------

All active lanes share the global step index (a lane's ``step_index`` always
equals the number of steps it committed), so per-step campaign schedules
(fault bursts every ``k`` steps) fire at the same step in batched and solo
runs.  Lanes never read each other's rows; a lane that terminates or is
stopped by a listener simply drops out of the lockstep while the rest
continue.  Permuting lanes or splitting a batch therefore never changes any
lane's results — the lane-independence property the property-based tests
assert.

The dirty-matrix protocol
-------------------------

The per-variable dirty protocol of the incremental engine becomes a boolean
*dirty matrix* of shape ``(runs, n_vars)`` on
:class:`BatchedConfiguration`.  The guard sweep computed after step ``k``'s
writes is cached and reused as step ``k+1``'s pre-step sweep — valid because
between the two only the environment advances, and the environment-dependent
guard factors (``RequestIn``/``RequestOut``) are folded in fresh each time.
Anything that mutates the arrays *outside* the step loop (mid-run fault
injection re-encoding a corrupted lane) marks dirty bits, which force a full
re-sweep before the next step, mirroring
:meth:`~repro.kernel.scheduler.Scheduler.set_configuration` invalidating the
incremental engine's cache.  Net effect: one full vectorized sweep per step
instead of the dense engine's two.

numpy is an optional extra (``pip install 'repro-cc[batched]'``): this module
imports without it, and :func:`require_numpy` raises
:class:`BatchedUnsupported` with the extra's name when the arrays are
actually needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.kernel.configuration import Configuration, ProcessId
from repro.kernel.daemon import Daemon
from repro.kernel.scheduler import StopRun
from repro.kernel.trace import StepDelta, StepRecord, Trace

try:  # pragma: no cover - exercised only in numpy-less environments
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Engine name (accepted by the campaign matrix / CLI, not by the solo
#: :class:`~repro.kernel.scheduler.Scheduler`, whose unit of work is one run).
BATCHED_ENGINE = "batched"

#: Hint shown whenever the batched engine is requested without numpy.
NUMPY_HINT = (
    "the batched engine requires numpy, which is an optional extra: "
    "pip install 'repro-cc[batched]'"
)


class BatchedUnsupported(RuntimeError):
    """The batched engine cannot run this scenario (caller should fall back).

    Raised at compile time for scenarios outside the vectorized guard
    tables' coverage (unknown algorithm subclasses, order-sensitive
    environments, malformed domains) and when numpy is missing.  The
    campaign layer catches it and falls back to per-lane solo runs, which
    produce identical rows by the lane contract.
    """


def numpy_available() -> bool:
    """``True`` iff numpy is importable (the ``repro-cc[batched]`` extra)."""
    return _np is not None


def require_numpy() -> Any:
    """Return the numpy module or raise :class:`BatchedUnsupported` with the hint."""
    if _np is None:
        raise BatchedUnsupported(NUMPY_HINT)
    return _np


class BatchedConfiguration:
    """Array-of-lanes state: variable arrays plus the dirty matrix.

    ``arrays`` maps each compiled variable slot (e.g. ``"S"``, ``"P"``,
    ``"C"``) to an array of shape ``(runs, n)``; ``dirty`` is the boolean
    dirty matrix of shape ``(runs, n_vars)`` described in the module
    docstring; ``env`` is the scenario's vectorized environment state (owned
    by the compiled program).  Instances are produced by
    ``BatchedProgram.encode`` — the kernel only reads/flags them.
    """

    __slots__ = ("runs", "arrays", "dirty", "var_index", "env")

    def __init__(
        self,
        runs: int,
        arrays: Dict[str, Any],
        var_index: Mapping[str, int],
        env: Any,
    ) -> None:
        np = require_numpy()
        self.runs = runs
        self.arrays = arrays
        self.var_index = dict(var_index)
        self.dirty = np.ones((runs, len(self.var_index)), dtype=bool)
        self.env = env

    def mark_dirty(self, lane: int, variable: str) -> None:
        self.dirty[lane, self.var_index[variable]] = True

    def mark_lane_dirty(self, lane: int) -> None:
        self.dirty[lane, :] = True

    def any_dirty(self) -> bool:
        return bool(self.dirty.any())

    def clear_dirty(self) -> None:
        self.dirty[:, :] = False


@dataclass
class LaneResult:
    """Outcome of one lane: the per-lane mirror of ``SchedulerResult``."""

    lane: int
    steps: int
    rounds: int
    terminated: bool
    stop_reason: str
    #: Per-lane sparse trace (``None`` in raw mode).
    trace: Optional[Trace] = None
    #: Final configuration (``None`` in raw mode; decode on demand).
    configuration: Optional[Configuration] = None
    #: The lane's configuration epoch at the end of the run (faults bump it).
    epoch: int = 0


class _LaneSchedulerProxy:
    """Duck-typed stand-in for a Scheduler handed to ``FaultInjector.corrupt_scheduler``.

    Exposes exactly the two members the injector touches: ``configuration``
    and ``set_configuration``.  The setter routes the corrupted configuration
    back into the batch (re-encode the lane row, bump the lane epoch, mark
    the dirty matrix), mirroring what
    :meth:`~repro.kernel.scheduler.Scheduler.set_configuration` does to the
    solo engines.
    """

    __slots__ = ("_scheduler", "_lane")

    def __init__(self, scheduler: "BatchedScheduler", lane: int) -> None:
        self._scheduler = scheduler
        self._lane = lane

    @property
    def configuration(self) -> Configuration:
        return self._scheduler._lane_configuration(self._lane)

    def set_configuration(self, configuration: Configuration) -> None:
        self._scheduler._install_configuration(self._lane, configuration)


class BatchedScheduler:
    """Runs many lanes of one compiled scenario in lockstep.

    Parameters
    ----------
    program:
        A compiled scenario (see
        :func:`repro.core.batched_program.compile_program`): static topology
        tables, encoders/decoders, and the vectorized guard sweep.
    initial_configurations:
        One starting :class:`~repro.kernel.configuration.Configuration` per
        lane (the solo runs' ``initial_configuration``).
    daemons:
        One :class:`~repro.kernel.daemon.Daemon` per lane (each lane owns its
        seed-derived RNG stream, exactly as the solo run would).
    injectors:
        Optional per-lane fault injectors; with ``fault_every > 0`` each
        lane's injector corrupts it before every ``fault_every``-th step,
        matching the campaign/harness corruption schedule.
    step_listeners:
        Optional per-lane listener sequences (streaming metrics/spec
        monitors).  Requires ``record=True``.
    record:
        ``True`` (default): maintain a per-lane
        :class:`~repro.kernel.configuration.Configuration`, sparse
        :class:`~repro.kernel.trace.Trace` and
        :class:`~repro.kernel.trace.StepRecord` stream — everything the
        campaign rows and the differential harness compare.  ``False`` ("raw
        mode", used by the throughput benchmark): arrays and daemons only.
    """

    def __init__(
        self,
        program: Any,
        initial_configurations: Sequence[Configuration],
        daemons: Sequence[Daemon],
        injectors: Optional[Sequence[Optional[Any]]] = None,
        fault_every: int = 0,
        step_listeners: Optional[Sequence[Optional[Sequence[Any]]]] = None,
        record: bool = True,
    ) -> None:
        require_numpy()
        runs = len(initial_configurations)
        if runs == 0:
            raise ValueError("need at least one lane")
        if len(daemons) != runs:
            raise ValueError("one daemon per lane required")
        if injectors is not None and len(injectors) != runs:
            raise ValueError("one injector entry per lane required")
        if step_listeners is not None:
            if not record:
                raise ValueError("step listeners require record=True")
            if len(step_listeners) != runs:
                raise ValueError("one listener sequence per lane required")
        self.program = program
        self.runs = runs
        self.record = record
        self._daemons = list(daemons)
        self._injectors = list(injectors) if injectors is not None else [None] * runs
        self._fault_every = int(fault_every)
        self._listeners: List[List[Any]] = [
            list(step_listeners[lane] or ()) if step_listeners is not None else []
            for lane in range(runs)
        ]
        for daemon in self._daemons:
            daemon.reset()
        self.state = program.encode(initial_configurations)
        self._epochs = [0] * runs
        self._round_index = [0] * runs
        self._round_pending: List[Optional[Set[ProcessId]]] = [None] * runs
        self._steps = [0] * runs
        self._stop_reason: List[Optional[str]] = [None] * runs
        self._terminated = [False] * runs
        self._active = list(range(runs))
        self._configurations: List[Optional[Configuration]] = (
            list(initial_configurations) if record else [None] * runs
        )
        self._traces: List[Optional[Trace]] = [
            Trace(initial_configurations[lane]) if record else None
            for lane in range(runs)
        ]
        self._bundle: Optional[Any] = None
        # Construction-time environment/listener protocol, replicated from
        # Scheduler.__init__: the environment observes the initial
        # configuration (done counters see initial DONE statuses, bursty
        # phase clocks start), then every listener is fed (initial, None).
        program.env_observe(self.state, -1)
        for lane in range(runs):
            for listener in self._listeners[lane]:
                listener(self._configurations[lane], None)

    # ------------------------------------------------------------------ #
    # lane plumbing
    # ------------------------------------------------------------------ #
    def _lane_configuration(self, lane: int) -> Configuration:
        conf = self._configurations[lane]
        if conf is None:
            conf = self.program.decode_lane(self.state, lane)
        return conf

    def _install_configuration(self, lane: int, configuration: Configuration) -> None:
        """External configuration swap for one lane (the fault path).

        Mirrors ``Scheduler.set_configuration``: the lane row is re-encoded,
        the lane's epoch is bumped (so the next step's delta tells observers
        the world was swapped), and the dirty matrix invalidates the cached
        guard sweep.
        """
        self.program.encode_lane(self.state, lane, configuration)
        self._epochs[lane] += 1
        if self.record:
            self._configurations[lane] = configuration

    def _finish_lane(self, lane: int, stop_reason: str, terminated: bool) -> None:
        self._stop_reason[lane] = stop_reason
        self._terminated[lane] = terminated

    def _lane_rounds(self, lane: int) -> int:
        return self._round_index[lane] + (
            0 if self._round_pending[lane] is None else 1
        )

    # ------------------------------------------------------------------ #
    # the lockstep run loop
    # ------------------------------------------------------------------ #
    def run(self, max_steps: int) -> List[LaneResult]:
        """Run every lane to termination, a listener stop, or ``max_steps``."""
        np = require_numpy()
        program = self.program
        state = self.state
        pids = program.pids
        step_index = 0
        while self._active and step_index < max_steps:
            # -- per-lane fault injection (campaign schedule) ------------- #
            if (
                self._fault_every
                and step_index
                and step_index % self._fault_every == 0
            ):
                for lane in self._active:
                    injector = self._injectors[lane]
                    if injector is not None:
                        injector.corrupt_scheduler(_LaneSchedulerProxy(self, lane))
            # -- pre-step enabled sweep (cached unless dirty) ------------- #
            if self._bundle is None or state.any_dirty():
                self._bundle = program.sweep(state)
                state.clear_dirty()
            priority = program.fold(self._bundle, state)
            # -- phase 1: per-lane selection + execution ------------------ #
            still_active: List[int] = []
            stepped: List[Tuple[int, Tuple[ProcessId, ...], Any, Dict[ProcessId, Dict[str, Any]], Dict[ProcessId, str]]] = []
            for lane in self._active:
                cols = np.nonzero(priority[lane] >= 0)[0]
                if cols.size == 0:
                    self._finish_lane(lane, "terminal", True)
                    continue
                enabled_ids = tuple(pids[c] for c in cols)
                if self._round_pending[lane] is None:
                    self._round_pending[lane] = set(enabled_ids)
                daemon = self._daemons[lane]
                selected = daemon.select(
                    enabled_ids,
                    self._configurations[lane] if self.record else None,
                    step_index,
                )
                enabled_set = set(enabled_ids)
                selected = frozenset(p for p in selected if p in enabled_set)
                if not selected:
                    selected = frozenset({enabled_ids[0]})
                daemon.notify_enabled(enabled_ids, selected)
                # Composite atomicity: every selected process reads the
                # pre-step arrays; writes are buffered and encoded only
                # after the whole lane finished executing.
                view = program.lane_view(state, lane)
                lane_env = program.lane_environment(state, lane)
                writes: Dict[ProcessId, Dict[str, Any]] = {}
                executed: Dict[ProcessId, str] = {}
                for pid in sorted(selected):
                    col = program.column_of(pid)
                    action = program.actions_for(pid)[priority[lane, col]]
                    ctx = _lane_context(pid, view, lane_env)
                    action.execute(ctx)
                    writes[pid] = ctx.writes
                    executed[pid] = action.label
                program.encode_writes(state, lane, writes)
                stepped.append((lane, enabled_ids, selected, writes, executed))
                still_active.append(lane)
            self._active = still_active
            if not stepped:
                break
            # -- phase 2: post-step sweep (becomes next step's cache) ----- #
            # The environment has not observed the new configuration yet, so
            # this fold sees the same request predicates the pre-step sweep
            # did — exactly the solo scheduler's neutralization semantics.
            self._bundle = program.sweep(state)
            state.clear_dirty()
            after = program.fold(self._bundle, state)
            # -- phase 3: per-lane commit (records, rounds, traces) ------- #
            committed: List[Tuple[int, StepRecord, Optional[Configuration]]] = []
            for lane, enabled_ids, selected, writes, executed in stepped:
                enabled_after = {
                    pids[c] for c in np.nonzero(after[lane] >= 0)[0]
                }
                neutralized = frozenset(
                    pid
                    for pid in enabled_ids
                    if pid not in selected and pid not in enabled_after
                )
                record = StepRecord(
                    index=step_index,
                    selected=frozenset(selected),
                    executed=executed,
                    enabled_before=frozenset(enabled_ids),
                    neutralized=neutralized,
                    round_index=self._round_index[lane],
                    delta=StepDelta(
                        writes={
                            pid: tuple(sorted(written))
                            for pid, written in writes.items()
                            if written
                        },
                        epoch=self._epochs[lane],
                    ),
                )
                pending = self._round_pending[lane]
                assert pending is not None
                pending -= set(selected)
                pending -= set(neutralized)
                pending &= enabled_after | set(selected)
                if not pending:
                    self._round_index[lane] += 1
                    self._round_pending[lane] = None
                new_configuration: Optional[Configuration] = None
                if self.record:
                    old = self._configurations[lane]
                    assert old is not None
                    new_configuration = old.updated(writes)
                    self._configurations[lane] = new_configuration
                    trace = self._traces[lane]
                    assert trace is not None
                    trace.append_sparse(new_configuration, record)
                self._steps[lane] += 1
                committed.append((lane, record, new_configuration))
            # -- phase 4: environment observes the new configurations ----- #
            program.env_observe(state, step_index)
            # -- phase 5: per-lane listeners (StopRun capture) ------------ #
            for lane, record, new_configuration in committed:
                stop: Optional[StopRun] = None
                for listener in self._listeners[lane]:
                    try:
                        listener(new_configuration, record)
                    except StopRun as exc:
                        if stop is None:
                            stop = exc
                if stop is not None:
                    self._finish_lane(lane, stop.reason, False)
                    self._active = [l for l in self._active if l != lane]
            step_index += 1
        results: List[LaneResult] = []
        for lane in range(self.runs):
            reason = self._stop_reason[lane] or "max_steps"
            results.append(
                LaneResult(
                    lane=lane,
                    steps=self._steps[lane],
                    rounds=self._lane_rounds(lane),
                    terminated=self._terminated[lane],
                    stop_reason=reason,
                    trace=self._traces[lane],
                    configuration=self._configurations[lane],
                    epoch=self._epochs[lane],
                )
            )
        return results


def _lane_context(pid: ProcessId, view: Any, environment: Any) -> Any:
    """A real :class:`~repro.kernel.algorithm.ActionContext` over a lane view.

    The context's ``configuration`` slot holds the lane view (same ``.get``
    protocol as a :class:`~repro.kernel.configuration.Configuration`), so the
    unmodified guard/statement closures read decoded canonical values from
    the pre-step arrays.
    """
    from repro.kernel.algorithm import ActionContext

    return ActionContext(pid, view, environment)
