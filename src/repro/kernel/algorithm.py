"""Guarded-action local algorithms and their evaluation context.

A local algorithm (Section 2.2) is a finite **ordered** list of guarded
actions::

    <label> :: <guard>  |->  <statement>

The guard of an action of process ``p`` is a Boolean expression over the
variables of ``p`` and of its neighbours; the statement updates a subset of
``p``'s own variables.  The order of the list encodes priority: *an action A
has higher priority than B iff A appears after B in the code* (this is the
convention the paper uses -- the stabilization actions appear last and are
the "priority actions").  When a selected process has several enabled
actions, it executes its highest-priority enabled one.

Algorithms also receive *inputs* from the environment: the committee
coordination algorithms read the predicates ``RequestIn(p)`` and
``RequestOut(p)`` which model the professor's autonomous decisions.  The
environment is exposed to guards and statements through the
:class:`ActionContext`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.kernel.configuration import Configuration, ProcessId


class Environment:
    """External inputs to an algorithm (professor requests, clocks, ...).

    The default environment answers ``False`` to every request predicate; the
    request models in :mod:`repro.workloads.request_models` override these
    hooks.  ``observe`` is called by the scheduler once per step *after* the
    step has been applied so that stateful environments (e.g. meeting-length
    counters) can advance.
    """

    #: ``True`` iff evaluating the request predicates is free of side effects
    #: (no RNG draws, no state mutation), so that evaluating a guard more or
    #: fewer times cannot change the run.  The incremental scheduler engine
    #: skips guard evaluations and therefore refuses environments that set
    #: this to ``False`` when asked for explicitly; the default
    #: ``engine=None``/``"auto"`` falls back to the dense engine instead.
    #: Every environment in this library keeps it ``True`` — draw randomness
    #: in :meth:`observe` (as ``ProbabilisticRequestEnvironment`` does) or in
    #: ``reset``, never inside ``request_in``/``request_out``.
    deterministic_guards: bool = True

    def request_in(self, pid: ProcessId, configuration: Configuration) -> bool:
        """The ``RequestIn(p)`` predicate: does professor ``pid`` want to meet?"""
        return False

    def request_out(self, pid: ProcessId, configuration: Configuration) -> bool:
        """The ``RequestOut(p)`` predicate: does professor ``pid`` want to leave?"""
        return False

    def observe(self, configuration: Configuration, step_index: int) -> None:
        """Hook invoked after every step with the new configuration."""

    def on_essential_discussion(self, pid: ProcessId) -> None:
        """Hook invoked when professor ``pid`` performs its essential discussion."""

    def reset(self) -> None:
        """Reset any internal state (called when a scheduler is rebuilt)."""


class ActionContext:
    """Read/write interface handed to guards and statements.

    Reads are served from the *pre-step* snapshot (composite atomicity:
    every process selected in a step evaluates its guard and computes its
    writes against the same configuration ``γ``).  Writes are buffered and
    applied by the scheduler when building ``γ'``.

    The atomic-state model only allows a process to read its neighbours'
    variables; the context does not mechanically enforce this (the token
    circulation substrate legitimately reads its virtual-ring predecessor,
    a documented substitution), but every committee coordination algorithm
    restricts itself to hypergraph neighbours.
    """

    __slots__ = ("pid", "configuration", "environment", "_writes", "_released_token")

    def __init__(
        self,
        pid: ProcessId,
        configuration: Configuration,
        environment: Environment,
    ) -> None:
        self.pid = pid
        self.configuration = configuration
        self.environment = environment
        self._writes: Dict[str, Any] = {}
        self._released_token = False

    # -- reads ---------------------------------------------------------- #
    def read(self, pid: ProcessId, variable: str, default: Any = None) -> Any:
        """Read ``variable`` of process ``pid`` from the pre-step snapshot."""
        return self.configuration.get(pid, variable, default)

    def own(self, variable: str, default: Any = None) -> Any:
        """Read one of the executing process's own variables."""
        return self.configuration.get(self.pid, variable, default)

    def request_in(self) -> bool:
        return self.environment.request_in(self.pid, self.configuration)

    def request_out(self) -> bool:
        return self.environment.request_out(self.pid, self.configuration)

    # -- writes --------------------------------------------------------- #
    def write(self, variable: str, value: Any) -> None:
        """Buffer a write to one of the executing process's own variables."""
        self._writes[variable] = value

    @property
    def writes(self) -> Dict[str, Any]:
        return dict(self._writes)

    def mark_token_released(self) -> None:
        """Record that the statement invoked ``ReleaseToken_p`` (for tracing)."""
        self._released_token = True

    @property
    def released_token(self) -> bool:
        return self._released_token


Guard = Callable[[ActionContext], bool]
Statement = Callable[[ActionContext], None]

#: The value type of :meth:`DistributedAlgorithm.read_dependency_variables`:
#: ``source process -> variables read`` (``None`` = any variable).
ReadDependencyVariables = Mapping[ProcessId, Optional[Tuple[str, ...]]]


def merge_read_dependency_variables(
    *specs: ReadDependencyVariables,
) -> Dict[ProcessId, Optional[Tuple[str, ...]]]:
    """Union several variable-granular dependency maps.

    Used by composed algorithms (CC layer + token module, election + token
    circulation) whose guards read different variables of possibly the same
    source processes.  A ``None`` entry ("any variable") absorbs explicit
    variable tuples for that source.
    """
    merged: Dict[ProcessId, Optional[set]] = {}
    for spec in specs:
        for source, variables in spec.items():
            if variables is None:
                merged[source] = None
                continue
            current = merged.get(source, set())
            if current is None:
                continue  # already "any variable"
            merged[source] = set(current) | set(variables)
    return {
        source: (None if variables is None else tuple(sorted(variables)))
        for source, variables in merged.items()
    }


@dataclass(frozen=True)
class Action:
    """One guarded action ``label :: guard |-> statement`` of a local algorithm."""

    label: str
    guard: Guard
    statement: Statement

    def enabled(self, ctx: ActionContext) -> bool:
        return bool(self.guard(ctx))

    def execute(self, ctx: ActionContext) -> None:
        self.statement(ctx)


class DistributedAlgorithm(abc.ABC):
    """A distributed algorithm: one local algorithm per process.

    Subclasses describe

    * the set of processes (:meth:`process_ids`),
    * each process's variables with a legitimate initial value
      (:meth:`initial_state`) and, for stabilization experiments, an
      arbitrary value drawn from the variable domains
      (:meth:`arbitrary_state`),
    * the ordered list of guarded actions of each process
      (:meth:`actions`); the list order encodes priority, **later = higher**.
    """

    @abc.abstractmethod
    def process_ids(self) -> Tuple[ProcessId, ...]:
        """All process identifiers (a total order, as the paper assumes)."""

    @abc.abstractmethod
    def initial_state(self, pid: ProcessId) -> Dict[str, Any]:
        """A legitimate ("clean start") variable assignment for ``pid``."""

    @abc.abstractmethod
    def arbitrary_state(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        """A uniformly arbitrary variable assignment for ``pid`` (fault model)."""

    @abc.abstractmethod
    def actions(self, pid: ProcessId) -> Sequence[Action]:
        """Ordered guarded actions of ``pid`` (later in the list = higher priority)."""

    # ------------------------------------------------------------------ #
    # conveniences shared by all algorithms
    # ------------------------------------------------------------------ #
    def initial_configuration(self) -> Configuration:
        """The all-legitimate starting configuration."""
        return Configuration({pid: self.initial_state(pid) for pid in self.process_ids()})

    def arbitrary_configuration(self, rng: Any) -> Configuration:
        """A configuration with every variable drawn arbitrarily (transient faults)."""
        return Configuration({pid: self.arbitrary_state(pid, rng) for pid in self.process_ids()})

    def enabled_action(
        self, pid: ProcessId, configuration: Configuration, environment: Environment
    ) -> Optional[Action]:
        """The highest-priority enabled action of ``pid`` in ``configuration``.

        Returns ``None`` when ``pid`` is disabled.  Priority follows the
        paper's convention: the action appearing *last* in :meth:`actions`
        wins.
        """
        ctx = ActionContext(pid, configuration, environment)
        chosen: Optional[Action] = None
        for action in self.actions(pid):
            if action.enabled(ctx):
                chosen = action
        return chosen

    def enabled_processes(
        self, configuration: Configuration, environment: Environment
    ) -> Dict[ProcessId, Action]:
        """``Enabled(γ)`` with, for each enabled process, its priority action."""
        enabled: Dict[ProcessId, Action] = {}
        for pid in self.process_ids():
            action = self.enabled_action(pid, configuration, environment)
            if action is not None:
                enabled[pid] = action
        return enabled

    def variable_names(self) -> Tuple[str, ...]:
        """Names of the variables of the first process (assumed uniform)."""
        first = self.process_ids()[0]
        return tuple(sorted(self.initial_state(first)))

    # ------------------------------------------------------------------ #
    # dirty-set protocol (incremental scheduler engine)
    # ------------------------------------------------------------------ #
    def read_dependencies(self, pid: ProcessId) -> Tuple[ProcessId, ...]:
        """Processes whose *variables* the guards of ``pid`` may read.

        This is the process-granular half of the dirty-set protocol: the
        incremental scheduler engine re-evaluates the guards of ``pid`` after
        a step only if some process in this set wrote a variable.  The
        default is maximally conservative (every process), which makes the
        incremental engine correct for any algorithm at the cost of
        re-evaluating everything; algorithms with local guards (the committee
        coordination layer reads its ``G_H`` neighbourhood plus its token
        link, the ring modules read their ring predecessor) override this to
        unlock the speed-up.  ``pid`` itself is always treated as a
        dependency by the scheduler, whether or not it appears here.

        For *variable*-granular invalidation — re-evaluate ``pid`` only when
        specific variables of a source process change — override
        :meth:`read_dependency_variables` instead; its default delegates to
        this method.
        """
        return self.process_ids()

    def read_dependency_variables(
        self, pid: ProcessId
    ) -> Mapping[ProcessId, Optional[Tuple[str, ...]]]:
        """Variable-granular read dependencies of the guards of ``pid``.

        Returns a mapping ``source process -> variable names read`` where
        ``None`` means "any variable of that source" (process-granular).  The
        incremental scheduler engine inverts this map at construction: after
        a step it re-evaluates ``pid`` iff some step writer wrote a variable
        ``pid`` declares here (matching against the step's
        :class:`~repro.kernel.trace.StepDelta`).  This is strictly finer than
        :meth:`read_dependencies` — e.g. the committee coordination layer
        reads only ``S``/``P``/``T``(/``L``) of its hypergraph neighbours,
        so a neighbour updating its token-module counter no longer dirties
        the whole neighbourhood, only the counter's ring successor.

        The default delegates to :meth:`read_dependencies` with ``None``
        variables (process granularity), so algorithms that only declare the
        coarse form keep working unchanged.  ``pid`` itself is always treated
        as a full dependency by the scheduler regardless of what this
        returns.
        """
        return {source: None for source in self.read_dependencies(pid)}

    #: Variables of a process whose value determines whether that process is
    #: environment-sensitive, or ``None`` when membership cannot be tracked
    #: variable-wise.  When a tuple is declared, the incremental scheduler
    #: engine maintains the environment-sensitive set *incrementally*: it
    #: scans :meth:`environment_sensitive_processes` once (at construction
    #: and after every external configuration swap) and thereafter updates
    #: membership only for step writers that wrote one of these variables,
    #: asking :meth:`environment_sensitive` — so the between-steps refresh
    #: costs O(|sensitive|) instead of an O(n) status scan per step.  An
    #: empty tuple means membership never changes with any write (algorithms
    #: whose guards never consult the environment).  ``None`` (the default)
    #: keeps the historical behaviour: a fresh
    #: :meth:`environment_sensitive_processes` scan every step.
    environment_sensitive_variables: Optional[Tuple[str, ...]] = None

    def environment_sensitive(
        self, pid: ProcessId, configuration: Configuration
    ) -> bool:
        """Is ``pid`` environment-sensitive in ``configuration``?

        Consulted by the incremental engine's status index (see
        :attr:`environment_sensitive_variables`) for processes that wrote one
        of the declared variables.  Must agree pointwise with
        :meth:`environment_sensitive_processes`; the default delegates to it
        (correct but O(n) — algorithms that declare the variables override
        this with an O(1) predicate, e.g. a status check).
        """
        return pid in self.environment_sensitive_processes(configuration)

    def environment_sensitive_processes(
        self, configuration: Configuration
    ) -> Tuple[ProcessId, ...]:
        """Processes whose enabledness may change with the *environment* alone.

        Between two steps the configuration is frozen but the environment
        advances (``observe`` runs after every step), so guards that read
        ``RequestIn`` / ``RequestOut`` can flip without any process writing.
        The incremental engine re-evaluates exactly these processes when it
        reuses the previous step's post-step enabled map.  The default is
        conservative (every process — the reuse then degenerates to a full
        sweep); algorithms whose guards never consult the environment return
        ``()``, and the committee coordination layer returns the processes
        whose status makes a request predicate relevant (``idle``/``done``).

        This is the *full-scan* form; with
        :attr:`environment_sensitive_variables` declared the engine calls it
        only at construction and after external configuration swaps, and
        keeps the set current from step deltas in between.
        """
        return self.process_ids()
