"""Configurations: instantaneous snapshots of every process's variables.

A configuration ``γ`` assigns a value to every variable of every process
(Section 2.2).  Configurations are immutable; the scheduler produces a new
configuration per step, and traces, spec checkers and fault injectors all
operate on these snapshots.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Tuple

ProcessId = int
ProcessState = Mapping[str, Any]


class Configuration:
    """An immutable snapshot ``γ`` of the state of all processes.

    The constructor deep-copies one level: the per-process mapping is copied
    so that later mutation of the source dictionaries cannot alter the
    snapshot.  Variable *values* are expected to be immutable (statuses,
    integers, booleans, :class:`~repro.hypergraph.hypergraph.Hyperedge`,
    ``None``), which every algorithm in this library respects.

    Derivation through :meth:`updated` is copy-on-write: the per-process
    dictionaries of processes that did not move are *shared* between the
    parent and the derived configuration (never mutated afterwards — nothing
    in this class writes into ``_states`` after construction, and every
    accessor that hands state out returns a copy), so the cost of a step is
    proportional to the number of written variables, not to ``n``.
    """

    __slots__ = ("_states",)

    def __init__(
        self,
        states: Mapping[ProcessId, ProcessState],
        *,
        _shared: bool = False,
    ) -> None:
        # ``_shared`` is an internal fast path used by :meth:`updated`: the
        # caller guarantees that ``states`` is a fresh top-level dict whose
        # per-process dicts are private to Configuration instances, so the
        # defensive re-copy can be skipped.
        if _shared:
            self._states: Dict[ProcessId, Dict[str, Any]] = states  # type: ignore[assignment]
        else:
            self._states = {pid: dict(variables) for pid, variables in states.items()}

    # ------------------------------------------------------------------ #
    # read access
    # ------------------------------------------------------------------ #
    def processes(self) -> Tuple[ProcessId, ...]:
        return tuple(sorted(self._states))

    def state_of(self, pid: ProcessId) -> Dict[str, Any]:
        """A copy of the full variable map of ``pid``."""
        return dict(self._states[pid])

    def get(self, pid: ProcessId, variable: str, default: Any = None) -> Any:
        return self._states[pid].get(variable, default)

    def states_view(self) -> Mapping[ProcessId, ProcessState]:
        """Zero-copy read access to the underlying per-process mappings.

        The returned mapping (and the per-process mappings inside it) MUST
        NOT be mutated — they are the configuration's internal state, shared
        copy-on-write with derived configurations.  This accessor exists for
        per-step observers (streaming metrics/spec monitors) whose inner
        loops would otherwise pay one :meth:`get` call per variable read.
        """
        return self._states

    def __getitem__(self, key: Tuple[ProcessId, str]) -> Any:
        pid, variable = key
        return self._states[pid][variable]

    def __contains__(self, pid: object) -> bool:
        return pid in self._states

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(sorted(self._states))

    def __len__(self) -> int:
        return len(self._states)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._states == other._states

    def __hash__(self) -> int:
        return hash(
            tuple(
                (pid, tuple(sorted(vars_.items(), key=lambda kv: kv[0])))
                for pid, vars_ in sorted(self._states.items())
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Configuration({len(self._states)} processes)"

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def updated(self, writes: Mapping[ProcessId, Mapping[str, Any]]) -> "Configuration":
        """A new configuration with ``writes`` applied on top of this one.

        ``writes`` maps each moving process to the variables it wrote; all
        other variables (and all other processes) are carried over untouched.
        Copy-on-write: only the per-process dicts of writing processes are
        copied — everyone else's state dict is shared with ``self``.
        """
        merged: Dict[ProcessId, Dict[str, Any]] = dict(self._states)
        for pid, new_vars in writes.items():
            if pid in merged:
                if not new_vars:
                    continue  # executed but wrote nothing: keep sharing
                fresh = dict(merged[pid])
                fresh.update(new_vars)
            else:
                fresh = dict(new_vars)
            merged[pid] = fresh
        return Configuration(merged, _shared=True)

    def restrict(self, variables: Tuple[str, ...]) -> "Configuration":
        """Project the configuration onto a subset of variable names."""
        return Configuration(
            {
                pid: {k: v for k, v in vars_.items() if k in variables}
                for pid, vars_ in self._states.items()
            }
        )

    def to_dict(self) -> Dict[ProcessId, Dict[str, Any]]:
        """A mutable copy of the underlying mapping (for fault injection)."""
        return {pid: dict(vars_) for pid, vars_ in self._states.items()}
