"""Locally-shared-memory (atomic-state) distributed computing substrate.

This subpackage implements the computational model of Section 2.2 of the
paper:

* processes communicate through *locally shared variables*: a process can
  read its own variables and those of its neighbours, and write only its own;
* the local algorithm of a process is a finite ordered list of guarded
  actions; later actions in the list have *higher* priority;
* at each step a *daemon* selects a non-empty subset of the enabled
  processes, and every selected process atomically executes its
  highest-priority enabled action against the pre-step configuration
  (composite atomicity);
* time is measured in *rounds* (Dolev-Israeli-Moran): the first round of a
  computation is the minimal prefix in which every process enabled in the
  initial configuration has been activated or neutralized.

The kernel is algorithm-agnostic; the committee coordination algorithms, the
token circulation substrate and the baselines are all expressed as
:class:`~repro.kernel.algorithm.DistributedAlgorithm` instances executed by
:class:`~repro.kernel.scheduler.Scheduler`.
"""

from repro.kernel.algorithm import Action, ActionContext, DistributedAlgorithm, Environment
from repro.kernel.configuration import Configuration
from repro.kernel.daemon import (
    AdversarialDaemon,
    CentralDaemon,
    Daemon,
    DistributedRandomDaemon,
    LocallyCentralDaemon,
    SynchronousDaemon,
    WeaklyFairDaemon,
)
from repro.kernel.faults import FaultInjector, arbitrary_configuration
from repro.kernel.scheduler import Scheduler, SchedulerResult, StepRecord, StopRun
from repro.kernel.trace import StepDelta, Trace

__all__ = [
    "Action",
    "ActionContext",
    "DistributedAlgorithm",
    "Environment",
    "Configuration",
    "Daemon",
    "SynchronousDaemon",
    "CentralDaemon",
    "LocallyCentralDaemon",
    "DistributedRandomDaemon",
    "WeaklyFairDaemon",
    "AdversarialDaemon",
    "FaultInjector",
    "arbitrary_configuration",
    "Scheduler",
    "SchedulerResult",
    "StepDelta",
    "StepRecord",
    "StopRun",
    "Trace",
]
