"""Computation traces.

A computation is a maximal sequence of configurations ``γ0 γ1 ...`` produced
by the scheduler.  The :class:`Trace` stores the configurations together with
per-step metadata (which processes moved, which actions they executed, round
boundaries) and offers the queries the spec checkers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.kernel.configuration import Configuration, ProcessId


@dataclass(frozen=True)
class StepDelta:
    """The writer set of one committed step, stamped with the configuration epoch.

    This is the kernel's *delta protocol*: every step record produced by the
    scheduler carries the exact ``(process, variable)`` writes the step
    applied, so downstream consumers — the incremental engine's dirty-set,
    the streaming spec monitors, streaming metrics — can update their state
    in ``O(|writers|)`` instead of re-scanning all ``n`` processes.

    Attributes
    ----------
    writes:
        Map from each process that wrote at least one variable to the sorted
        tuple of variable names it wrote.  Processes that executed an action
        but wrote nothing are omitted (``γ'`` is identical to ``γ`` for them).
    epoch:
        The scheduler's *configuration epoch* at the time the step committed.
        The epoch starts at 0 and is bumped by every external configuration
        swap (:meth:`~repro.kernel.scheduler.Scheduler.set_configuration`,
        and therefore
        :meth:`~repro.kernel.faults.FaultInjector.corrupt_scheduler`).  An
        observer that caches state derived from earlier configurations must
        compare epochs: *same epoch* ⇒ every variable whose value differs
        between the previously observed configuration and this one appears
        in the delta (entries may additionally include same-value rewrites —
        a statement that writes a variable's current value back is still
        recorded, so treat entries as invalidation candidates, not as proof
        of change); *epoch changed* ⇒ the world was swapped under the
        observer between steps and it must resynchronize from the full
        configuration.
    """

    writes: Mapping[ProcessId, Tuple[str, ...]]
    epoch: int

    @property
    def writers(self) -> Tuple[ProcessId, ...]:
        """The processes that wrote at least one variable, in sorted order."""
        return tuple(sorted(self.writes))

    def wrote(self, pid: ProcessId, *variables: str) -> bool:
        """``True`` iff ``pid`` wrote any of ``variables`` (any variable if empty)."""
        written = self.writes.get(pid)
        if written is None:
            return False
        if not variables:
            return True
        return any(v in written for v in variables)


@dataclass(frozen=True)
class StepRecord:
    """Metadata about one step ``γ_i -> γ_{i+1}``.

    Attributes
    ----------
    index:
        The step number (0 is the step leading from ``γ0`` to ``γ1``).
    selected:
        Processes chosen by the daemon.
    executed:
        Map from each moving process to the label of the action it executed.
    enabled_before:
        Processes enabled in the source configuration.
    neutralized:
        Processes that were enabled before the step, did not move, and are no
        longer enabled after it (the paper's *neutralization*).
    round_index:
        Index of the round this step belongs to (0-based).
    delta:
        The step's :class:`StepDelta` (exact writer set + configuration
        epoch).  Always populated by the scheduler; ``None`` only for
        hand-constructed records (old tests, synthetic traces), in which case
        delta consumers fall back to their full-scan path.
    """

    index: int
    selected: FrozenSet[ProcessId]
    executed: Mapping[ProcessId, str]
    enabled_before: FrozenSet[ProcessId]
    neutralized: FrozenSet[ProcessId]
    round_index: int
    delta: Optional[StepDelta] = None


class Trace:
    """A recorded computation: configurations plus step metadata.

    Recording every configuration keeps spec checking simple and exact; for
    the problem sizes of the paper's figures and of our benchmarks this is
    cheap.  ``record_configurations=False`` in the scheduler produces a
    *sparse* trace that only keeps the first and last configurations plus
    step metadata, which the throughput benchmarks use.

    The sparse contract: step metadata (``steps``, ``rounds``,
    ``action_counts``, ``executions_of``) is always exact, but
    per-configuration queries are not available — ``configurations`` holds
    only the initial configuration, ``pairs``/``variable_series`` degenerate,
    and consumers that need the full configuration sequence (e.g.
    ``waiting_spells``) must check :attr:`is_sparse` and either raise or use
    a streaming collector attached to the scheduler while the run happens.
    """

    def __init__(self, initial: Configuration) -> None:
        self._configurations: List[Configuration] = [initial]
        self._steps: List[StepRecord] = []
        self._sparse_final: Optional[Configuration] = None

    # ------------------------------------------------------------------ #
    # construction (used by the scheduler)
    # ------------------------------------------------------------------ #
    def append(self, configuration: Configuration, step: StepRecord) -> None:
        self._configurations.append(configuration)
        self._steps.append(step)

    def append_sparse(self, configuration: Configuration, step: StepRecord) -> None:
        """Record the step but keep only the latest configuration."""
        self._sparse_final = configuration
        self._steps.append(step)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def initial(self) -> Configuration:
        return self._configurations[0]

    @property
    def final(self) -> Configuration:
        if self._sparse_final is not None:
            return self._sparse_final
        return self._configurations[-1]

    @property
    def is_sparse(self) -> bool:
        """``True`` iff intermediate configurations were dropped while recording."""
        return self._sparse_final is not None

    def require_dense(self, consumer: str) -> None:
        """Raise a clear :class:`ValueError` if this trace is sparse.

        Every consumer that walks the full configuration sequence (the dense
        spec checkers, ``waiting_spells``, ``concurrency_profile``, ...) calls
        this first, so a sparse trace fails loudly instead of silently
        reporting a vacuous verdict computed from the initial configuration
        alone.
        """
        if self.is_sparse:
            raise ValueError(
                f"{consumer} needs a densely recorded trace, but this trace "
                "was recorded with record_configurations=False and only "
                "retains the initial and final configurations; re-run with "
                "record_configurations=True, or attach a streaming monitor "
                "(repro.spec.streaming.StreamingSpecSuite, "
                "repro.metrics.collector.StreamingMetricsCollector, ...) as a "
                "scheduler step_listener while the run happens"
            )

    @property
    def configurations(self) -> Sequence[Configuration]:
        """All recorded configurations (only the initial one when sparse)."""
        return tuple(self._configurations)

    @property
    def steps(self) -> Sequence[StepRecord]:
        return tuple(self._steps)

    @property
    def length(self) -> int:
        """Number of steps in the computation."""
        return len(self._steps)

    @property
    def rounds(self) -> int:
        """Number of completed rounds (per the Dolev-Israeli-Moran definition)."""
        if not self._steps:
            return 0
        return self._steps[-1].round_index + 1

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self._configurations)

    def __len__(self) -> int:
        return len(self._configurations)

    # ------------------------------------------------------------------ #
    # queries used by the spec checkers
    # ------------------------------------------------------------------ #
    def pairs(self) -> Iterator[Tuple[Configuration, Configuration, StepRecord]]:
        """Iterate over ``(γ_i, γ_{i+1}, step_i)`` transitions (dense traces only)."""
        for i, step in enumerate(self._steps):
            if i + 1 < len(self._configurations):
                yield self._configurations[i], self._configurations[i + 1], step

    def executions_of(self, pid: ProcessId) -> List[Tuple[int, str]]:
        """All ``(step_index, action_label)`` executions of process ``pid``."""
        return [
            (step.index, step.executed[pid])
            for step in self._steps
            if pid in step.executed
        ]

    def action_counts(self) -> Dict[str, int]:
        """Histogram of action labels executed over the whole computation."""
        counts: Dict[str, int] = {}
        for step in self._steps:
            for label in step.executed.values():
                counts[label] = counts.get(label, 0) + 1
        return counts

    def variable_series(self, pid: ProcessId, variable: str) -> List[Any]:
        """The successive values of one variable (dense traces only)."""
        return [cfg.get(pid, variable) for cfg in self._configurations]

    def step_of_round(self, round_index: int) -> Optional[int]:
        """Index of the first step belonging to ``round_index`` (None if absent)."""
        for step in self._steps:
            if step.round_index == round_index:
                return step.index
        return None
