"""The execution engine: steps, rounds, termination.

The scheduler repeatedly

1. computes ``Enabled(γ)`` and, for each enabled process, its
   highest-priority enabled action,
2. asks the daemon for a non-empty subset of the enabled processes,
3. lets every selected process execute its priority action *against the
   pre-step configuration* (composite atomicity) and merges the buffered
   writes into the next configuration,
4. updates round bookkeeping: a round completes once every process that was
   enabled at the beginning of the round has been activated or neutralized.

A computation is maximal: the run stops when no process is enabled (terminal
configuration) or when a step/round/predicate bound is hit.

Two execution engines are available (``engine=`` parameter):

``"dense"``
    The reference engine: ``Enabled(γ)`` is recomputed from scratch before
    and after every step.  Byte-for-byte reproducible against historical
    seeds, and correct even for environments whose request predicates have
    evaluation side effects.
``"incremental"``
    The post-step enabled map of step ``k`` is cached and reused as the
    pre-step map of step ``k+1``; after a step only the processes whose
    declared read dependencies intersect the step's writer set are
    re-evaluated — at **variable** granularity via
    :meth:`~repro.kernel.algorithm.DistributedAlgorithm.read_dependency_variables`
    (with
    :meth:`~repro.kernel.algorithm.DistributedAlgorithm.read_dependencies`
    as the process-granular fallback) — and between steps only the
    :meth:`~repro.kernel.algorithm.DistributedAlgorithm.environment_sensitive_processes`
    are refreshed (the environment advances in ``observe`` after the map was
    cached).  When the algorithm declares
    :attr:`~repro.kernel.algorithm.DistributedAlgorithm.environment_sensitive_variables`
    that sensitive set is itself maintained incrementally from the step's
    writer set (a *status index*), so the between-steps refresh no longer
    pays an O(n) status scan per step.  Produces traces identical to the dense engine for any fixed
    seed, provided guard evaluation is side-effect free.  Environments that
    violate this declare ``deterministic_guards = False`` and are rejected
    by the incremental engine at construction time; every environment in
    this library qualifies (``ProbabilisticRequestEnvironment`` memoises its
    random draws in ``observe``, outside guard evaluation).

The **default** is ``engine=None`` (equivalently ``"auto"``): the scheduler
picks ``incremental`` unless the environment declares
``deterministic_guards = False``, in which case it falls back to ``dense``
instead of raising — so third-party environments with side-effecting guards
keep working without naming an engine.

The delta protocol
------------------

Every committed step's :class:`~repro.kernel.trace.StepRecord` carries a
:class:`~repro.kernel.trace.StepDelta`: the exact ``(process, variable)``
writes the step applied, stamped with the scheduler's *configuration epoch*
(:attr:`Scheduler.epoch`).  The epoch starts at 0 and is bumped by every
external configuration swap — :meth:`Scheduler.set_configuration`, and hence
:meth:`~repro.kernel.faults.FaultInjector.corrupt_scheduler`.  Observers that
maintain incremental state over the configuration stream (the streaming spec
monitors, streaming metrics) apply the delta in ``O(|writers|)`` per step
while the epoch is unchanged, and resynchronize from the full configuration
when it changes ("the world was swapped under me").  The incremental engine's
own enabled-map cache is invalidated through the same
:meth:`Scheduler.set_configuration` path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.kernel.algorithm import ActionContext, DistributedAlgorithm, Environment
from repro.kernel.configuration import Configuration, ProcessId
from repro.kernel.daemon import Daemon, default_daemon
from repro.kernel.trace import StepDelta, StepRecord, Trace

#: Concrete execution engines (the ``engine`` parameter also accepts ``None``
#: or ``"auto"``, which resolve to ``incremental`` unless the environment
#: declares ``deterministic_guards = False``).
ENGINES = ("dense", "incremental")

#: Signature of a scheduler observer (see ``Scheduler`` ``step_listener``).
StepListener = Callable[[Configuration, Optional[StepRecord]], None]


class StopRun(Exception):
    """Raised by a step listener to halt the run after the current step.

    The scheduler's observer protocol is deliberately dumb: listeners are
    called after every committed step and normally just accumulate state
    (metrics, spec monitors).  A listener that wants to *stop* the run — e.g.
    a streaming property monitor in ``stop_on_violation`` mode — raises
    :class:`StopRun`; :meth:`Scheduler.run` catches it and returns a
    :class:`SchedulerResult` whose ``stop_reason`` is the exception's
    ``reason``.  The step that triggered the stop is fully committed (trace,
    round bookkeeping, environment observation), so the run can be resumed or
    inspected at the exact offending step.
    """

    def __init__(self, reason: str = "listener_stop", message: str = "") -> None:
        super().__init__(message or reason)
        self.reason = reason


@dataclass
class SchedulerResult:
    """Outcome of a run: the trace plus summary counters."""

    trace: Trace
    steps: int
    rounds: int
    terminated: bool
    stop_reason: str

    @property
    def final(self) -> Configuration:
        return self.trace.final


class Scheduler:
    """Executes a :class:`DistributedAlgorithm` under a daemon.

    Parameters
    ----------
    algorithm:
        The distributed algorithm to run.
    environment:
        External inputs (request predicates).  Defaults to the inert
        :class:`~repro.kernel.algorithm.Environment`.
    daemon:
        Scheduling adversary.  Defaults to a distributed randomized daemon
        with enforced weak fairness (the paper's assumption).
    initial_configuration:
        Starting configuration; defaults to the algorithm's legitimate
        initial configuration.  Pass an arbitrary configuration (see
        :mod:`repro.kernel.faults`) for stabilization experiments.
    record_configurations:
        If ``False``, only the initial and current configurations are kept
        (step metadata is always recorded); use for long throughput runs.
        Such *sparse* traces cannot answer per-configuration queries
        (``pairs``, ``variable_series``, ``waiting_spells`` — they raise or
        degenerate); attach a streaming consumer via ``step_listener`` (e.g.
        :class:`~repro.metrics.collector.StreamingMetricsCollector`) to
        compute trace metrics online instead.
    engine:
        ``"dense"``, ``"incremental"``, or ``None``/``"auto"`` (the default):
        pick ``incremental`` unless the environment declares
        ``deterministic_guards = False``, then fall back to ``dense``.  See
        the module docstring.
    step_listener:
        Optional observer — a callable or a sequence of callables — invoked
        as ``listener(configuration, record)``: once at construction with the
        initial configuration and ``record=None``, then after every step with
        the new configuration and its :class:`StepRecord` (whose ``delta``
        carries the step's exact writer set and the configuration epoch).
        This is the observer protocol shared by
        :class:`~repro.metrics.collector.StreamingMetricsCollector` and the
        streaming spec monitors
        (:class:`~repro.spec.streaming.StreamingSpecSuite`); any number of
        observers can ride along one run.  A listener may raise
        :class:`StopRun` to halt the run after the current step.
    """

    def __init__(
        self,
        algorithm: DistributedAlgorithm,
        environment: Optional[Environment] = None,
        daemon: Optional[Daemon] = None,
        initial_configuration: Optional[Configuration] = None,
        record_configurations: bool = True,
        engine: Optional[str] = None,
        step_listener: Optional[Union[StepListener, Sequence[StepListener]]] = None,
    ) -> None:
        self.algorithm = algorithm
        self.environment = environment if environment is not None else Environment()
        if engine is None or engine == "auto":
            engine = (
                "incremental"
                if getattr(self.environment, "deterministic_guards", True)
                else "dense"
            )
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES} "
                "(or None/'auto' to pick automatically)"
            )
        if engine == "incremental" and not getattr(
            self.environment, "deterministic_guards", True
        ):
            raise ValueError(
                "the incremental engine requires side-effect-free guard "
                f"evaluation, but {type(self.environment).__name__} declares "
                "deterministic_guards=False (it draws random request decisions "
                "while guards are evaluated, so skipping evaluations would "
                "silently change the run); use engine='dense' with this "
                "environment"
            )
        self.daemon = daemon if daemon is not None else default_daemon()
        self.daemon.reset()
        self.environment.reset()
        self.configuration = (
            initial_configuration
            if initial_configuration is not None
            else algorithm.initial_configuration()
        )
        self.record_configurations = record_configurations
        self.engine = engine
        #: Configuration epoch: bumped by every external configuration swap
        #: (:meth:`set_configuration`), stamped onto every step's
        #: :class:`~repro.kernel.trace.StepDelta` so observers can tell
        #: "delta applies" from "world swapped under me".
        self.epoch = 0
        self.trace = Trace(self.configuration)
        self.step_index = 0
        # Round bookkeeping: the set of processes enabled at the start of the
        # current round that have not yet been activated or neutralized.
        self.round_index = 0
        self._round_pending: Optional[Set[ProcessId]] = None
        if step_listener is None:
            self._step_listeners: List[StepListener] = []
        elif callable(step_listener):
            self._step_listeners = [step_listener]
        else:
            self._step_listeners = list(step_listener)
        # Incremental engine state: the cached enabled map (valid for the
        # current configuration, modulo environment drift handled in
        # ``_current_enabled``) and the inverse dependency maps
        #   writer              -> processes reading *any* of its variables,
        #   (writer, variable)  -> processes reading exactly that variable,
        # built from ``read_dependency_variables`` (whose default delegates
        # to the process-granular ``read_dependencies``).
        self._enabled_cache: Optional[Dict[ProcessId, Any]] = None
        self._proc_dependents: Optional[Dict[ProcessId, FrozenSet[ProcessId]]] = None
        self._var_dependents: Optional[
            Dict[Tuple[ProcessId, str], FrozenSet[ProcessId]]
        ] = None
        # Environment-sensitivity status index: when the algorithm declares
        # ``environment_sensitive_variables``, the engine maintains the set of
        # environment-sensitive processes incrementally (full scan only at
        # construction and on external configuration swaps; O(|writers|)
        # membership updates per step) instead of re-scanning every status
        # between steps.
        self._env_sensitive: Optional[Set[ProcessId]] = None
        self._env_sensitive_vars = algorithm.environment_sensitive_variables
        if engine == "incremental" and self._env_sensitive_vars is not None:
            self._env_sensitive = set(
                algorithm.environment_sensitive_processes(self.configuration)
            )
        if engine == "incremental":
            proc: Dict[ProcessId, Set[ProcessId]] = {
                pid: {pid} for pid in algorithm.process_ids()
            }
            var: Dict[Tuple[ProcessId, str], Set[ProcessId]] = {}
            for pid in algorithm.process_ids():
                for source, variables in algorithm.read_dependency_variables(pid).items():
                    if variables is None:
                        proc.setdefault(source, set()).add(pid)
                    else:
                        for name in variables:
                            var.setdefault((source, name), set()).add(pid)
            self._proc_dependents = {q: frozenset(ps) for q, ps in proc.items()}
            self._var_dependents = {key: frozenset(ps) for key, ps in var.items()}
        # Let stateful environments see the initial configuration.
        self.environment.observe(self.configuration, -1)
        for listener in self._step_listeners:
            listener(self.configuration, None)

    def add_step_listener(self, listener: StepListener) -> None:
        """Attach another observer mid-construction (before the run starts).

        The listener is immediately fed the current configuration with
        ``record=None`` (mirroring the construction-time call), so observers
        attached after ``__init__`` see the same stream as those passed in.
        """
        self._step_listeners.append(listener)
        listener(self.configuration, None)

    # ------------------------------------------------------------------ #
    # single step
    # ------------------------------------------------------------------ #
    def enabled(self) -> Dict[ProcessId, Any]:
        """``Enabled(γ)`` with each process's priority action."""
        return dict(self._current_enabled())

    def invalidate_enabled_cache(self) -> None:
        """Drop the incremental engine's cached enabled map.

        This only protects the engine's *own* cache.  Never use it as the
        hook for an external configuration swap — route those through
        :meth:`set_configuration`, which also bumps the configuration
        :attr:`epoch` so delta-driven observers (streaming spec monitors,
        metrics) resynchronize; replacing ``self.configuration`` directly
        and calling only this method would leave them applying deltas
        against a world they never saw.  Calling it on its own is only
        appropriate after mutating the *environment* in a way that changes
        guard outcomes between steps.
        """
        self._enabled_cache = None

    def set_configuration(self, configuration: Configuration) -> None:
        """Replace the current configuration from outside the step loop.

        This is the supported way to model a mid-run transient fault burst
        (see :meth:`repro.kernel.faults.FaultInjector.corrupt_scheduler`): the
        new configuration becomes the source of the next step, the
        incremental engine's cached enabled map is invalidated (guards are
        re-evaluated against the corrupted state instead of the stale cache),
        and the configuration :attr:`epoch` is bumped — so delta-driven
        observers see the epoch change on the next step's
        :class:`~repro.kernel.trace.StepDelta` and resynchronize from the
        full configuration instead of applying the delta to a world they
        never saw.  Round bookkeeping is kept — the pending set is pruned
        against the fresh enabled map on the next step anyway.
        """
        self.configuration = configuration
        self.epoch += 1
        self.invalidate_enabled_cache()
        if self._env_sensitive is not None:
            # The swap may have flipped any status: rebuild the sensitivity
            # index from a full scan (O(n), like the corruption itself).
            self._env_sensitive = set(
                self.algorithm.environment_sensitive_processes(configuration)
            )

    def _current_enabled(self) -> Dict[ProcessId, Any]:
        """The enabled map for the current configuration (cached if incremental)."""
        if self.engine == "dense":
            return self.algorithm.enabled_processes(self.configuration, self.environment)
        if self._enabled_cache is None:
            self._enabled_cache = self.algorithm.enabled_processes(
                self.configuration, self.environment
            )
        else:
            # The cache was computed before the environment observed the last
            # configuration; refresh the processes whose guards may have
            # flipped with the environment alone.  The status index (when the
            # algorithm declares ``environment_sensitive_variables``) makes
            # this O(|sensitive|) instead of an O(n) status scan.
            cache = self._enabled_cache
            sensitive: Any = (
                self._env_sensitive
                if self._env_sensitive is not None
                else self.algorithm.environment_sensitive_processes(self.configuration)
            )
            for pid in sensitive:
                action = self.algorithm.enabled_action(
                    pid, self.configuration, self.environment
                )
                if action is None:
                    cache.pop(pid, None)
                else:
                    cache[pid] = action
        return self._enabled_cache

    def _enabled_after_step(
        self,
        enabled_map: Dict[ProcessId, Any],
        writers: Dict[ProcessId, Dict[str, Any]],
        new_configuration: Configuration,
    ) -> Dict[ProcessId, Any]:
        """The enabled map of ``new_configuration`` (γ').

        Dense engine: a full sweep.  Incremental engine: start from the
        pre-step map and re-evaluate only the processes whose declared read
        dependencies intersect the step's writes — matched per *variable*
        where the algorithm declares variable-granular dependencies
        (``read_dependency_variables``), per process otherwise.  For everyone
        else neither the variables their guards read nor the environment
        changed, so their enabledness is unchanged by construction.
        """
        if self.engine == "dense" or self._proc_dependents is None:
            return self.algorithm.enabled_processes(new_configuration, self.environment)
        after = dict(enabled_map)
        dirty: Set[ProcessId] = set()
        proc_dependents = self._proc_dependents
        var_dependents = self._var_dependents or {}
        for writer, written in writers.items():
            if not written:  # executed but wrote nothing: γ' is unchanged for its dependents
                continue
            dirty.update(proc_dependents.get(writer, (writer,)))
            for name in written:
                readers = var_dependents.get((writer, name))
                if readers:
                    dirty.update(readers)
        for pid in dirty:
            action = self.algorithm.enabled_action(pid, new_configuration, self.environment)
            if action is None:
                after.pop(pid, None)
            else:
                after[pid] = action
        return after

    def step(self) -> Optional[StepRecord]:
        """Execute one step; returns ``None`` if the configuration is terminal."""
        enabled_map = self._current_enabled()
        if not enabled_map:
            return None
        enabled_ids = tuple(sorted(enabled_map))

        if self._round_pending is None:
            # A new round starts: it must see the activation or
            # neutralization of every process enabled right now.
            self._round_pending = set(enabled_ids)

        selected = self.daemon.select(enabled_ids, self.configuration, self.step_index)
        selected = frozenset(p for p in selected if p in enabled_map)
        if not selected:
            # A daemon must select at least one enabled process; fall back to
            # the smallest id to preserve the distributed property.
            selected = frozenset({enabled_ids[0]})
        # Report the selection that is actually executed (it may differ from
        # the daemon's answer when the fallback above kicked in), so stateful
        # daemons keep their fairness bookkeeping truthful.
        self.daemon.notify_enabled(enabled_ids, selected)

        writes: Dict[ProcessId, Dict[str, Any]] = {}
        executed: Dict[ProcessId, str] = {}
        for pid in sorted(selected):
            action = enabled_map[pid]
            ctx = ActionContext(pid, self.configuration, self.environment)
            action.execute(ctx)
            writes[pid] = ctx.writes
            executed[pid] = action.label

        new_configuration = self.configuration.updated(writes)

        if self._env_sensitive is not None and self._env_sensitive_vars:
            # Status-index maintenance: a process's environment sensitivity
            # can only flip when it writes one of the declared variables
            # (statements write own variables only; external swaps rebuild
            # the index in ``set_configuration``).
            env_vars = self._env_sensitive_vars
            sensitive_set = self._env_sensitive
            for pid, written in writes.items():
                if written and any(v in written for v in env_vars):
                    if self.algorithm.environment_sensitive(pid, new_configuration):
                        sensitive_set.add(pid)
                    else:
                        sensitive_set.discard(pid)

        # Neutralization: enabled before, not selected, not enabled after.
        enabled_after_map = self._enabled_after_step(enabled_map, writes, new_configuration)
        enabled_after = set(enabled_after_map)
        neutralized = frozenset(
            pid
            for pid in enabled_ids
            if pid not in selected and pid not in enabled_after
        )

        record = StepRecord(
            index=self.step_index,
            selected=frozenset(selected),
            executed=executed,
            enabled_before=frozenset(enabled_ids),
            neutralized=neutralized,
            round_index=self.round_index,
            delta=StepDelta(
                writes={
                    pid: tuple(sorted(written))
                    for pid, written in writes.items()
                    if written
                },
                epoch=self.epoch,
            ),
        )

        # Advance round bookkeeping *after* stamping the record: the step is
        # part of the round it completes.
        self._round_pending -= set(selected)
        self._round_pending -= set(neutralized)
        # Processes that are simply no longer enabled (e.g. their guard went
        # false because a neighbour moved) also stop being owed a move.
        self._round_pending &= enabled_after | set(selected)
        if not self._round_pending:
            self.round_index += 1
            self._round_pending = None

        self.configuration = new_configuration
        if self.engine == "incremental":
            # γ''s enabled map becomes the next step's pre-step map; the
            # environment drift from the ``observe`` below is folded in by
            # ``_current_enabled`` at the start of the next step.
            self._enabled_cache = enabled_after_map
        if self.record_configurations:
            self.trace.append(new_configuration, record)
        else:
            self.trace.append_sparse(new_configuration, record)
        self.step_index += 1
        self.environment.observe(new_configuration, record.index)
        # Every listener sees every committed step, even when one of them
        # stops the run: capture the first StopRun, keep notifying the rest
        # (their state must stay in sync with the trace), then re-raise.
        stop: Optional[StopRun] = None
        for listener in self._step_listeners:
            try:
                listener(new_configuration, record)
            except StopRun as exc:
                if stop is None:
                    stop = exc
        if stop is not None:
            raise stop
        return record

    # ------------------------------------------------------------------ #
    # run loops
    # ------------------------------------------------------------------ #
    def run(
        self,
        max_steps: int = 10_000,
        max_rounds: Optional[int] = None,
        stop_predicate: Optional[Callable[[Configuration, int], bool]] = None,
        allow_idle_steps: bool = False,
    ) -> SchedulerResult:
        """Run until termination, a bound, or ``stop_predicate`` becomes true.

        ``stop_predicate(configuration, step_index)`` is evaluated after every
        step — including idle ticks, so a predicate that becomes true while
        the system is quiescent (e.g. an external timer expiring) stops the
        run promptly instead of spinning to ``max_steps``; when it returns
        ``True`` the run stops with reason ``"predicate"``.  A step listener
        raising :class:`StopRun` stops the run with the exception's reason.

        With ``allow_idle_steps=True`` a configuration with no enabled process
        does *not* end the run: an "idle tick" is consumed instead (the
        environment observes the unchanged configuration and external time
        advances), so request predicates that depend on elapsed time -- e.g.
        a professor deciding to leave a meeting after a while -- can become
        true and re-enable the system.  This models the asynchronous
        environment of the paper, where professors act at unpredictable real
        times even while the algorithm itself is quiescent.
        """
        stop_reason = "max_steps"
        terminated = False
        while self.step_index < max_steps:
            if max_rounds is not None and self.round_index >= max_rounds:
                stop_reason = "max_rounds"
                break
            try:
                record = self.step()
            except StopRun as stop:
                # A listener (e.g. a spec monitor in stop_on_violation mode)
                # halted the run; the offending step is fully committed.
                stop_reason = stop.reason
                break
            if record is None:
                if not allow_idle_steps:
                    terminated = True
                    stop_reason = "terminal"
                    break
                # Idle tick: no process can move, but external time passes.
                self.environment.observe(self.configuration, self.step_index)
                self.step_index += 1
            if stop_predicate is not None and stop_predicate(self.configuration, self.step_index):
                stop_reason = "predicate"
                break
        else:
            stop_reason = "max_steps"
        return SchedulerResult(
            trace=self.trace,
            steps=self.step_index,
            rounds=self.round_index + (0 if self._round_pending is None else 1),
            terminated=terminated,
            stop_reason=stop_reason,
        )

    def run_rounds(self, rounds: int, max_steps: int = 100_000) -> SchedulerResult:
        """Run for (up to) a fixed number of rounds."""
        return self.run(max_steps=max_steps, max_rounds=rounds)
