"""Daemons (schedulers) of the atomic-state model.

A daemon is the adversary that, at every step, selects which enabled
processes move.  The paper assumes a *distributed weakly fair* daemon:

* **distributed** -- at each step at least one (possibly more) enabled
  process is selected;
* **weakly fair** -- every continuously enabled process is eventually
  selected.

The implementations below cover the daemons used by the test-suite and the
benchmarks.  Weak fairness is enforced constructively: the
:class:`WeaklyFairDaemon` wrapper (used internally by the randomized and
adversarial daemons) tracks for how many consecutive steps each process has
been enabled without moving and force-selects processes that exceed a bound.
This turns the liveness assumption into an operational guarantee, which is
what a finite simulation needs.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.kernel.configuration import Configuration, ProcessId


class Daemon(abc.ABC):
    """Strategy that picks the set of processes allowed to move in a step."""

    @abc.abstractmethod
    def select(
        self,
        enabled: Sequence[ProcessId],
        configuration: Configuration,
        step_index: int,
    ) -> FrozenSet[ProcessId]:
        """Return a non-empty subset of ``enabled`` (``enabled`` is non-empty)."""

    def reset(self) -> None:
        """Clear internal bookkeeping (called when a scheduler is rebuilt)."""

    def notify_enabled(self, enabled: Sequence[ProcessId], selected: FrozenSet[ProcessId]) -> None:
        """Hook invoked by the scheduler with the selection actually executed.

        ``selected`` may differ from what :meth:`select` returned: the
        scheduler intersects the daemon's answer with the enabled set and
        falls back to the lowest enabled id when the intersection is empty.
        Stateful daemons should base their fairness bookkeeping on this
        callback rather than on their own ``select`` answer.
        """


class SynchronousDaemon(Daemon):
    """Selects *every* enabled process each step.

    The synchronous daemon is a special case of the distributed weakly fair
    daemon (every enabled process moves, so nobody is neglected); it is the
    fastest schedule and the default for throughput-style benchmarks.
    """

    def select(
        self,
        enabled: Sequence[ProcessId],
        configuration: Configuration,
        step_index: int,
    ) -> FrozenSet[ProcessId]:
        return frozenset(enabled)


class CentralDaemon(Daemon):
    """Selects exactly one enabled process per step.

    With ``policy='round_robin'`` (default) the daemon cycles through process
    ids, which is weakly fair.  ``policy='random'`` draws uniformly; wrapped
    in :class:`WeaklyFairDaemon` by the scheduler when fairness is required.
    """

    def __init__(self, policy: str = "round_robin", seed: Optional[int] = None) -> None:
        if policy not in ("round_robin", "random"):
            raise ValueError(f"unknown central daemon policy {policy!r}")
        self._policy = policy
        self._rng = random.Random(seed)
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select(
        self,
        enabled: Sequence[ProcessId],
        configuration: Configuration,
        step_index: int,
    ) -> FrozenSet[ProcessId]:
        ordered = sorted(enabled)
        if self._policy == "random":
            return frozenset({self._rng.choice(ordered)})
        # Round-robin over the id space: pick the first enabled id >= cursor.
        candidates = [p for p in ordered if p >= self._cursor] or ordered
        choice = candidates[0]
        self._cursor = choice + 1
        return frozenset({choice})


class LocallyCentralDaemon(Daemon):
    """Selects a maximal set of enabled processes that are pairwise non-neighbours.

    Useful to exercise schedules where no two neighbouring processes move in
    the same step (a common intermediate daemon in the self-stabilization
    literature).  Requires the neighbourhood map of the underlying
    communication network.
    """

    def __init__(
        self,
        neighbors: Dict[ProcessId, Tuple[ProcessId, ...]],
        seed: Optional[int] = None,
    ) -> None:
        self._neighbors = {pid: frozenset(ns) for pid, ns in neighbors.items()}
        self._rng = random.Random(seed)

    def select(
        self,
        enabled: Sequence[ProcessId],
        configuration: Configuration,
        step_index: int,
    ) -> FrozenSet[ProcessId]:
        ordered = list(enabled)
        self._rng.shuffle(ordered)
        chosen: Set[ProcessId] = set()
        blocked: Set[ProcessId] = set()
        for pid in ordered:
            if pid in blocked:
                continue
            chosen.add(pid)
            blocked |= self._neighbors.get(pid, frozenset())
            blocked.add(pid)
        if not chosen:  # pragma: no cover - defensive; enabled is non-empty
            chosen.add(ordered[0])
        return frozenset(chosen)


class DistributedRandomDaemon(Daemon):
    """Each enabled process is selected independently with probability ``p``.

    At least one process is always selected (re-drawing if the random subset
    came out empty), so the daemon is *distributed*.  Weak fairness is
    guaranteed probabilistically and, when wrapped by
    :class:`WeaklyFairDaemon` (the scheduler does this by default),
    deterministically.
    """

    def __init__(self, probability: float = 0.5, seed: Optional[int] = None) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError("selection probability must be in (0, 1]")
        self._p = probability
        self._rng = random.Random(seed)

    def select(
        self,
        enabled: Sequence[ProcessId],
        configuration: Configuration,
        step_index: int,
    ) -> FrozenSet[ProcessId]:
        ordered = sorted(enabled)
        chosen = [pid for pid in ordered if self._rng.random() < self._p]
        if not chosen:
            chosen = [self._rng.choice(ordered)]
        return frozenset(chosen)


class AdversarialDaemon(Daemon):
    """Daemon driven by a user strategy function.

    The strategy receives ``(enabled, configuration, step_index)`` and returns
    an iterable of process ids; the daemon intersects it with the enabled set
    and falls back to the lowest-id enabled process if the result is empty,
    so the *distributed* requirement is always met.  Used by the Theorem 1
    impossibility benchmark to steer the execution into the starvation cycle.
    """

    def __init__(
        self,
        strategy: Callable[[Sequence[ProcessId], Configuration, int], Iterable[ProcessId]],
    ) -> None:
        self._strategy = strategy

    def select(
        self,
        enabled: Sequence[ProcessId],
        configuration: Configuration,
        step_index: int,
    ) -> FrozenSet[ProcessId]:
        enabled_set = set(enabled)
        wanted = set(self._strategy(enabled, configuration, step_index))
        chosen = frozenset(w for w in wanted if w in enabled_set)
        if not chosen:
            chosen = frozenset({min(enabled_set)})
        return chosen


class WeaklyFairDaemon(Daemon):
    """Wrapper enforcing weak fairness on an arbitrary base daemon.

    The wrapper counts, for every process, the number of consecutive steps in
    which the process was enabled but not selected.  Whenever the count
    reaches ``patience`` the process is force-added to the base daemon's
    selection.  A continuously enabled process is therefore selected at least
    every ``patience`` steps, which realizes the weak fairness assumption of
    the paper in any finite execution.
    """

    def __init__(self, base: Daemon, patience: int = 8) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self._base = base
        self._patience = patience
        self._starvation: Dict[ProcessId, int] = {}
        self._pre_selection: Optional[Dict[ProcessId, int]] = None

    @property
    def base(self) -> Daemon:
        return self._base

    def reset(self) -> None:
        self._base.reset()
        self._starvation.clear()
        self._pre_selection = None

    def _bookkeep(self, enabled: Sequence[ProcessId], chosen: FrozenSet[ProcessId]) -> None:
        # Update starvation counters: processes enabled but not chosen age by
        # one; chosen or disabled processes reset.
        enabled_set = set(enabled)
        for pid in list(self._starvation):
            if pid not in enabled_set:
                self._starvation.pop(pid)
        for pid in enabled_set:
            if pid in chosen:
                self._starvation[pid] = 0
            else:
                self._starvation[pid] = self._starvation.get(pid, 0) + 1

    def select(
        self,
        enabled: Sequence[ProcessId],
        configuration: Configuration,
        step_index: int,
    ) -> FrozenSet[ProcessId]:
        base_choice = set(self._base.select(enabled, configuration, step_index))
        forced = {
            pid
            for pid in enabled
            if self._starvation.get(pid, 0) + 1 >= self._patience
        }
        chosen = frozenset(base_choice | forced)
        # Bookkeeping is applied provisionally so the daemon stays weakly fair
        # when driven standalone; a snapshot is kept so that notify_enabled can
        # redo it against the selection the scheduler actually executed (which
        # differs when the scheduler's empty-selection fallback kicks in).
        self._pre_selection = dict(self._starvation)
        self._bookkeep(enabled, chosen)
        return chosen

    def notify_enabled(self, enabled: Sequence[ProcessId], selected: FrozenSet[ProcessId]) -> None:
        if self._pre_selection is not None:
            self._starvation = self._pre_selection
            self._pre_selection = None
        self._bookkeep(enabled, selected)
        self._base.notify_enabled(enabled, selected)


def default_daemon(seed: Optional[int] = None, probability: float = 0.5, patience: int = 8) -> Daemon:
    """The library default: a distributed randomized daemon with enforced weak fairness."""
    return WeaklyFairDaemon(DistributedRandomDaemon(probability=probability, seed=seed), patience=patience)


#: Names accepted by :func:`daemon_from_name` (the CLI/campaign vocabulary).
DAEMON_NAMES = ("weakly_fair", "synchronous")


def daemon_from_name(name: str, seed: Optional[int] = None) -> Daemon:
    """Build a daemon from its CLI/campaign name.

    The single construction path shared by :class:`~repro.core.runner`'s
    coordinator, the campaign jobs and the randomized scenarios, so the
    name vocabulary cannot drift between them.
    """
    if name == "synchronous":
        return SynchronousDaemon()
    if name == "weakly_fair":
        return default_daemon(seed=seed)
    raise ValueError(f"unknown daemon {name!r}; expected one of {DAEMON_NAMES}")
