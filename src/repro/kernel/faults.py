"""Transient faults: arbitrary initial configurations and mid-run corruption.

Snap-stabilization (Section 2.5) is evaluated by studying the system *after*
the last fault: computations start from an arbitrary configuration but are
themselves fault-free.  The helpers here build such arbitrary configurations
and, for the snap-vs-self benchmark, corrupt a running system in place
("injecting" a burst of transient faults) so that recovery behaviour can be
observed in a single trace.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Sequence

from repro.kernel.algorithm import DistributedAlgorithm
from repro.kernel.configuration import Configuration, ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.kernel.scheduler import Scheduler


def arbitrary_configuration(
    algorithm: DistributedAlgorithm, seed: Optional[int] = None
) -> Configuration:
    """A configuration with every process's variables drawn arbitrarily.

    Delegates to the algorithm's :meth:`arbitrary_state`, which draws every
    variable uniformly from its domain (including inconsistent combinations
    such as ``S = waiting`` with ``P = ⊥``), exactly the adversarial starting
    points the snap-stabilization proofs quantify over.
    """
    rng = random.Random(seed)
    return algorithm.arbitrary_configuration(rng)


class FaultInjector:
    """Corrupts a subset of processes of an existing configuration.

    Parameters
    ----------
    algorithm:
        Used to draw replacement values from the per-process variable domains.
    fraction:
        Fraction of processes whose state is replaced by arbitrary values
        when :meth:`corrupt` is called (at least one process is always hit
        when ``fraction > 0``).
    seed:
        RNG seed for reproducibility.
    """

    def __init__(
        self,
        algorithm: DistributedAlgorithm,
        fraction: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self._algorithm = algorithm
        self._fraction = fraction
        self._rng = random.Random(seed)

    def corrupt(
        self,
        configuration: Configuration,
        victims: Optional[Iterable[ProcessId]] = None,
    ) -> Configuration:
        """Return a copy of ``configuration`` with some processes corrupted.

        ``victims`` overrides the random choice of which processes are hit.
        """
        states = configuration.to_dict()
        all_pids = sorted(states)
        if victims is None:
            count = max(1, int(round(self._fraction * len(all_pids)))) if self._fraction > 0 else 0
            victims = self._rng.sample(all_pids, min(count, len(all_pids)))
        for pid in victims:
            states[pid] = self._algorithm.arbitrary_state(pid, self._rng)
        return Configuration(states)

    def corrupt_scheduler(
        self,
        scheduler: "Scheduler",
        victims: Optional[Iterable[ProcessId]] = None,
    ) -> Configuration:
        """Corrupt a *running* scheduler's configuration between steps.

        Applies :meth:`corrupt` to the scheduler's current configuration and
        installs the result via
        :meth:`~repro.kernel.scheduler.Scheduler.set_configuration`, which
        also invalidates the incremental engine's cached enabled map — so the
        dirty-set protocol observes the corruption instead of stepping from a
        stale guard evaluation.  Returns the corrupted configuration.

        Note for spec checking: a meeting *fabricated* by the corruption is
        attributed to the run like any other transition — the dense post-hoc
        checkers and the streaming monitors both report it (identically) as
        a convene, typically violating Synchronization/Exclusion.  That is
        the intended differential-testing behaviour; to check the paper's
        after-the-last-fault guarantee instead, attach fresh monitors after
        the final burst (see :mod:`repro.spec.streaming`).
        """
        corrupted = self.corrupt(scheduler.configuration, victims)
        scheduler.set_configuration(corrupted)
        return corrupted

    def corrupt_variables(
        self,
        configuration: Configuration,
        pid: ProcessId,
        variables: Dict[str, Any],
    ) -> Configuration:
        """Overwrite specific variables of one process (targeted fault)."""
        states = configuration.to_dict()
        states[pid].update(variables)
        return Configuration(states)
