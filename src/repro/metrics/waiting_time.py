"""Waiting time (Definition 6, Theorem 6).

Waiting time is the maximum time before a process participates in a
committee meeting.  Theorem 6 bounds it for ``CC2 ∘ TC`` by
``O(maxDisc × n)`` rounds, where ``maxDisc`` is the maximum number of rounds
a process discusses in a meeting and ``n`` the number of processes.

The measurement below runs the algorithm with an always-requesting
environment (the fairness assumption) whose discussion length realizes
``maxDisc``, extracts for every professor the lengths of its waiting spells
(from the moment it starts waiting, i.e. is not in a meeting, until the next
configuration in which it participates in one), and reports the maximum --
in *rounds*, to match the theorem, and in steps for reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.base import CommitteeAlgorithmBase
from repro.core.states import DONE, STATUS, WAITING, POINTER
from repro.hypergraph.hypergraph import Hypergraph, ProcessId
from repro.kernel.daemon import Daemon, default_daemon
from repro.kernel.scheduler import Scheduler
from repro.kernel.trace import Trace
from repro.spec.events import committee_meets
from repro.workloads.request_models import AlwaysRequestingEnvironment


@dataclass(frozen=True)
class WaitingTimeResult:
    """Waiting-time statistics of one run."""

    max_wait_steps: int
    max_wait_rounds: float
    mean_wait_steps: float
    spells: int
    n: int
    max_disc: int
    steps: int
    rounds: int

    @property
    def theorem6_reference(self) -> float:
        """The ``maxDisc × n`` quantity the bound is stated against (in rounds)."""
        return float(self.max_disc * self.n)

    def as_row(self) -> dict:
        return {
            "n": self.n,
            "maxDisc": self.max_disc,
            "max_wait_rounds": round(self.max_wait_rounds, 2),
            "max_wait_steps": self.max_wait_steps,
            "mean_wait_steps": round(self.mean_wait_steps, 2),
            "maxDisc*n": self.theorem6_reference,
        }


def _participating(configuration, hypergraph: Hypergraph, pid: ProcessId) -> bool:
    """Is ``pid`` participating in some meeting in ``configuration``?"""
    for edge in hypergraph.incident_edges(pid):
        if committee_meets(configuration, edge):
            return True
    return False


class WaitingSpellTracker:
    """Online waiting-spell extraction over a stream of configurations.

    Feed configurations in trace order to :meth:`observe`; :meth:`spells`
    returns, at any point, the same per-professor spell lengths as
    :func:`waiting_spells` over the configurations observed so far.  This is
    the streaming counterpart used for sparse runs, where the trace does not
    retain the configurations.
    """

    def __init__(self, hypergraph: Hypergraph) -> None:
        self._hypergraph = hypergraph
        self._spells: Dict[ProcessId, List[int]] = {p: [] for p in hypergraph.vertices}
        self._open_since: Dict[ProcessId, Optional[int]] = {
            p: None for p in hypergraph.vertices
        }
        self._index = 0

    def observe(self, configuration, record=None) -> None:
        """Consume the next configuration (usable as a scheduler ``step_listener``)."""
        index = self._index
        for pid in self._hypergraph.vertices:
            if _participating(configuration, self._hypergraph, pid):
                if self._open_since[pid] is not None:
                    self._spells[pid].append(index - self._open_since[pid])
                    self._open_since[pid] = None
            elif self._open_since[pid] is None:
                self._open_since[pid] = index
        self._index += 1

    def spells(self) -> Dict[ProcessId, List[int]]:
        """Completed spells plus, for each professor, the spell (if any) still
        open at the last observed configuration, closed by the stream end."""
        result = {pid: list(lengths) for pid, lengths in self._spells.items()}
        last_index = self._index - 1
        if last_index >= 0:
            for pid, start in self._open_since.items():
                if start is not None:
                    result[pid].append(last_index - start)
        return result


def waiting_spells(trace: Trace, hypergraph: Hypergraph) -> Dict[ProcessId, List[int]]:
    """Lengths (in steps) of every completed waiting spell of every professor.

    A waiting spell starts when the professor is not participating in any
    meeting and ends at the first later configuration in which it is.  Spells
    still open at the end of the trace are reported as well (they are what a
    starved professor accumulates), closed by the trace end — including a
    spell that only opens at the very last configuration (length 0).

    Raises :class:`ValueError` on sparse traces
    (``record_configurations=False``), whose configuration sequence is not
    retained: use :class:`WaitingSpellTracker` as a scheduler
    ``step_listener`` to measure waiting spells on such runs instead.
    """
    trace.require_dense("waiting_spells")
    tracker = WaitingSpellTracker(hypergraph)
    for configuration in trace.configurations:
        tracker.observe(configuration)
    return tracker.spells()


def measure_waiting_time(
    algorithm: CommitteeAlgorithmBase,
    max_disc: int = 2,
    max_steps: int = 4000,
    daemon: Optional[Daemon] = None,
    seed: Optional[int] = None,
    from_arbitrary: bool = False,
) -> WaitingTimeResult:
    """Run the algorithm and measure its waiting time.

    ``max_disc`` is realized as the number of steps a professor insists on
    spending in the ``done`` status before requesting out (its voluntary
    discussion length).
    """
    environment = AlwaysRequestingEnvironment(discussion_steps=max_disc)
    daemon = daemon if daemon is not None else default_daemon(seed=seed)
    initial = None
    if from_arbitrary:
        import random as _random

        initial = algorithm.arbitrary_configuration(_random.Random(seed))
    scheduler = Scheduler(
        algorithm, environment=environment, daemon=daemon, initial_configuration=initial
    )
    result = scheduler.run(max_steps=max_steps)
    trace = result.trace
    hypergraph = algorithm.hypergraph
    spells = waiting_spells(trace, hypergraph)
    all_spells = [length for lengths in spells.values() for length in lengths]
    max_wait_steps = max(all_spells) if all_spells else 0
    mean_wait_steps = (sum(all_spells) / len(all_spells)) if all_spells else 0.0
    # Convert the maximum waiting spell from steps to rounds by scaling with
    # the trace's overall steps-per-round ratio (rounds are a global notion,
    # so this is the natural per-spell estimate).
    steps_per_round = (trace.length / trace.rounds) if trace.rounds else float(trace.length or 1)
    max_wait_rounds = max_wait_steps / steps_per_round if steps_per_round else float(max_wait_steps)
    return WaitingTimeResult(
        max_wait_steps=max_wait_steps,
        max_wait_rounds=max_wait_rounds,
        mean_wait_steps=mean_wait_steps,
        spells=len(all_spells),
        n=hypergraph.n,
        max_disc=max_disc,
        steps=trace.length,
        rounds=trace.rounds,
    )
