"""Degree of Fair Concurrency: measured vs. the Theorem 4/5 (and 7/8) bounds.

Definition 5: let professors remain in meetings forever; the system reaches a
quiescent state, and the degree of fair concurrency of the algorithm is the
*minimum* number of meetings held over all such quiescent states.  We
approximate the minimum by sampling many runs (different daemon seeds and
arbitrary initial configurations) and taking the smallest observed value;
Theorem 4 guarantees the true minimum is at least ``min_{MM ∪ AMM}`` and
Theorem 5 that this is at least ``minMM − MaxMin + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.base import CommitteeAlgorithmBase
from repro.hypergraph.matching import MatchingAnalysis
from repro.spec.concurrency import ConcurrencyMeasurement, measure_fair_concurrency


@dataclass(frozen=True)
class FairConcurrencyResult:
    """Measured degree of fair concurrency against the analytical bounds."""

    observed_min: int
    observed_max: int
    samples: Tuple[int, ...]
    theorem4_bound: int
    theorem5_bound: int
    theorem7_bound: int
    theorem8_bound: int

    @property
    def respects_theorem4(self) -> bool:
        """Observed minimum never falls below the Theorem 4 lower bound."""
        return self.observed_min >= self.theorem4_bound

    @property
    def respects_theorem7(self) -> bool:
        return self.observed_min >= self.theorem7_bound

    def as_row(self) -> dict:
        return {
            "observed_min": self.observed_min,
            "observed_max": self.observed_max,
            "thm4_bound": self.theorem4_bound,
            "thm5_bound": self.theorem5_bound,
            "thm7_bound": self.theorem7_bound,
            "thm8_bound": self.theorem8_bound,
        }


def degree_of_fair_concurrency(
    algorithm: CommitteeAlgorithmBase,
    trials: int = 5,
    max_steps: int = 4000,
    seed: int = 0,
    include_arbitrary_starts: bool = True,
    analysis: Optional[MatchingAnalysis] = None,
) -> FairConcurrencyResult:
    """Sample quiescent meeting counts and compare against the paper's bounds."""
    if analysis is None:
        analysis = MatchingAnalysis.of(algorithm.hypergraph)
    samples: List[int] = []
    for trial in range(trials):
        measurement: ConcurrencyMeasurement = measure_fair_concurrency(
            algorithm, max_steps=max_steps, seed=seed + trial, from_arbitrary=False
        )
        samples.append(measurement.degree)
        if include_arbitrary_starts:
            measurement = measure_fair_concurrency(
                algorithm, max_steps=max_steps, seed=seed + 100 + trial, from_arbitrary=True
            )
            samples.append(measurement.degree)
    return FairConcurrencyResult(
        observed_min=min(samples),
        observed_max=max(samples),
        samples=tuple(samples),
        theorem4_bound=analysis.min_mm_union_amm,
        theorem5_bound=analysis.theorem5_bound,
        theorem7_bound=analysis.min_mm_union_amm_prime,
        theorem8_bound=analysis.theorem8_bound,
    )
