"""Quantitative metrics: concurrency, waiting time, throughput."""

from repro.metrics.collector import TraceMetrics, collect_metrics
from repro.metrics.concurrency import FairConcurrencyResult, degree_of_fair_concurrency
from repro.metrics.waiting_time import WaitingTimeResult, measure_waiting_time
from repro.metrics.throughput import ThroughputResult, measure_throughput

__all__ = [
    "TraceMetrics",
    "collect_metrics",
    "FairConcurrencyResult",
    "degree_of_fair_concurrency",
    "WaitingTimeResult",
    "measure_waiting_time",
    "ThroughputResult",
    "measure_throughput",
]
