"""Per-trace metric aggregation.

``collect_metrics`` condenses one recorded trace into the numbers the
benchmark harness and ``EXPERIMENTS.md`` report: meetings convened, average
and peak concurrency, per-professor participation statistics and the action
histogram (useful for inspecting how much work the stabilization actions do
after a fault).

:class:`StreamingMetricsCollector` computes the same numbers *online* from
the stream of configurations a scheduler produces, so sparse runs
(``record_configurations=False``) report full metrics without ever retaining
the dense trace.  Attach it to the scheduler via ``step_listener``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernel.configuration import Configuration
from repro.kernel.trace import StepRecord, Trace
from repro.spec.events import (
    MeetingEventStream,
    concurrency_profile,
    convened_meetings,
    participations,
)
from repro.spec.fairness import FairnessSummary, professor_fairness_counts
from repro.spec.streaming import StreamingFairnessMonitor


@dataclass(frozen=True)
class TraceMetrics:
    """Summary numbers for one computation."""

    steps: int
    rounds: int
    meetings_convened: int
    peak_concurrency: int
    mean_concurrency: float
    min_professor_participations: int
    max_professor_participations: int
    jain_fairness_index: float
    action_counts: Dict[str, int]

    def as_row(self) -> Dict[str, object]:
        return {
            "steps": self.steps,
            "rounds": self.rounds,
            "meetings": self.meetings_convened,
            "peak_conc": self.peak_concurrency,
            "mean_conc": round(self.mean_concurrency, 3),
            "min_part": self.min_professor_participations,
            "max_part": self.max_professor_participations,
            "jain": round(self.jain_fairness_index, 3),
        }


class StreamingMetricsCollector:
    """Online :class:`TraceMetrics` for sparse runs.

    Usage::

        collector = StreamingMetricsCollector(hypergraph)
        scheduler = Scheduler(algorithm, ..., record_configurations=False,
                              step_listener=collector.observe_step)
        result = scheduler.run(...)
        metrics = collector.metrics(result.trace)   # == dense collect_metrics

    The collector consumes each configuration exactly once, keeps O(n + m)
    state, and produces numbers identical to running :func:`collect_metrics`
    over the equivalent densely recorded trace.
    """

    def __init__(self, hypergraph: Hypergraph) -> None:
        self._hypergraph = hypergraph
        self._stream = MeetingEventStream(hypergraph)
        self._fairness = StreamingFairnessMonitor(hypergraph)
        self._profile_sum = 0
        self._profile_count = 0
        self._peak_concurrency = 0

    @property
    def stream(self) -> MeetingEventStream:
        """The meeting-event stream this collector drives.

        Pass it (together with :attr:`fairness_monitor`) to a
        :class:`~repro.spec.streaming.StreamingSpecSuite` registered *after*
        this collector in the scheduler's listener sequence, so metrics and
        spec checking share one per-step meeting sweep and can never
        disagree on convene events.
        """
        return self._stream

    @property
    def fairness_monitor(self) -> StreamingFairnessMonitor:
        """The shared convene counter (see :attr:`stream`)."""
        return self._fairness

    def observe_step(
        self, configuration: Configuration, record: Optional[StepRecord] = None
    ) -> None:
        """Scheduler ``step_listener`` hook.

        Forwards the record's :class:`~repro.kernel.trace.StepDelta` to the
        meeting-event stream so the per-step committee sweep runs in
        ``O(|writers|)`` (see :class:`~repro.spec.events.MeetingEventStream`);
        a missing record/delta falls back to the full sweep.
        """
        delta = record.delta if record is not None else None
        self._fairness.consume(self._stream.observe(configuration, delta))
        held = self._stream.current_meetings
        self._profile_sum += held
        self._profile_count += 1
        if held > self._peak_concurrency:
            self._peak_concurrency = held

    @property
    def _meetings_convened(self) -> int:
        return self._fairness.meetings_convened

    def fairness(self) -> FairnessSummary:
        """Participation statistics seen so far (mirrors ``professor_fairness_counts``)."""
        return self._fairness.summary()

    def metrics(self, trace: Trace) -> TraceMetrics:
        """The :class:`TraceMetrics` of the observed run.

        ``trace`` supplies the step metadata (always recorded, even sparse):
        step/round counts and the action histogram.
        """
        fairness = self.fairness()
        return TraceMetrics(
            steps=trace.length,
            rounds=trace.rounds,
            meetings_convened=self._meetings_convened,
            peak_concurrency=self._peak_concurrency,
            mean_concurrency=(
                self._profile_sum / self._profile_count if self._profile_count else 0.0
            ),
            min_professor_participations=fairness.min_professor_participations,
            max_professor_participations=fairness.max_professor_participations,
            jain_fairness_index=fairness.professor_jain_index(),
            action_counts=trace.action_counts(),
        )


def collect_metrics(trace: Trace, hypergraph: Hypergraph) -> TraceMetrics:
    """Compute :class:`TraceMetrics` for a densely-recorded trace."""
    profile = concurrency_profile(trace, hypergraph)
    convened = convened_meetings(trace, hypergraph)
    fairness = professor_fairness_counts(trace, hypergraph)
    return TraceMetrics(
        steps=trace.length,
        rounds=trace.rounds,
        meetings_convened=len(convened),
        peak_concurrency=max(profile) if profile else 0,
        mean_concurrency=(sum(profile) / len(profile)) if profile else 0.0,
        min_professor_participations=fairness.min_professor_participations,
        max_professor_participations=fairness.max_professor_participations,
        jain_fairness_index=fairness.professor_jain_index(),
        action_counts=trace.action_counts(),
    )
