"""Per-trace metric aggregation.

``collect_metrics`` condenses one recorded trace into the numbers the
benchmark harness and ``EXPERIMENTS.md`` report: meetings convened, average
and peak concurrency, per-professor participation statistics and the action
histogram (useful for inspecting how much work the stabilization actions do
after a fault).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.hypergraph.hypergraph import Hypergraph, ProcessId
from repro.kernel.trace import Trace
from repro.spec.events import concurrency_profile, convened_meetings, participations
from repro.spec.fairness import professor_fairness_counts


@dataclass(frozen=True)
class TraceMetrics:
    """Summary numbers for one computation."""

    steps: int
    rounds: int
    meetings_convened: int
    peak_concurrency: int
    mean_concurrency: float
    min_professor_participations: int
    max_professor_participations: int
    jain_fairness_index: float
    action_counts: Dict[str, int]

    def as_row(self) -> Dict[str, object]:
        return {
            "steps": self.steps,
            "rounds": self.rounds,
            "meetings": self.meetings_convened,
            "peak_conc": self.peak_concurrency,
            "mean_conc": round(self.mean_concurrency, 3),
            "min_part": self.min_professor_participations,
            "max_part": self.max_professor_participations,
            "jain": round(self.jain_fairness_index, 3),
        }


def collect_metrics(trace: Trace, hypergraph: Hypergraph) -> TraceMetrics:
    """Compute :class:`TraceMetrics` for a densely-recorded trace."""
    profile = concurrency_profile(trace, hypergraph)
    convened = convened_meetings(trace, hypergraph)
    fairness = professor_fairness_counts(trace, hypergraph)
    return TraceMetrics(
        steps=trace.length,
        rounds=trace.rounds,
        meetings_convened=len(convened),
        peak_concurrency=max(profile) if profile else 0,
        mean_concurrency=(sum(profile) / len(profile)) if profile else 0.0,
        min_professor_participations=fairness.min_professor_participations,
        max_professor_participations=fairness.max_professor_participations,
        jain_fairness_index=fairness.professor_jain_index(),
        action_counts=trace.action_counts(),
    )
