"""Meeting throughput and steady-state concurrency.

Used by the qualitative comparison benchmark (CC1 vs CC2 vs CC3 vs the
baselines of Section 6): how many meetings convene per round, and how many
are typically held simultaneously, under a common request model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.base import CommitteeAlgorithmBase
from repro.kernel.daemon import Daemon, default_daemon
from repro.kernel.scheduler import Scheduler
from repro.metrics.collector import collect_metrics
from repro.workloads.request_models import AlwaysRequestingEnvironment


@dataclass(frozen=True)
class ThroughputResult:
    """Steady-state throughput numbers for one algorithm on one topology."""

    meetings_convened: int
    steps: int
    rounds: int
    meetings_per_round: float
    mean_concurrency: float
    peak_concurrency: int
    min_professor_participations: int
    jain_fairness_index: float

    def as_row(self) -> dict:
        return {
            "meetings": self.meetings_convened,
            "rounds": self.rounds,
            "meetings/round": round(self.meetings_per_round, 3),
            "mean_conc": round(self.mean_concurrency, 3),
            "peak_conc": self.peak_concurrency,
            "min_part": self.min_professor_participations,
            "jain": round(self.jain_fairness_index, 3),
        }


def measure_throughput(
    algorithm: CommitteeAlgorithmBase,
    max_steps: int = 3000,
    discussion_steps: int = 1,
    daemon: Optional[Daemon] = None,
    seed: Optional[int] = None,
) -> ThroughputResult:
    """Run with an always-requesting workload and summarize meeting throughput."""
    environment = AlwaysRequestingEnvironment(discussion_steps=discussion_steps)
    daemon = daemon if daemon is not None else default_daemon(seed=seed)
    scheduler = Scheduler(algorithm, environment=environment, daemon=daemon)
    result = scheduler.run(max_steps=max_steps)
    metrics = collect_metrics(result.trace, algorithm.hypergraph)
    rounds = max(1, metrics.rounds)
    return ThroughputResult(
        meetings_convened=metrics.meetings_convened,
        steps=metrics.steps,
        rounds=metrics.rounds,
        meetings_per_round=metrics.meetings_convened / rounds,
        mean_concurrency=metrics.mean_concurrency,
        peak_concurrency=metrics.peak_concurrency,
        min_professor_participations=metrics.min_professor_participations,
        jain_fairness_index=metrics.jain_fairness_index,
    )
