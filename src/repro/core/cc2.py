"""Algorithm ``CC2`` -- snap-stabilizing committee coordination with
Professor Fairness and 2-Phase Discussion (Section 5, Algorithm 2).

``CC2`` assumes professors request meetings infinitely often, so the ``idle``
status (and the ``RequestIn`` predicate) do not exist: a professor that is
not in a meeting is ``looking``.

The key differences with ``CC1``:

* a token is released **only** when its holder leaves a meeting (``Step4``);
  there is no ``Token2`` / ``Useless`` rule -- this is what buys fairness and
  what forfeits Maximal Concurrency;
* the token holder selects one of its *smallest* incident committees
  (``MinEdges_p``) and sticks with it until the meeting convenes, even if
  some members are still in other meetings;
* the Boolean ``L_p`` ("locked") advertises that ``p`` belongs to a committee
  selected by a looking token holder; other processes exclude locked
  processes from their ``FreeEdges`` so that they do not wait on them
  (Figure 4), preserving as much concurrency as fairness allows.

Per-process variables: ``S_p ∈ {looking, waiting, done}``, ``P_p ∈ E_p ∪ {⊥}``,
``T_p``, ``L_p`` (Booleans) plus the bound token module's variables.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.algorithm import Action, ActionContext
from repro.core.base import CommitteeAlgorithmBase
from repro.core.composition import TokenBinding
from repro.core.states import DONE, LOCK_FLAG, LOOKING, POINTER, STATUS, TOKEN_FLAG, WAITING


class CC2Algorithm(CommitteeAlgorithmBase):
    """The composition ``CC2 ∘ TC`` as a :class:`DistributedAlgorithm`."""

    statuses: Tuple[str, ...] = (LOOKING, WAITING, DONE)

    #: ``CC2`` has no ``idle`` status and never reads ``RequestIn``; only
    #: ``Step4`` (guarded on ``done``) consults the environment, so only
    #: ``done`` processes need re-evaluation between steps in the
    #: incremental engine.
    environment_sensitive_statuses: Tuple[str, ...] = (DONE,)

    #: ``CC2`` guards additionally read the lock flag ``L`` of neighbours
    #: (``FreeEdges`` excludes locked processes), refining the per-variable
    #: dirty protocol accordingly.  ``CC3`` inherits this: its round-robin
    #: cursor ``R`` is read only by its owner's guards.
    neighbour_guard_variables: Tuple[str, ...] = (STATUS, POINTER, TOKEN_FLAG, LOCK_FLAG)

    def __init__(self, hypergraph: Hypergraph, token: TokenBinding) -> None:
        super().__init__(hypergraph, token)

    # ------------------------------------------------------------------ #
    # variable layout
    # ------------------------------------------------------------------ #
    def own_initial_state(self, pid: ProcessId) -> Dict[str, Any]:
        return {STATUS: LOOKING, POINTER: None, TOKEN_FLAG: False, LOCK_FLAG: False}

    def own_arbitrary_state(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        return {
            STATUS: self.statuses[rng.randrange(len(self.statuses))],
            POINTER: self._arbitrary_pointer(pid, rng),
            TOKEN_FLAG: bool(rng.randrange(2)),
            LOCK_FLAG: bool(rng.randrange(2)),
        }

    # ------------------------------------------------------------------ #
    # macros (Algorithm 2)
    # ------------------------------------------------------------------ #
    def free_edges(self, ctx: ActionContext, pid: ProcessId) -> List[Hyperedge]:
        """``FreeEdges_p = {ε ∈ E_p | ∀q ∈ ε : (S_q = looking ∧ ¬L_q ∧ ¬T_q)}``."""
        return [
            edge
            for edge in self.incident(pid)
            if all(
                ctx.read(q, STATUS) == LOOKING
                and not bool(ctx.read(q, LOCK_FLAG))
                and not bool(ctx.read(q, TOKEN_FLAG))
                for q in edge
            )
        ]

    def free_nodes(self, ctx: ActionContext, pid: ProcessId) -> List[ProcessId]:
        nodes: set = set()
        for edge in self.free_edges(ctx, pid):
            nodes.update(edge.members)
        return sorted(nodes)

    def t_pointing_edges(self, ctx: ActionContext, pid: ProcessId) -> List[Hyperedge]:
        """``TPointingEdges_p``: incident committees selected by a looking token holder."""
        return [
            edge
            for edge in self.incident(pid)
            if any(
                ctx.read(q, POINTER) == edge
                and bool(ctx.read(q, TOKEN_FLAG))
                and ctx.read(q, STATUS) == LOOKING
                for q in edge
            )
        ]

    def t_pointing_nodes(self, ctx: ActionContext, pid: ProcessId) -> List[ProcessId]:
        nodes: set = set()
        for edge in self.t_pointing_edges(ctx, pid):
            nodes.update(edge.members)
        return sorted(nodes)

    def min_edges(self, pid: ProcessId) -> Tuple[Hyperedge, ...]:
        """``MinEdges_p``: smallest incident committees of ``p``."""
        return self.hypergraph.min_incident_edges(pid)

    def token_target_edges(self, ctx: ActionContext, pid: ProcessId) -> Tuple[Hyperedge, ...]:
        """Committees the token holder may select (``MinEdges_p`` for ``CC2``).

        ``CC3`` overrides this with a round-robin choice to obtain Committee
        Fairness.
        """
        return self.min_edges(pid)

    # ------------------------------------------------------------------ #
    # predicates (Algorithm 2)
    # ------------------------------------------------------------------ #
    def locked(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """``Locked(p) ≡ TPointingEdges_p ≠ ∅``."""
        return bool(self.t_pointing_edges(ctx, pid))

    def leave_meeting(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """``LeaveMeeting(p)``: done, pointing at ``ε`` and no member of ``ε`` still waiting."""
        if ctx.read(pid, STATUS) != DONE:
            return False
        pointer = ctx.read(pid, POINTER)
        for edge in self.incident(pid):
            if pointer != edge:
                continue
            if all(
                ctx.read(q, STATUS) != WAITING
                for q in edge
                if ctx.read(q, POINTER) == edge
            ):
                return True
        return False

    def local_max(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """``LocalMax(p) ≡ p = max(FreeNodes_p)``."""
        nodes = self.free_nodes(ctx, pid)
        return bool(nodes) and pid == max(nodes)

    def max_to_free_edge(self, ctx: ActionContext, pid: ProcessId) -> bool:
        if self.token.token(ctx, pid) or self.locked(ctx, pid):
            return False
        free = self.free_edges(ctx, pid)
        if not free:
            return False
        return (
            self.local_max(ctx, pid)
            and not self.ready(ctx, pid)
            and ctx.read(pid, POINTER) not in free
        )

    def join_local_max(self, ctx: ActionContext, pid: ProcessId) -> bool:
        if self.token.token(ctx, pid) or self.locked(ctx, pid):
            return False
        free = self.free_edges(ctx, pid)
        if not free:
            return False
        if self.local_max(ctx, pid) or self.ready(ctx, pid):
            return False
        nodes = self.free_nodes(ctx, pid)
        if not nodes:
            return False
        leader_pointer = ctx.read(max(nodes), POINTER)
        return any(edge == leader_pointer and ctx.read(pid, POINTER) != edge for edge in free)

    def token_holder_to_edge(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """``TokenHolderToEdge(p)``: the looking token holder must point at a target committee."""
        return (
            self.token.token(ctx, pid)
            and ctx.read(pid, STATUS) == LOOKING
            and not self.ready(ctx, pid)
            and ctx.read(pid, POINTER) not in self.token_target_edges(ctx, pid)
        )

    def join_token_holder(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """``JoinTokenHolder(p)``: a locked looking process adopts the token holder's committee."""
        return (
            not self.token.token(ctx, pid)
            and ctx.read(pid, STATUS) == LOOKING
            and not self.ready(ctx, pid)
            and self.locked(ctx, pid)
            and ctx.read(pid, POINTER) not in self.t_pointing_edges(ctx, pid)
        )

    def correct(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """The ``Correct(p)`` predicate of Algorithm 2."""
        status = ctx.read(pid, STATUS)
        if status == WAITING and not (self.ready(ctx, pid) or self.meeting(ctx, pid)):
            return False
        if status == DONE and not (self.meeting(ctx, pid) or self.leave_meeting(ctx, pid)):
            return False
        return True

    # ------------------------------------------------------------------ #
    # committee choices
    # ------------------------------------------------------------------ #
    def _choose_token_edge(self, ctx: ActionContext, pid: ProcessId) -> Hyperedge:
        """Pick the committee a token holder commits to.

        Among the target committees, prefer the one with the most members
        already ``looking`` (it can convene soonest), then the smallest, then
        the lexicographically smallest -- a deterministic refinement of the
        pseudo-code's free choice.
        """
        targets = self.token_target_edges(ctx, pid)

        def key(edge: Hyperedge) -> Tuple[int, int, Tuple[ProcessId, ...]]:
            not_looking = sum(1 for q in edge if ctx.read(q, STATUS) != LOOKING)
            return (not_looking, edge.size, edge.members)

        return min(targets, key=key)

    def _choose_t_pointing_edge(self, ctx: ActionContext, pid: ProcessId) -> Optional[Hyperedge]:
        """The committee ``P_{max(TPointingNodes_p)}`` if usable, else any T-pointing edge."""
        t_edges = self.t_pointing_edges(ctx, pid)
        if not t_edges:
            return None
        nodes = self.t_pointing_nodes(ctx, pid)
        leader_pointer = ctx.read(max(nodes), POINTER) if nodes else None
        if leader_pointer is not None and leader_pointer in t_edges:
            return leader_pointer
        return min(t_edges, key=self._edge_sort_key)

    # ------------------------------------------------------------------ #
    # actions
    # ------------------------------------------------------------------ #
    def actions(self, pid: ProcessId) -> Sequence[Action]:
        token = self.token

        # -- Lock : maintain the L flag ------------------------------------ #
        def lock_guard(ctx: ActionContext) -> bool:
            return self.locked(ctx, pid) != bool(ctx.read(pid, LOCK_FLAG))

        def lock_stmt(ctx: ActionContext) -> None:
            ctx.write(LOCK_FLAG, self.locked(ctx, pid))

        # -- Step11 : token holder commits to a target committee ------------ #
        def step11_guard(ctx: ActionContext) -> bool:
            return self.token_holder_to_edge(ctx, pid)

        def step11_stmt(ctx: ActionContext) -> None:
            ctx.write(POINTER, self._choose_token_edge(ctx, pid))

        # -- Step12 : locked processes adopt the token holder's committee --- #
        def step12_guard(ctx: ActionContext) -> bool:
            return self.join_token_holder(ctx, pid)

        def step12_stmt(ctx: ActionContext) -> None:
            choice = self._choose_t_pointing_edge(ctx, pid)
            if choice is not None:
                ctx.write(POINTER, choice)

        # -- Step13 : local maximum points at a free committee -------------- #
        def step13_guard(ctx: ActionContext) -> bool:
            return self.max_to_free_edge(ctx, pid)

        def step13_stmt(ctx: ActionContext) -> None:
            free = self.free_edges(ctx, pid)
            ctx.write(POINTER, self.choose_edge(ctx, free, prefer_token_holder=False))

        # -- Step14 : adopt the local maximum's committee -------------------- #
        def step14_guard(ctx: ActionContext) -> bool:
            return self.join_local_max(ctx, pid)

        def step14_stmt(ctx: ActionContext) -> None:
            nodes = self.free_nodes(ctx, pid)
            leader_pointer = ctx.read(max(nodes), POINTER) if nodes else None
            if leader_pointer is not None and leader_pointer in self.incident(pid):
                ctx.write(POINTER, leader_pointer)

        # -- Token : publish token ownership --------------------------------- #
        def token_guard(ctx: ActionContext) -> bool:
            return token.token(ctx, pid) != bool(ctx.read(pid, TOKEN_FLAG))

        def token_stmt(ctx: ActionContext) -> None:
            ctx.write(TOKEN_FLAG, token.token(ctx, pid))

        # -- Step2 : committee agreed, wait for the meeting ------------------- #
        def step2_guard(ctx: ActionContext) -> bool:
            return self.ready(ctx, pid) and ctx.read(pid, STATUS) == LOOKING

        def step2_stmt(ctx: ActionContext) -> None:
            ctx.write(STATUS, WAITING)

        # -- Step3 : meeting convened, essential discussion ------------------- #
        def step3_guard(ctx: ActionContext) -> bool:
            return self.meeting(ctx, pid) and ctx.read(pid, STATUS) == WAITING

        def step3_stmt(ctx: ActionContext) -> None:
            ctx.environment.on_essential_discussion(pid)
            ctx.write(STATUS, DONE)

        # -- Step4 : voluntarily leave the meeting, release the token ---------- #
        def step4_guard(ctx: ActionContext) -> bool:
            return self.leave_meeting(ctx, pid) and ctx.request_out()

        def step4_stmt(ctx: ActionContext) -> None:
            self.on_leave_meeting(ctx, pid)
            ctx.write(STATUS, LOOKING)
            ctx.write(POINTER, None)
            ctx.write(TOKEN_FLAG, False)
            if token.token(ctx, pid):
                token.release(ctx)

        # -- Stab : snap-stabilization correction ------------------------------ #
        def stab_guard(ctx: ActionContext) -> bool:
            return not self.correct(ctx, pid)

        def stab_stmt(ctx: ActionContext) -> None:
            ctx.write(STATUS, LOOKING)
            ctx.write(POINTER, None)

        actions: List[Action] = [
            Action("Lock", lock_guard, lock_stmt),
            Action("Step11", step11_guard, step11_stmt),
            Action("Step12", step12_guard, step12_stmt),
            Action("Step13", step13_guard, step13_stmt),
            Action("Step14", step14_guard, step14_stmt),
            Action("Token", token_guard, token_stmt),
            Action("Step2", step2_guard, step2_stmt),
            Action("Step3", step3_guard, step3_stmt),
            Action("Step4", step4_guard, step4_stmt),
            Action("Stab", stab_guard, stab_stmt),
        ]
        return tuple(self.token.maintenance_actions(pid) + actions)

    # ------------------------------------------------------------------ #
    # hook used by CC3
    # ------------------------------------------------------------------ #
    def on_leave_meeting(self, ctx: ActionContext, pid: ProcessId) -> None:
        """Extra statement executed at the start of ``Step4`` (no-op in ``CC2``)."""
