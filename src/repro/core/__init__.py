"""The paper's contribution: snap-stabilizing committee coordination.

* :mod:`repro.core.states` -- professor statuses and the mapping between the
  paper's abstract states (idle / waiting / meeting) and the algorithm
  statuses (``idle``, ``looking``, ``waiting``, ``done``).
* :mod:`repro.core.composition` -- binding of a
  :class:`~repro.tokenring.interfaces.TokenModule` into a committee
  coordination algorithm (the ``CC ∘ TC`` emulating composition).
* :mod:`repro.core.cc1` -- Algorithm ``CC1`` (Maximal Concurrency + 2-Phase
  Discussion, snap-stabilizing).
* :mod:`repro.core.cc2` -- Algorithm ``CC2`` (Professor Fairness + 2-Phase
  Discussion, snap-stabilizing; assumes professors request infinitely often).
* :mod:`repro.core.cc3` -- the Committee Fairness variant of ``CC2``.
* :mod:`repro.core.runner` -- the high-level user API
  (:class:`~repro.core.runner.CommitteeCoordinator`).
"""

from repro.core.states import DONE, IDLE, LOOKING, WAITING, is_meeting_status, is_waiting_status
from repro.core.composition import TokenBinding
from repro.core.cc1 import CC1Algorithm
from repro.core.cc2 import CC2Algorithm
from repro.core.cc3 import CC3Algorithm
from repro.core.runner import CommitteeCoordinator, SimulationOutcome

__all__ = [
    "IDLE",
    "LOOKING",
    "WAITING",
    "DONE",
    "is_meeting_status",
    "is_waiting_status",
    "TokenBinding",
    "CC1Algorithm",
    "CC2Algorithm",
    "CC3Algorithm",
    "CommitteeCoordinator",
    "SimulationOutcome",
]
