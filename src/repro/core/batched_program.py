"""Vectorized guard/move tables for the batched lockstep engine.

:func:`compile_program` turns one concrete scenario — a committee
coordination algorithm instance (``CC1``/``CC2``/``CC3`` composed with a
Dijkstra-family token module) plus a request environment — into a
:class:`BatchedProgram`: the static topology tables and the vectorized guard
sweep that :class:`~repro.kernel.batched.BatchedScheduler` evaluates across
all lanes at once.

Division of labour (the exactness argument)
-------------------------------------------

Only **guards** are transcribed to array form.  Statements always execute as
the real :class:`~repro.kernel.algorithm.Action` closures against a real
:class:`~repro.kernel.algorithm.ActionContext` whose configuration slot is a
:class:`_LaneView` decoding the pre-step arrays back to canonical Python
values (status strings, :class:`~repro.hypergraph.hypergraph.Hyperedge`
pointers, ...).  Write-sets are therefore exact by construction; a bug in the
vectorized guards shows up as a different enabled set / chosen action and is
caught by the differential harness's byte-comparison against the ``dense``
oracle.

The sweep produces, per action index, a boolean matrix of shape
``(runs, n)``; folding them in ascending action order (later-in-list =
higher priority, the library-wide convention) yields one ``int8`` priority
matrix whose entry is the enabled action index of that process in that lane,
or ``-1``.  Environment-dependent guards (``Step1`` reads ``RequestIn``,
``Step4`` reads ``RequestOut``; nothing else consults the environment) are
stored as environment-*independent* base matrices and intersected with the
request matrices at fold time, so the post-step sweep can be cached and
reused as the next step's pre-step sweep (see the dirty-matrix protocol in
:mod:`repro.kernel.batched`).

Coverage
--------

Supported: exactly the library's ``CC1Algorithm`` / ``CC2Algorithm`` /
``CC3Algorithm`` classes, token modules of the Dijkstra K-state family
(:class:`~repro.tokenring.dijkstra_ring.DijkstraRingToken`,
:class:`~repro.tokenring.tree_circulation.TreeTokenCirculation`,
:class:`~repro.tokenring.oracle.OracleTokenModule` — they share counter
mechanics and differ only in ring order), and the ``always`` / ``bursty``
request environments (whose predicates are pure functions of per-process
done-counters and the step clock).  Everything else — notably the
``probabilistic`` environment, whose RNG draws happen in ``observe`` in a
process order a vectorized update cannot replicate — raises
:class:`~repro.kernel.batched.BatchedUnsupported`, and callers fall back to
the solo engines.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.cc1 import CC1Algorithm
from repro.core.cc2 import CC2Algorithm
from repro.core.cc3 import CC3Algorithm, CURSOR
from repro.core.states import (
    DONE,
    IDLE,
    LOCK_FLAG,
    LOOKING,
    POINTER,
    STATUS,
    TOKEN_FLAG,
    WAITING,
)
from repro.kernel.batched import BatchedConfiguration, BatchedUnsupported, require_numpy
from repro.kernel.configuration import Configuration, ProcessId
from repro.tokenring.dijkstra_ring import COUNTER, DijkstraRingToken
from repro.tokenring.oracle import OracleTokenModule
from repro.tokenring.tree_circulation import TreeTokenCirculation
from repro.workloads.request_models import (
    AlwaysRequestingEnvironment,
    BurstyRequestEnvironment,
)

#: Fixed status encoding shared by all three algorithms (CC2/CC3 simply
#: never produce code 0).
STATUS_CODES: Dict[str, int] = {IDLE: 0, LOOKING: 1, WAITING: 2, DONE: 3}
STATUS_NAMES: Tuple[str, ...] = (IDLE, LOOKING, WAITING, DONE)

_CC1_LABELS = (
    "Step1", "Step21", "Step22", "Token1", "Token2",
    "Step31", "Step32", "Step4", "Stab1", "Stab2",
)
_CC2_LABELS = (
    "Lock", "Step11", "Step12", "Step13", "Step14",
    "Token", "Step2", "Step3", "Step4", "Stab",
)

_SUPPORTED_TOKEN_TYPES = (DijkstraRingToken, TreeTokenCirculation, OracleTokenModule)


def _unsupported(reason: str) -> BatchedUnsupported:
    return BatchedUnsupported(f"batched engine cannot run this scenario: {reason}")


# --------------------------------------------------------------------------- #
# vectorized request environments
# --------------------------------------------------------------------------- #
class _VectorEnvironment:
    """Array-backed ``always`` / ``bursty`` request environment for all lanes.

    Replicates ``_DoneCounterMixin`` exactly: one done-counter per
    (lane, process), incremented on every observed step the process spends in
    ``done`` status and reset otherwise, including the construction-time
    observation of the initial configuration.  The bursty phase clock is a
    pure function of the step index and the process id, so a single row
    broadcast serves every lane.
    """

    __slots__ = ("kind", "limit", "active", "quiet", "done", "_step", "_phase_ids", "_true", "essential")

    def __init__(
        self,
        kind: str,
        runs: int,
        pids: Sequence[ProcessId],
        limit: int,
        active: int = 0,
        quiet: int = 0,
    ) -> None:
        np = require_numpy()
        self.kind = kind
        self.limit = limit
        self.active = active
        self.quiet = quiet
        n = len(pids)
        self.done = np.zeros((runs, n), dtype=np.int64)
        self._step = 0
        self._phase_ids = np.asarray([pid * 3 for pid in pids], dtype=np.int64)
        self._true = np.ones((runs, n), dtype=bool)
        #: Per-(lane, pid) essential-discussion counters (cosmetic parity
        #: with ``on_essential_discussion``; nothing downstream reads them,
        #: but the hook must exist and must not crash).
        self.essential: Dict[Tuple[int, ProcessId], int] = {}

    def observe(self, status_codes: Any, step_index: int) -> None:
        np = require_numpy()
        self.done = np.where(status_codes == STATUS_CODES[DONE], self.done + 1, 0)
        self._step = step_index + 1

    # -- whole-batch request matrices (guard folding) -------------------- #
    def request_in_matrix(self) -> Any:
        if self.kind == "always":
            return self._true
        np = require_numpy()
        period = self.active + self.quiet
        row = ((self._step + self._phase_ids) % period) < self.active
        return np.broadcast_to(row, self.done.shape)

    def request_out_matrix(self) -> Any:
        return self.done >= self.limit

    # -- scalar reads (per-lane ActionContext adapter) ------------------- #
    def request_in(self, lane: int, col: int, pid: ProcessId) -> bool:
        if self.kind == "always":
            return True
        period = self.active + self.quiet
        return bool((self._step + pid * 3) % period < self.active)

    def request_out(self, lane: int, col: int, pid: ProcessId) -> bool:
        return bool(self.done[lane, col] >= self.limit)


class _LaneEnvironment:
    """Per-lane :class:`~repro.kernel.algorithm.Environment` facade.

    Handed to the real ``ActionContext`` during statement execution; request
    predicates read the vectorized environment state, the essential-discussion
    hook keeps a per-lane counter.
    """

    __slots__ = ("_env", "_lane", "_col")

    deterministic_guards = True

    def __init__(self, env: _VectorEnvironment, lane: int, col: Dict[ProcessId, int]) -> None:
        self._env = env
        self._lane = lane
        self._col = col

    def request_in(self, pid: ProcessId, configuration: Any) -> bool:
        return self._env.request_in(self._lane, self._col[pid], pid)

    def request_out(self, pid: ProcessId, configuration: Any) -> bool:
        return self._env.request_out(self._lane, self._col[pid], pid)

    def on_essential_discussion(self, pid: ProcessId) -> None:
        key = (self._lane, pid)
        self._env.essential[key] = self._env.essential.get(key, 0) + 1

    def observe(self, configuration: Any, step_index: int) -> None:  # pragma: no cover
        raise AssertionError("lane environments are observed via the vector path")

    def reset(self) -> None:  # pragma: no cover - never rebuilt mid-run
        pass


class _LaneView:
    """Read-only view of one lane's row, with the ``Configuration.get`` protocol.

    Decodes array cells back to the canonical Python values the guard and
    statement closures expect (status strings, ``Hyperedge``/``None``
    pointers, ``bool`` flags, ``int`` counters), served from the pre-step
    snapshot — composite atomicity is preserved because the scheduler encodes
    a lane's writes only after every selected process of that lane executed.
    """

    __slots__ = ("_decoders", "_col", "_arrays", "_lane")

    def __init__(
        self,
        decoders: Dict[str, Callable[[Dict[str, Any], int, int], Any]],
        col: Dict[ProcessId, int],
        arrays: Dict[str, Any],
        lane: int,
    ) -> None:
        self._decoders = decoders
        self._col = col
        self._arrays = arrays
        self._lane = lane

    def get(self, pid: ProcessId, variable: str, default: Any = None) -> Any:
        col = self._col.get(pid)
        if col is None:
            return default
        decoder = self._decoders.get(variable)
        if decoder is None:
            return default
        return decoder(self._arrays, self._lane, col)


# --------------------------------------------------------------------------- #
# the compiled program
# --------------------------------------------------------------------------- #
class BatchedProgram:
    """One compiled scenario: static tables + vectorized guard sweep.

    Stateless and reusable: all mutable run state lives in the
    :class:`~repro.kernel.batched.BatchedConfiguration` instances it encodes,
    so one program can serve many batches (the campaign layer compiles once
    per job group).
    """

    def __init__(self, algorithm: Any, environment: Any) -> None:
        np = require_numpy()
        kind = self._validate_algorithm(algorithm)
        self.algorithm = algorithm
        self.kind = kind  # "cc1" | "cc2" | "cc3"
        hypergraph = algorithm.hypergraph
        binding = algorithm.token
        module = binding.module
        if type(module) not in _SUPPORTED_TOKEN_TYPES:
            raise _unsupported(f"unknown token module {type(module).__name__}")
        pids = algorithm.process_ids()
        if not pids:
            raise _unsupported("no processes")
        if list(pids) != sorted(pids):
            raise _unsupported("process ids are not sorted")
        if not all(isinstance(pid, int) and not isinstance(pid, bool) for pid in pids):
            raise _unsupported("non-integer process ids")
        if tuple(sorted(module.process_ids())) != tuple(pids):
            raise _unsupported("token ring does not cover the process set")
        self.pids: Tuple[ProcessId, ...] = tuple(pids)
        self.n = len(pids)
        self._col: Dict[ProcessId, int] = {pid: i for i, pid in enumerate(pids)}
        edges = hypergraph.hyperedges
        self.edges = tuple(edges)
        self.n_edges = len(edges)
        self._edge_index = {edge: i for i, edge in enumerate(edges)}
        self._member_cols = [
            np.asarray([self._col[q] for q in edge.members], dtype=np.intp)
            for edge in edges
        ]
        member_u8 = np.zeros((self.n_edges, self.n), dtype=np.uint8)
        for e, cols in enumerate(self._member_cols):
            member_u8[e, cols] = 1
        self._member_u8 = member_u8
        self._inc_idx: List[Any] = []
        self._incident_rows: List[Any] = []
        self._incident_sets: List[frozenset] = []
        for pid in pids:
            incident = hypergraph.incident_edges(pid)
            if not incident:
                raise _unsupported(f"process {pid} has no incident committee")
            idx = np.asarray([self._edge_index[e] for e in incident], dtype=np.intp)
            self._inc_idx.append(idx)
            row = np.zeros(self.n_edges, dtype=bool)
            row[idx] = True
            self._incident_rows.append(row)
            self._incident_sets.append(frozenset(int(i) for i in idx))
        self._target_rows: List[Any] = []
        if kind == "cc2":
            for pid in pids:
                row = np.zeros(self.n_edges, dtype=bool)
                for edge in hypergraph.min_incident_edges(pid):
                    row[self._edge_index[edge]] = True
                self._target_rows.append(row)
        # -- token ring tables ------------------------------------------- #
        self._pred_cols = np.asarray(
            [self._col[module.predecessor(pid)] for pid in pids], dtype=np.intp
        )
        self._is_root = np.asarray([pid == module.root for pid in pids], dtype=bool)
        self._counter_var = binding.prefix + COUNTER
        # -- variable layout / codecs ------------------------------------ #
        variables: List[str] = [STATUS, POINTER, TOKEN_FLAG]
        if kind in ("cc2", "cc3"):
            variables.append(LOCK_FLAG)
        if kind == "cc3":
            variables.append(CURSOR)
        variables.append(self._counter_var)
        self.variables: Tuple[str, ...] = tuple(variables)
        self._var_index = {name: i for i, name in enumerate(self.variables)}
        self._dtypes: Dict[str, Any] = {
            STATUS: np.int8,
            POINTER: np.int32,
            TOKEN_FLAG: bool,
            LOCK_FLAG: bool,
            CURSOR: np.int64,
            self._counter_var: np.int64,
        }
        self._allowed_status_codes = frozenset(
            STATUS_CODES[s] for s in algorithm.statuses
        )
        self._decoders = self._build_decoders()
        # -- action tables (labels double as a transcription checksum) --- #
        expected = _CC1_LABELS if kind == "cc1" else _CC2_LABELS
        self._actions: Dict[ProcessId, Tuple[Any, ...]] = {}
        for pid in pids:
            actions = tuple(algorithm.actions(pid))
            if tuple(a.label for a in actions) != expected:
                raise _unsupported(
                    f"action list of process {pid} does not match the "
                    f"transcribed guard table ({[a.label for a in actions]})"
                )
            self._actions[pid] = actions
        # -- environment -------------------------------------------------- #
        self._env_spec = self._validate_environment(environment)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_algorithm(algorithm: Any) -> str:
        cls = type(algorithm)
        if cls is CC3Algorithm:
            return "cc3"
        if cls is CC2Algorithm:
            return "cc2"
        if cls is CC1Algorithm:
            return "cc1"
        raise _unsupported(f"unknown algorithm class {cls.__name__}")

    @staticmethod
    def _validate_environment(environment: Any) -> Tuple:
        cls = type(environment)
        if cls is AlwaysRequestingEnvironment:
            limit = environment._discussion_steps
            if not isinstance(limit, int) or isinstance(limit, bool):
                raise _unsupported("non-integer discussion_steps")
            return ("always", limit, 0, 0)
        if cls is BurstyRequestEnvironment:
            limit = environment._discussion_steps
            if not isinstance(limit, int) or isinstance(limit, bool):
                raise _unsupported("non-integer discussion_steps")
            return ("bursty", limit, environment._active, environment._quiet)
        raise _unsupported(
            f"environment {cls.__name__} (request predicates are not a pure "
            "function of done-counters and the step clock)"
        )

    # ------------------------------------------------------------------ #
    # codecs
    # ------------------------------------------------------------------ #
    def _build_decoders(self) -> Dict[str, Callable[[Dict[str, Any], int, int], Any]]:
        edges = self.edges
        counter = self._counter_var
        decoders: Dict[str, Callable[[Dict[str, Any], int, int], Any]] = {
            STATUS: lambda a, l, c: STATUS_NAMES[a[STATUS][l, c]],
            POINTER: lambda a, l, c: (
                None if a[POINTER][l, c] < 0 else edges[a[POINTER][l, c]]
            ),
            TOKEN_FLAG: lambda a, l, c: bool(a[TOKEN_FLAG][l, c]),
            counter: lambda a, l, c: int(a[counter][l, c]),
        }
        if LOCK_FLAG in self._var_index:
            decoders[LOCK_FLAG] = lambda a, l, c: bool(a[LOCK_FLAG][l, c])
        if CURSOR in self._var_index:
            decoders[CURSOR] = lambda a, l, c: int(a[CURSOR][l, c])
        return decoders

    def _encode_value(self, pid: ProcessId, variable: str, value: Any) -> Any:
        """Validate ``value`` against the variable's domain and return its code."""
        if variable == STATUS:
            code = STATUS_CODES.get(value)
            if code is None or code not in self._allowed_status_codes:
                raise _unsupported(f"status {value!r} outside the domain of {pid}")
            return code
        if variable == POINTER:
            if value is None:
                return -1
            idx = self._edge_index.get(value)
            if idx is None or idx not in self._incident_sets[self._col[pid]]:
                raise _unsupported(f"pointer {value!r} outside E_{pid}")
            return idx
        if variable in (TOKEN_FLAG, LOCK_FLAG):
            if not isinstance(value, bool):
                raise _unsupported(f"non-boolean {variable} of {pid}: {value!r}")
            return value
        # counters / cursor
        if not isinstance(value, int) or isinstance(value, bool):
            raise _unsupported(f"non-integer {variable} of {pid}: {value!r}")
        return value

    # ------------------------------------------------------------------ #
    # encode / decode
    # ------------------------------------------------------------------ #
    def encode(self, configurations: Sequence[Configuration]) -> BatchedConfiguration:
        np = require_numpy()
        runs = len(configurations)
        arrays = {
            name: np.zeros((runs, self.n), dtype=self._dtypes[name])
            for name in self.variables
        }
        kind, limit, active, quiet = self._env_spec
        env = _VectorEnvironment(kind, runs, self.pids, limit, active, quiet)
        state = BatchedConfiguration(runs, arrays, self._var_index, env)
        for lane, configuration in enumerate(configurations):
            self.encode_lane(state, lane, configuration)
        return state

    def encode_lane(
        self, state: BatchedConfiguration, lane: int, configuration: Configuration
    ) -> None:
        """(Re-)encode one lane's row from a full configuration."""
        known = self._var_index
        arrays = state.arrays
        for pid in self.pids:
            col = self._col[pid]
            variables = configuration.state_of(pid)
            extra = set(variables) - set(known)
            if extra:
                raise _unsupported(f"unknown variables {sorted(extra)} of {pid}")
            missing = set(known) - set(variables)
            if missing:
                raise _unsupported(f"missing variables {sorted(missing)} of {pid}")
            for variable, value in variables.items():
                arrays[variable][lane, col] = self._encode_value(pid, variable, value)
        state.mark_lane_dirty(lane)

    def encode_writes(
        self,
        state: BatchedConfiguration,
        lane: int,
        writes: Dict[ProcessId, Dict[str, Any]],
    ) -> None:
        """Apply one lane's buffered step writes, flagging the dirty matrix."""
        arrays = state.arrays
        dirty = state.dirty
        var_index = self._var_index
        for pid, written in writes.items():
            col = self._col[pid]
            for variable, value in written.items():
                slot = var_index.get(variable)
                if slot is None:
                    raise _unsupported(f"write to unknown variable {variable!r}")
                arrays[variable][lane, col] = self._encode_value(pid, variable, value)
                dirty[lane, slot] = True

    def decode_lane(self, state: BatchedConfiguration, lane: int) -> Configuration:
        """One lane's row as a full canonical :class:`Configuration`."""
        arrays = state.arrays
        decoders = self._decoders
        states = {
            pid: {
                variable: decoders[variable](arrays, lane, self._col[pid])
                for variable in self.variables
            }
            for pid in self.pids
        }
        return Configuration(states)

    def lane_view(self, state: BatchedConfiguration, lane: int) -> _LaneView:
        return _LaneView(self._decoders, self._col, state.arrays, lane)

    def lane_environment(self, state: BatchedConfiguration, lane: int) -> _LaneEnvironment:
        return _LaneEnvironment(state.env, lane, self._col)

    def column_of(self, pid: ProcessId) -> int:
        return self._col[pid]

    def actions_for(self, pid: ProcessId) -> Tuple[Any, ...]:
        return self._actions[pid]

    def env_observe(self, state: BatchedConfiguration, step_index: int) -> None:
        state.env.observe(state.arrays[STATUS], step_index)

    # ------------------------------------------------------------------ #
    # the vectorized guard sweep
    # ------------------------------------------------------------------ #
    def sweep(self, state: BatchedConfiguration) -> List[Tuple[int, str, Any]]:
        """Evaluate every environment-independent guard factor on all lanes.

        Returns the guard bundle: ``(action_index, kind, matrix)`` entries
        where ``kind`` is ``"static"`` (the matrix IS the guard), ``"in"`` or
        ``"out"`` (intersect with the request matrix at fold time).
        """
        if self.kind == "cc1":
            return self._sweep_cc1(state)
        return self._sweep_cc23(state)

    def fold(self, bundle: List[Tuple[int, str, Any]], state: BatchedConfiguration) -> Any:
        """Resolve the bundle into the per-(lane, process) priority matrix.

        Entry ``[lane, col]`` is the index of the highest-priority enabled
        action of that process in that lane, or ``-1`` if none is enabled —
        ascending-index overwrite implements the later-in-list-wins rule.
        """
        np = require_numpy()
        priority = np.full((state.runs, self.n), -1, dtype=np.int8)
        env = state.env
        request_in = request_out = None
        for index, kind, guard in bundle:
            if kind == "in":
                if request_in is None:
                    request_in = env.request_in_matrix()
                guard = guard & request_in
            elif kind == "out":
                if request_out is None:
                    request_out = env.request_out_matrix()
                guard = guard & request_out
            priority[guard] = index
        return priority

    # -- shared pieces --------------------------------------------------- #
    def _token_matrix(self, counters: Any) -> Any:
        """``Token(p)`` for all lanes: Dijkstra counter comparison on the ring."""
        equal = counters == counters[:, self._pred_cols]
        return equal == self._is_root[None, :]

    def _sweep_cc1(self, state: BatchedConfiguration) -> List[Tuple[int, str, Any]]:
        np = require_numpy()
        arrays = state.arrays
        S, P, T = arrays[STATUS], arrays[POINTER], arrays[TOKEN_FLAG]
        runs, n, E = state.runs, self.n, self.n_edges
        lanes = np.arange(runs)
        idle = S == STATUS_CODES[IDLE]
        look = S == STATUS_CODES[LOOKING]
        wait = S == STATUS_CODES[WAITING]
        done = S == STATUS_CODES[DONE]
        look_or_wait = look | wait
        wait_or_done = wait | done
        # -- per-edge predicates ----------------------------------------- #
        edge_ready = np.empty((runs, E), dtype=bool)   # all members point+look/wait
        edge_meet = np.empty((runs, E), dtype=bool)    # all members point+wait/done
        edge_free = np.empty((runs, E), dtype=bool)    # all members looking
        edge_leave = np.empty((runs, E), dtype=bool)   # every pointing member done
        for e, cols in enumerate(self._member_cols):
            pointing = P[:, cols] == e
            edge_ready[:, e] = (pointing & look_or_wait[:, cols]).all(axis=1)
            edge_meet[:, e] = (pointing & wait_or_done[:, cols]).all(axis=1)
            edge_free[:, e] = look[:, cols].all(axis=1)
            edge_leave[:, e] = (~pointing | done[:, cols]).all(axis=1)
        token = self._token_matrix(arrays[self._counter_var])
        has_pointer = P >= 0
        P_safe = np.where(has_pointer, P, 0)
        pointer_free = has_pointer & np.take_along_axis(edge_free, P_safe, axis=1)
        leave = has_pointer & np.take_along_axis(edge_leave, P_safe, axis=1)
        # -- per-process predicates --------------------------------------- #
        ready = np.empty((runs, n), dtype=bool)
        meeting = np.empty((runs, n), dtype=bool)
        free_any = np.empty((runs, n), dtype=bool)
        max_to_free = np.empty((runs, n), dtype=bool)
        join_local_max = np.empty((runs, n), dtype=bool)
        member_u8 = self._member_u8
        for j, inc in enumerate(self._inc_idx):
            ready[:, j] = edge_ready[:, inc].any(axis=1)
            meeting[:, j] = edge_meet[:, inc].any(axis=1)
            incident_free = edge_free[:, inc]
            any_free = incident_free.any(axis=1)
            free_any[:, j] = any_free
            # FreeNodes_p: members of free incident edges (uint8 matmul keeps
            # it one BLAS call per process instead of a Python loop).
            free_nodes = (incident_free.astype(np.uint8) @ member_u8[inc]) > 0
            token_flagged = free_nodes & T
            use_flagged = token_flagged.any(axis=1)
            candidates = np.where(use_flagged[:, None], token_flagged, free_nodes)
            # Highest candidate column == max pid (columns are id-sorted);
            # reversed argmax picks the last True.
            leader = (n - 1) - np.argmax(candidates[:, ::-1], axis=1)
            local_max = any_free & (leader == j)
            leader_pointer = P[lanes, leader]
            lp_has = any_free & (leader_pointer >= 0)
            lp_safe = np.where(leader_pointer >= 0, leader_pointer, 0)
            lp_free = lp_has & self._incident_rows[j][lp_safe] & edge_free[lanes, lp_safe]
            not_ready = ~ready[:, j]
            max_to_free[:, j] = any_free & local_max & not_ready & ~pointer_free[:, j]
            join_local_max[:, j] = (
                any_free & ~local_max & not_ready & lp_free & (P[:, j] != leader_pointer)
            )
        useless = token & (idle | (look & ~free_any))
        incorrect = (
            (idle & has_pointer)
            | (wait & ~(ready | meeting))
            | (done & ~(meeting | leave))
        )
        return [
            (0, "in", idle),                       # Step1
            (1, "static", max_to_free),            # Step21
            (2, "static", join_local_max),         # Step22
            (3, "static", token != T),             # Token1
            (4, "static", useless),                # Token2
            (5, "static", ready & look),           # Step31
            (6, "static", meeting & wait),         # Step32
            (7, "out", leave),                     # Step4
            (8, "static", incorrect & idle),       # Stab1
            (9, "static", incorrect & ~idle),      # Stab2
        ]

    def _sweep_cc23(self, state: BatchedConfiguration) -> List[Tuple[int, str, Any]]:
        np = require_numpy()
        arrays = state.arrays
        S, P, T, L = (
            arrays[STATUS],
            arrays[POINTER],
            arrays[TOKEN_FLAG],
            arrays[LOCK_FLAG],
        )
        runs, n, E = state.runs, self.n, self.n_edges
        lanes = np.arange(runs)
        look = S == STATUS_CODES[LOOKING]
        wait = S == STATUS_CODES[WAITING]
        done = S == STATUS_CODES[DONE]
        look_or_wait = look | wait
        wait_or_done = wait | done
        free_ok = look & ~L & ~T
        # -- per-edge predicates ----------------------------------------- #
        edge_ready = np.empty((runs, E), dtype=bool)
        edge_meet = np.empty((runs, E), dtype=bool)
        edge_free = np.empty((runs, E), dtype=bool)    # all members look & !L & !T
        edge_leave = np.empty((runs, E), dtype=bool)   # no pointing member waiting
        edge_tp = np.empty((runs, E), dtype=bool)      # some looking T-holder points
        for e, cols in enumerate(self._member_cols):
            pointing = P[:, cols] == e
            edge_ready[:, e] = (pointing & look_or_wait[:, cols]).all(axis=1)
            edge_meet[:, e] = (pointing & wait_or_done[:, cols]).all(axis=1)
            edge_free[:, e] = free_ok[:, cols].all(axis=1)
            edge_leave[:, e] = (~pointing | ~wait[:, cols]).all(axis=1)
            edge_tp[:, e] = (pointing & T[:, cols] & look[:, cols]).any(axis=1)
        token = self._token_matrix(arrays[self._counter_var])
        has_pointer = P >= 0
        P_safe = np.where(has_pointer, P, 0)
        pointer_free = has_pointer & np.take_along_axis(edge_free, P_safe, axis=1)
        pointer_tp = has_pointer & np.take_along_axis(edge_tp, P_safe, axis=1)
        leave = done & has_pointer & np.take_along_axis(edge_leave, P_safe, axis=1)
        # -- per-process predicates --------------------------------------- #
        ready = np.empty((runs, n), dtype=bool)
        meeting = np.empty((runs, n), dtype=bool)
        locked = np.empty((runs, n), dtype=bool)
        max_to_free = np.empty((runs, n), dtype=bool)
        join_local_max = np.empty((runs, n), dtype=bool)
        holder_to_edge = np.empty((runs, n), dtype=bool)
        join_holder = np.empty((runs, n), dtype=bool)
        member_u8 = self._member_u8
        cursor = arrays[CURSOR] if self.kind == "cc3" else None
        for j, inc in enumerate(self._inc_idx):
            ready[:, j] = edge_ready[:, inc].any(axis=1)
            meeting[:, j] = edge_meet[:, inc].any(axis=1)
            locked[:, j] = edge_tp[:, inc].any(axis=1)
            incident_free = edge_free[:, inc]
            any_free = incident_free.any(axis=1)
            free_nodes = (incident_free.astype(np.uint8) @ member_u8[inc]) > 0
            leader = (n - 1) - np.argmax(free_nodes[:, ::-1], axis=1)
            local_max = any_free & (leader == j)
            leader_pointer = P[lanes, leader]
            lp_has = any_free & (leader_pointer >= 0)
            lp_safe = np.where(leader_pointer >= 0, leader_pointer, 0)
            lp_free = lp_has & self._incident_rows[j][lp_safe] & edge_free[lanes, lp_safe]
            not_ready = ~ready[:, j]
            gate = ~token[:, j] & ~locked[:, j]
            max_to_free[:, j] = gate & any_free & local_max & not_ready & ~pointer_free[:, j]
            join_local_max[:, j] = (
                gate & any_free & ~local_max & not_ready
                & lp_free & (P[:, j] != leader_pointer)
            )
            # token holder's target committees: MinEdges (CC2) or the
            # round-robin cursor's edge (CC3)
            if cursor is None:
                pointer_target = has_pointer[:, j] & self._target_rows[j][P_safe[:, j]]
            else:
                target = inc[cursor[:, j] % len(inc)]
                pointer_target = has_pointer[:, j] & (P[:, j] == target)
            holder_to_edge[:, j] = token[:, j] & look[:, j] & not_ready & ~pointer_target
            join_holder[:, j] = (
                ~token[:, j] & look[:, j] & not_ready & locked[:, j] & ~pointer_tp[:, j]
            )
        incorrect = (wait & ~(ready | meeting)) | (done & ~(meeting | leave))
        return [
            (0, "static", locked != L),            # Lock
            (1, "static", holder_to_edge),         # Step11
            (2, "static", join_holder),            # Step12
            (3, "static", max_to_free),            # Step13
            (4, "static", join_local_max),         # Step14
            (5, "static", token != T),             # Token
            (6, "static", ready & look),           # Step2
            (7, "static", meeting & wait),         # Step3
            (8, "out", leave),                     # Step4
            (9, "static", incorrect),              # Stab
        ]


def compile_program(algorithm: Any, environment: Any) -> BatchedProgram:
    """Compile a scenario for the batched engine.

    ``algorithm`` is a built CC1/CC2/CC3 instance (with its token binding),
    ``environment`` the run's request environment instance.  Raises
    :class:`~repro.kernel.batched.BatchedUnsupported` for anything outside
    the vectorized tables' coverage — callers fall back to the solo engines.
    """
    require_numpy()
    return BatchedProgram(algorithm, environment)
