"""Algorithm ``CC3`` -- the Committee Fairness variant of ``CC2`` (Section 5.4).

The paper obtains ``CC3 ∘ TC`` from ``CC2 ∘ TC`` with one modification:
*"Every time a process acquires the token, it sequentially selects a new
incident committee."*  Instead of always targeting one of its smallest
incident committees, a token holder cycles through **all** of its incident
committees across successive token acquisitions, so every committee of every
process is selected (and therefore convenes) infinitely often.

Implementation: each process keeps a cursor ``R_p`` into the canonical list
of its incident committees.  The token holder's target committee is
``E_p[R_p mod |E_p|]``; the cursor advances when the process leaves a meeting
holding the token (i.e. when its token-priority turn completes), so the next
acquisition targets the next committee in sequence.

The waiting time is unchanged (Theorem 6) and the degree of fair concurrency
degrades from ``min_{MM ∪ AMM}`` to ``min_{MM ∪ AMM'}`` (Theorems 7 and 8)
because the targeted committee need no longer be a smallest one.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.algorithm import ActionContext
from repro.core.cc2 import CC2Algorithm
from repro.core.composition import TokenBinding

#: Name of the round-robin cursor variable.
CURSOR = "R"


class CC3Algorithm(CC2Algorithm):
    """``CC2`` with round-robin committee selection by the token holder.

    The cursor ``R_p`` is a process-local variable read only by ``p``'s own
    guards, so ``CC2``'s dirty-set declarations (``G_H`` neighbourhood plus
    token link, ``done`` processes environment-sensitive) carry over
    unchanged to the incremental scheduler engine.
    """

    def __init__(self, hypergraph: Hypergraph, token: TokenBinding) -> None:
        super().__init__(hypergraph, token)

    # ------------------------------------------------------------------ #
    # variable layout: CC2's plus the cursor
    # ------------------------------------------------------------------ #
    def own_initial_state(self, pid: ProcessId) -> Dict[str, Any]:
        state = super().own_initial_state(pid)
        state[CURSOR] = 0
        return state

    def own_arbitrary_state(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        state = super().own_arbitrary_state(pid, rng)
        # The cursor's domain is the index range of E_p; an arbitrary value
        # outside it is harmless (it is always used modulo |E_p|) but we draw
        # a slightly larger range to model corruption.
        state[CURSOR] = rng.randrange(0, max(1, len(self.incident(pid))) + 2)
        return state

    # ------------------------------------------------------------------ #
    # the single behavioural change: the token holder's target committee
    # ------------------------------------------------------------------ #
    def token_target_edges(self, ctx: ActionContext, pid: ProcessId) -> Tuple[Hyperedge, ...]:
        edges = self.incident(pid)
        if not edges:
            return ()
        cursor = ctx.read(pid, CURSOR)
        cursor = 0 if not isinstance(cursor, int) else cursor
        return (edges[cursor % len(edges)],)

    def on_leave_meeting(self, ctx: ActionContext, pid: ProcessId) -> None:
        """Advance the cursor when the token holder's priority turn completes."""
        if self.token.token(ctx, pid):
            cursor = ctx.read(pid, CURSOR)
            cursor = 0 if not isinstance(cursor, int) else cursor
            ctx.write(CURSOR, (cursor + 1) % max(1, len(self.incident(pid))))
