"""Shared machinery of the committee coordination algorithms.

``CC1``, ``CC2`` and ``CC3`` share

* their variable layout (status ``S``, edge pointer ``P``, token flag ``T``,
  plus the bound token module's variables),
* the predicates ``Ready``, ``Meeting`` and ``LeaveMeeting`` (syntactically
  identical in Algorithms 1 and 2 up to the statuses that exist),
* deterministic tie-breaking when the pseudo-code says "``P := ε`` such that
  ``ε ∈ ...``" (any choice satisfies the proofs; we fix one so runs are
  reproducible and document it),
* configuration-level helpers used by the spec checkers and the runner.

The concrete algorithms only add their macros, guards and action lists.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.algorithm import (
    Action,
    ActionContext,
    DistributedAlgorithm,
    merge_read_dependency_variables,
)
from repro.kernel.configuration import Configuration
from repro.core.composition import TokenBinding
from repro.core.states import DONE, IDLE, LOOKING, POINTER, STATUS, TOKEN_FLAG, WAITING


class CommitteeAlgorithmBase(DistributedAlgorithm):
    """Base class for ``CC1``, ``CC2`` and ``CC3`` composed with a token module."""

    #: Statuses a process of this algorithm may take (overridden per algorithm).
    statuses: Tuple[str, ...] = (IDLE, LOOKING, WAITING, DONE)

    def __init__(self, hypergraph: Hypergraph, token: TokenBinding) -> None:
        if not hypergraph.hyperedges:
            raise ValueError("the hypergraph must contain at least one committee")
        self.hypergraph = hypergraph
        self.token = token
        self._pids = hypergraph.vertices

    # ------------------------------------------------------------------ #
    # DistributedAlgorithm plumbing
    # ------------------------------------------------------------------ #
    #: Statuses in which a guard consults a request predicate: ``Step1`` reads
    #: ``RequestIn`` (only relevant while ``idle``) and ``Step4`` reads
    #: ``RequestOut`` (only relevant while ``done``).  Processes in these
    #: statuses are the only ones whose enabledness can change between two
    #: steps without any process writing, so they are what the incremental
    #: engine refreshes; ``CC2``/``CC3`` narrow this to ``(done,)``.
    environment_sensitive_statuses: Tuple[str, ...] = (IDLE, DONE)

    def process_ids(self) -> Tuple[ProcessId, ...]:
        return self._pids

    def incident(self, pid: ProcessId) -> Tuple[Hyperedge, ...]:
        """``E_p``."""
        return self.hypergraph.incident_edges(pid)

    # ------------------------------------------------------------------ #
    # dirty-set protocol (incremental scheduler engine)
    # ------------------------------------------------------------------ #
    #: CC-layer variables the guards of a process read *of its neighbours*.
    #: ``CC1`` guards scan statuses, pointers and token flags of committee
    #: members; ``CC2``/``CC3`` additionally read the lock flag ``L`` and
    #: override accordingly.  Everything else a guard reads of a neighbour
    #: goes through the token module, which declares its own (prefixed)
    #: variables via ``TokenBinding.read_dependency_variables``.
    neighbour_guard_variables: Tuple[str, ...] = (STATUS, POINTER, TOKEN_FLAG)

    def read_dependencies(self, pid: ProcessId) -> Tuple[ProcessId, ...]:
        """Guards of ``pid`` read its ``G_H`` neighbourhood plus its token link.

        Every CC-layer predicate (``Ready``, ``Meeting``, ``FreeEdges``,
        ``TPointingEdges``, ...) scans members of committees incident to
        ``pid`` — all of which lie in ``N(pid) ∪ {pid}`` — and the composed
        ``Token(p)`` predicate additionally reads the token module's
        variables of the module-declared link processes (the virtual-ring
        predecessor for the Dijkstra substrates).  See
        :meth:`read_dependency_variables` for the variable-granular form the
        incremental engine actually consumes.
        """
        deps = {pid}
        deps.update(self.hypergraph.neighbors(pid))
        deps.update(self.token.read_dependencies(pid))
        return tuple(sorted(deps))

    def read_dependency_variables(
        self, pid: ProcessId
    ) -> Dict[ProcessId, Optional[Tuple[str, ...]]]:
        """Variable-granular dependencies: CC variables of neighbours + token link.

        Of a ``G_H`` neighbour the guards read only
        :attr:`neighbour_guard_variables`; of the token-link processes only
        the module's prefixed variables (e.g. ``tc_c`` of the ring
        predecessor).  A neighbour updating its token-module counter
        therefore no longer dirties the whole ``G_H`` neighbourhood — only
        the counter's declared readers.  ``pid`` itself is a full dependency
        (own-variable reads are ubiquitous).
        """
        return merge_read_dependency_variables(
            {pid: None},
            {q: self.neighbour_guard_variables for q in self.hypergraph.neighbors(pid)},
            self.token.read_dependency_variables(pid),
        )

    #: Environment sensitivity is a pure function of the process's status, so
    #: the incremental engine can keep the sensitive set current from ``S``
    #: writes alone instead of re-scanning every status between steps.
    environment_sensitive_variables: Tuple[str, ...] = (STATUS,)

    def environment_sensitive(
        self, pid: ProcessId, configuration: Configuration
    ) -> bool:
        return configuration.get(pid, STATUS) in self.environment_sensitive_statuses

    def environment_sensitive_processes(
        self, configuration: Configuration
    ) -> Tuple[ProcessId, ...]:
        sensitive = self.environment_sensitive_statuses
        return tuple(
            pid for pid in self._pids if configuration.get(pid, STATUS) in sensitive
        )

    @abc.abstractmethod
    def own_initial_state(self, pid: ProcessId) -> Dict[str, Any]:
        """Legitimate initial values of the CC-layer variables."""

    @abc.abstractmethod
    def own_arbitrary_state(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        """Arbitrary values of the CC-layer variables."""

    def initial_state(self, pid: ProcessId) -> Dict[str, Any]:
        state = self.own_initial_state(pid)
        state.update(self.token.initial_variables(pid))
        return state

    def arbitrary_state(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        state = self.own_arbitrary_state(pid, rng)
        state.update(self.token.arbitrary_variables(pid, rng))
        return state

    def _arbitrary_pointer(self, pid: ProcessId, rng: Any) -> Optional[Hyperedge]:
        """A random value of ``P_p`` from its domain ``E_p ∪ {⊥}``."""
        options: List[Optional[Hyperedge]] = [None] + list(self.incident(pid))
        return options[rng.randrange(len(options))]

    # ------------------------------------------------------------------ #
    # shared predicates (Algorithms 1 and 2)
    # ------------------------------------------------------------------ #
    def ready(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """``Ready(p) ≡ ∃ε ∈ E_p : ∀q ∈ ε : (P_q = ε ∧ S_q ∈ {looking, waiting})``."""
        for edge in self.incident(pid):
            if all(
                ctx.read(q, POINTER) == edge
                and ctx.read(q, STATUS) in (LOOKING, WAITING)
                for q in edge
            ):
                return True
        return False

    def meeting(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """``Meeting(p) ≡ ∃ε ∈ E_p : ∀q ∈ ε : (P_q = ε ∧ S_q ∈ {waiting, done})``."""
        for edge in self.incident(pid):
            if all(
                ctx.read(q, POINTER) == edge
                and ctx.read(q, STATUS) in (WAITING, DONE)
                for q in edge
            ):
                return True
        return False

    # ------------------------------------------------------------------ #
    # deterministic committee selection
    # ------------------------------------------------------------------ #
    @staticmethod
    def _edge_sort_key(edge: Hyperedge) -> Tuple[int, Tuple[ProcessId, ...]]:
        return (edge.size, edge.members)

    def choose_edge(
        self,
        ctx: ActionContext,
        candidates: Sequence[Hyperedge],
        prefer_token_holder: bool = True,
    ) -> Hyperedge:
        """Pick one committee out of ``candidates``.

        The pseudo-code leaves this choice free; we prefer (in order)
        committees containing a process with its token flag raised (they are
        the highest-priority committees in the algorithm's own terms), then
        smaller committees, then the lexicographically smallest member tuple.
        """
        if not candidates:
            raise ValueError("no candidate committee to choose from")

        def key(edge: Hyperedge) -> Tuple[int, int, Tuple[ProcessId, ...]]:
            has_token_flag = any(bool(ctx.read(q, TOKEN_FLAG)) for q in edge)
            return (0 if (prefer_token_holder and has_token_flag) else 1, edge.size, edge.members)

        return min(candidates, key=key)

    # ------------------------------------------------------------------ #
    # configuration-level helpers (used by spec checkers, metrics, runner)
    # ------------------------------------------------------------------ #
    def meetings_in(self, configuration: Configuration) -> Tuple[Hyperedge, ...]:
        """Committees that *meet* in ``configuration``.

        A committee meets iff every member points to it with status
        ``waiting`` or ``done`` (Section 4.2 terminology).
        """
        held: List[Hyperedge] = []
        for edge in self.hypergraph.hyperedges:
            if all(
                configuration.get(q, POINTER) == edge
                and configuration.get(q, STATUS) in (WAITING, DONE)
                for q in edge
            ):
                held.append(edge)
        return tuple(held)

    def participants_in(self, configuration: Configuration) -> Tuple[ProcessId, ...]:
        """Processes participating in some meeting in ``configuration``."""
        participants: List[ProcessId] = []
        for edge in self.meetings_in(configuration):
            participants.extend(edge.members)
        return tuple(sorted(set(participants)))

    def status_of(self, configuration: Configuration, pid: ProcessId) -> str:
        return configuration.get(pid, STATUS)

    def pointer_of(self, configuration: Configuration, pid: ProcessId) -> Optional[Hyperedge]:
        return configuration.get(pid, POINTER)

    def token_holders(self, configuration: Configuration) -> Tuple[ProcessId, ...]:
        """Processes currently satisfying the ``Token(p)`` input predicate."""
        return tuple(self.token.token_holders(configuration))
