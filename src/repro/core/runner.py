"""High-level user API.

:class:`CommitteeCoordinator` wires together a hypergraph, one of the three
committee coordination algorithms, a token-circulation substrate, a request
model and a daemon, runs the simulation, and returns a
:class:`SimulationOutcome` bundling the trace, the meeting events and the
summary metrics.  It is the entry point the examples, the CLI and most
benchmarks use::

    from repro import CommitteeCoordinator, figure1_hypergraph

    coordinator = CommitteeCoordinator(figure1_hypergraph(), algorithm="cc2", seed=1)
    outcome = coordinator.run(max_steps=2000)
    print(outcome.metrics.as_row())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import CommitteeAlgorithmBase
from repro.core.cc1 import CC1Algorithm
from repro.core.cc2 import CC2Algorithm
from repro.core.cc3 import CC3Algorithm
from repro.core.composition import TokenBinding
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.algorithm import Environment
from repro.kernel.configuration import Configuration
from repro.kernel.daemon import DAEMON_NAMES, Daemon, daemon_from_name
from repro.kernel.faults import arbitrary_configuration
from repro.kernel.scheduler import ENGINES, Scheduler, SchedulerResult
from repro.kernel.trace import Trace
from repro.metrics.collector import StreamingMetricsCollector, TraceMetrics, collect_metrics
from repro.spec.events import MeetingEvent, convened_meetings, meeting_events
from repro.spec.fairness import FairnessSummary, professor_fairness_counts
from repro.spec.streaming import SpecVerdicts, StreamingSpecSuite
from repro.tokenring.dijkstra_ring import DijkstraRingToken
from repro.tokenring.oracle import OracleTokenModule
from repro.tokenring.tree_circulation import TreeTokenCirculation
from repro.workloads.request_models import AlwaysRequestingEnvironment

ALGORITHMS = ("cc1", "cc2", "cc3")
TOKEN_MODULES = ("tree", "ring", "oracle")
DAEMONS = DAEMON_NAMES


@dataclass
class SimulationOutcome:
    """Everything a caller usually wants from one simulation run."""

    trace: Trace
    result: SchedulerResult
    metrics: TraceMetrics
    events: List[MeetingEvent]
    fairness: FairnessSummary
    hypergraph: Hypergraph
    algorithm_name: str
    #: Streaming spec verdicts (``run(check=True)``); ``None`` otherwise.
    spec: Optional[SpecVerdicts] = None

    @property
    def final(self) -> Configuration:
        return self.trace.final

    @property
    def meetings_convened(self) -> int:
        # Delegate to the metrics, which are exact on dense *and* sparse
        # runs (the events list stays empty when configurations are not
        # recorded, so summing it would silently report 0 on sparse runs).
        return self.metrics.meetings_convened

    @property
    def steps(self) -> int:
        return self.result.steps

    @property
    def rounds(self) -> int:
        return self.result.rounds


class CommitteeCoordinator:
    """Facade building and running a ``CC ∘ TC`` composition.

    Parameters
    ----------
    hypergraph:
        Professors and committees.
    algorithm:
        ``"cc1"`` (Maximal Concurrency), ``"cc2"`` (Professor Fairness) or
        ``"cc3"`` (Committee Fairness).
    token:
        Token substrate: ``"tree"`` (default, circulation along a spanning
        tree of ``G_H``), ``"ring"`` (virtual id-ordered Dijkstra ring) or
        ``"oracle"`` (pre-stabilized ring).
    daemon:
        ``"weakly_fair"`` (default), ``"synchronous"``, or a
        :class:`~repro.kernel.daemon.Daemon` instance.
    seed:
        Seed for the daemon / arbitrary-configuration RNG.
    engine:
        Execution engine: ``"incremental"`` (the default via ``None``/
        ``"auto"`` — copy-on-write configurations plus enabled-set reuse via
        the per-variable dirty-set protocol; identical traces for a fixed
        seed, measurably faster at scale) or ``"dense"`` (the reference
        double-sweep scheduler).  ``None``/``"auto"`` resolve per run: the
        scheduler falls back to ``dense`` if the run's environment declares
        ``deterministic_guards = False``.  See :mod:`repro.kernel.scheduler`.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        algorithm: str = "cc2",
        token: str = "tree",
        daemon: str | Daemon = "weakly_fair",
        seed: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")
        if engine is not None and engine != "auto" and engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES} "
                "(or None/'auto' to pick automatically)"
            )
        self.hypergraph = hypergraph
        self.algorithm_name = algorithm
        self.seed = seed
        self.engine = engine
        self._token_name = token
        self._daemon_spec = daemon
        self.algorithm = self._build_algorithm(algorithm, token)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _build_token(self, token: str) -> TokenBinding:
        if isinstance(token, TokenBinding):
            return token
        if token == "tree":
            module = TreeTokenCirculation(self.hypergraph)
        elif token == "ring":
            module = DijkstraRingToken(self.hypergraph.vertices)
        elif token == "oracle":
            module = OracleTokenModule(self.hypergraph.vertices)
        else:
            raise ValueError(f"unknown token module {token!r}; expected one of {TOKEN_MODULES}")
        return TokenBinding(module)

    def _build_algorithm(self, algorithm: str, token: str) -> CommitteeAlgorithmBase:
        binding = self._build_token(token)
        if algorithm == "cc1":
            return CC1Algorithm(self.hypergraph, binding)
        if algorithm == "cc2":
            return CC2Algorithm(self.hypergraph, binding)
        return CC3Algorithm(self.hypergraph, binding)

    def _build_daemon(self) -> Daemon:
        if isinstance(self._daemon_spec, Daemon):
            return self._daemon_spec
        return daemon_from_name(self._daemon_spec, seed=self.seed)

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    def run(
        self,
        max_steps: int = 2000,
        environment: Optional[Environment] = None,
        discussion_steps: int = 1,
        from_arbitrary: bool = False,
        record_configurations: bool = True,
        check: bool = False,
        stop_on_violation: bool = False,
        grace_steps: Optional[int] = None,
        check_discussion: bool = False,
    ) -> SimulationOutcome:
        """Run one computation and collect metrics.

        ``environment`` defaults to an always-requesting workload with
        ``discussion_steps`` of voluntary discussion.  With
        ``from_arbitrary=True`` the run starts from an arbitrary configuration
        (the snap-stabilization setting).

        With ``record_configurations=False`` the run is *sparse*: the trace
        retains only the initial and final configurations, but the summary
        ``metrics`` and ``fairness`` are still exact — they are computed
        online by a :class:`StreamingMetricsCollector` while the run happens.
        Only the per-event ``events`` list is skipped (it stays empty).

        With ``check=True`` a :class:`StreamingSpecSuite` rides along the run
        (dense or sparse) and the outcome's ``spec`` carries the
        Exclusion/Synchronization/Progress reports and the fairness summary —
        identical to running the dense post-hoc checkers on the equivalent
        recorded trace.  ``stop_on_violation=True`` (implies ``check``) halts
        the run at the first safety violation: the scheduler result's
        ``stop_reason`` is ``"violation"`` and ``spec.first_violation`` holds
        the counterexample window.  ``grace_steps`` tunes the Progress tail
        window (default: half the trace length).  ``check_discussion=True``
        (implies ``check``) additionally streams the 2-phase discussion
        checkers; their reports land in ``spec.essential`` /
        ``spec.voluntary`` and participate in ``spec.all_hold``.
        """
        env = environment if environment is not None else AlwaysRequestingEnvironment(discussion_steps)
        daemon = self._build_daemon()
        initial = None
        if from_arbitrary:
            initial = arbitrary_configuration(self.algorithm, seed=self.seed)
        collector = None if record_configurations else StreamingMetricsCollector(self.hypergraph)
        suite = None
        if check or stop_on_violation or check_discussion:
            # When the metrics collector rides along too, the suite reuses
            # its meeting-event stream and convene counter: metrics + spec
            # checking together pay the per-step committee sweep once.  The
            # collector must run first in the listener sequence.
            suite = StreamingSpecSuite(
                self.hypergraph,
                grace_steps=grace_steps,
                stop_on_violation=stop_on_violation,
                stream=collector.stream if collector is not None else None,
                fairness=collector.fairness_monitor if collector is not None else None,
                check_discussion=check_discussion,
            )
        listeners = [
            observer.observe_step for observer in (collector, suite) if observer is not None
        ]
        scheduler = Scheduler(
            self.algorithm,
            environment=env,
            daemon=daemon,
            initial_configuration=initial,
            record_configurations=record_configurations,
            engine=self.engine,
            step_listener=listeners or None,
        )
        result = scheduler.run(max_steps=max_steps)
        trace = result.trace
        if collector is None:
            metrics = collect_metrics(trace, self.hypergraph)
            events = meeting_events(trace, self.hypergraph)
            fairness = professor_fairness_counts(trace, self.hypergraph)
        else:
            metrics = collector.metrics(trace)
            events = []
            fairness = collector.fairness()
        return SimulationOutcome(
            trace=trace,
            result=result,
            metrics=metrics,
            events=events,
            fairness=fairness,
            hypergraph=self.hypergraph,
            algorithm_name=self.algorithm_name,
            spec=suite.verdicts() if suite is not None else None,
        )

    def meetings_in(self, configuration: Configuration) -> Tuple[Hyperedge, ...]:
        """Committees meeting in ``configuration`` (delegates to the algorithm)."""
        return self.algorithm.meetings_in(configuration)
