"""Algorithm ``CC1`` -- snap-stabilizing committee coordination with
Maximal Concurrency and 2-Phase Discussion (Section 4, Algorithm 1).

The class below is the *composition* ``CC1 ∘ TC``: the token-passing action
``T`` of the token module is emulated by the CC layer through the input
predicate ``Token(p)`` and the statement ``ReleaseToken_p`` supplied by the
bound :class:`~repro.core.composition.TokenBinding`.

Per-process variables
---------------------
``S_p ∈ {idle, looking, waiting, done}``
    status,
``P_p ∈ E_p ∪ {⊥}``
    edge (committee) pointer,
``T_p`` (Boolean)
    locally published copy of the ``Token(p)`` predicate, so that neighbours
    can see who holds a token,
plus the token module's variables under the ``tc_`` prefix.

Actions (in code order; later in the list = **higher** priority)
---------------------------------------------------------------
``Step1``    request to participate: ``idle -> looking``
``Step21``   the locally highest-priority looking process points at a free committee
``Step22``   lower-priority looking processes adopt that committee
``Token1``   publish the value of ``Token(p)`` in ``T_p``
``Token2``   a useless token holder releases the token (this is what gives
             Maximal Concurrency and what forfeits fairness)
``Step31``   committee agreed: ``looking -> waiting``
``Step32``   meeting convened: perform essential discussion, ``waiting -> done``
``Step4``    leave a terminated-or-done meeting: back to ``idle``
``Stab1``/``Stab2``  correct a locally inconsistent state (snap-stabilization)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, ProcessId
from repro.kernel.algorithm import Action, ActionContext
from repro.core.base import CommitteeAlgorithmBase
from repro.core.composition import TokenBinding
from repro.core.states import DONE, IDLE, LOOKING, POINTER, STATUS, TOKEN_FLAG, WAITING


class CC1Algorithm(CommitteeAlgorithmBase):
    """The composition ``CC1 ∘ TC`` as a :class:`DistributedAlgorithm`."""

    statuses: Tuple[str, ...] = (IDLE, LOOKING, WAITING, DONE)

    def __init__(self, hypergraph: Hypergraph, token: TokenBinding) -> None:
        super().__init__(hypergraph, token)

    # ------------------------------------------------------------------ #
    # variable layout
    # ------------------------------------------------------------------ #
    def own_initial_state(self, pid: ProcessId) -> Dict[str, Any]:
        return {STATUS: IDLE, POINTER: None, TOKEN_FLAG: False}

    def own_arbitrary_state(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        return {
            STATUS: self.statuses[rng.randrange(len(self.statuses))],
            POINTER: self._arbitrary_pointer(pid, rng),
            TOKEN_FLAG: bool(rng.randrange(2)),
        }

    # ------------------------------------------------------------------ #
    # macros (Algorithm 1)
    # ------------------------------------------------------------------ #
    def free_edges(self, ctx: ActionContext, pid: ProcessId) -> List[Hyperedge]:
        """``FreeEdges_p = {ε ∈ E_p | ∀q ∈ ε : S_q = looking}``."""
        return [
            edge
            for edge in self.incident(pid)
            if all(ctx.read(q, STATUS) == LOOKING for q in edge)
        ]

    def free_nodes(self, ctx: ActionContext, pid: ProcessId) -> List[ProcessId]:
        """``FreeNodes_p``: processes incident to some free edge of ``p``."""
        nodes: set = set()
        for edge in self.free_edges(ctx, pid):
            nodes.update(edge.members)
        return sorted(nodes)

    def candidates(self, ctx: ActionContext, pid: ProcessId) -> List[ProcessId]:
        """``Cands_p``: token-flagged free nodes if any, otherwise all free nodes."""
        free_nodes = self.free_nodes(ctx, pid)
        token_flagged = [q for q in free_nodes if bool(ctx.read(q, TOKEN_FLAG))]
        return token_flagged if token_flagged else free_nodes

    # ------------------------------------------------------------------ #
    # predicates (Algorithm 1)
    # ------------------------------------------------------------------ #
    def local_max(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """``LocalMax(p) ≡ p = max(Cands_p)``."""
        cands = self.candidates(ctx, pid)
        return bool(cands) and pid == max(cands)

    def max_to_free_edge(self, ctx: ActionContext, pid: ProcessId) -> bool:
        free = self.free_edges(ctx, pid)
        if not free:
            return False
        return (
            self.local_max(ctx, pid)
            and not self.ready(ctx, pid)
            and ctx.read(pid, POINTER) not in free
        )

    def join_local_max(self, ctx: ActionContext, pid: ProcessId) -> bool:
        free = self.free_edges(ctx, pid)
        if not free:
            return False
        if self.local_max(ctx, pid) or self.ready(ctx, pid):
            return False
        cands = self.candidates(ctx, pid)
        if not cands:
            return False
        leader_pointer = ctx.read(max(cands), POINTER)
        return any(edge == leader_pointer and ctx.read(pid, POINTER) != edge for edge in free)

    def leave_meeting(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """``LeaveMeeting(p) ≡ ∃ε ∈ E_p : (P_p = ε ∧ ∀q ∈ ε : (P_q = ε ⇒ S_q = done))``."""
        pointer = ctx.read(pid, POINTER)
        for edge in self.incident(pid):
            if pointer != edge:
                continue
            if all(
                ctx.read(q, STATUS) == DONE
                for q in edge
                if ctx.read(q, POINTER) == edge
            ):
                return True
        return False

    def useless(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """``Useless(p) ≡ Token(p) ∧ [S_p = idle ∨ (S_p = looking ∧ FreeEdges_p = ∅)]``."""
        if not self.token.token(ctx, pid):
            return False
        status = ctx.read(pid, STATUS)
        if status == IDLE:
            return True
        return status == LOOKING and not self.free_edges(ctx, pid)

    def correct(self, ctx: ActionContext, pid: ProcessId) -> bool:
        """The ``Correct(p)`` predicate of Algorithm 1."""
        status = ctx.read(pid, STATUS)
        pointer = ctx.read(pid, POINTER)
        if status == IDLE and pointer is not None:
            return False
        if status == WAITING and not (self.ready(ctx, pid) or self.meeting(ctx, pid)):
            return False
        if status == DONE and not (self.meeting(ctx, pid) or self.leave_meeting(ctx, pid)):
            return False
        return True

    # ------------------------------------------------------------------ #
    # actions
    # ------------------------------------------------------------------ #
    def actions(self, pid: ProcessId) -> Sequence[Action]:
        token = self.token

        # -- Step1 : idle professor requests participation ---------------- #
        def step1_guard(ctx: ActionContext) -> bool:
            return ctx.request_in() and ctx.read(pid, STATUS) == IDLE

        def step1_stmt(ctx: ActionContext) -> None:
            ctx.write(STATUS, LOOKING)
            ctx.write(POINTER, None)

        # -- Step21 : local maximum points at a free committee ------------ #
        def step21_guard(ctx: ActionContext) -> bool:
            return self.max_to_free_edge(ctx, pid)

        def step21_stmt(ctx: ActionContext) -> None:
            free = self.free_edges(ctx, pid)
            ctx.write(POINTER, self.choose_edge(ctx, free))

        # -- Step22 : adopt the local maximum's committee ------------------ #
        def step22_guard(ctx: ActionContext) -> bool:
            return self.join_local_max(ctx, pid)

        def step22_stmt(ctx: ActionContext) -> None:
            cands = self.candidates(ctx, pid)
            leader_pointer = ctx.read(max(cands), POINTER) if cands else None
            if leader_pointer is not None and leader_pointer in self.incident(pid):
                ctx.write(POINTER, leader_pointer)

        # -- Token1 : publish token ownership ------------------------------ #
        def token1_guard(ctx: ActionContext) -> bool:
            return token.token(ctx, pid) != bool(ctx.read(pid, TOKEN_FLAG))

        def token1_stmt(ctx: ActionContext) -> None:
            ctx.write(TOKEN_FLAG, token.token(ctx, pid))

        # -- Token2 : useless token holder releases the token -------------- #
        def token2_guard(ctx: ActionContext) -> bool:
            return self.useless(ctx, pid)

        def token2_stmt(ctx: ActionContext) -> None:
            token.release(ctx)
            ctx.write(TOKEN_FLAG, False)

        # -- Step31 : committee agreed, wait for the meeting ---------------- #
        def step31_guard(ctx: ActionContext) -> bool:
            return self.ready(ctx, pid) and ctx.read(pid, STATUS) == LOOKING

        def step31_stmt(ctx: ActionContext) -> None:
            ctx.write(STATUS, WAITING)

        # -- Step32 : meeting convened, essential discussion ---------------- #
        def step32_guard(ctx: ActionContext) -> bool:
            return self.meeting(ctx, pid) and ctx.read(pid, STATUS) == WAITING

        def step32_stmt(ctx: ActionContext) -> None:
            ctx.environment.on_essential_discussion(pid)
            ctx.write(STATUS, DONE)

        # -- Step4 : voluntarily leave the meeting --------------------------- #
        def step4_guard(ctx: ActionContext) -> bool:
            return self.leave_meeting(ctx, pid) and ctx.request_out()

        def step4_stmt(ctx: ActionContext) -> None:
            ctx.write(STATUS, IDLE)
            ctx.write(POINTER, None)
            if token.token(ctx, pid):
                token.release(ctx)
            ctx.write(TOKEN_FLAG, False)

        # -- Stab1 / Stab2 : snap-stabilization correction ------------------- #
        def stab1_guard(ctx: ActionContext) -> bool:
            return not self.correct(ctx, pid) and ctx.read(pid, STATUS) == IDLE

        def stab1_stmt(ctx: ActionContext) -> None:
            ctx.write(POINTER, None)

        def stab2_guard(ctx: ActionContext) -> bool:
            return not self.correct(ctx, pid) and ctx.read(pid, STATUS) != IDLE

        def stab2_stmt(ctx: ActionContext) -> None:
            ctx.write(STATUS, LOOKING)
            ctx.write(POINTER, None)

        actions: List[Action] = [
            Action("Step1", step1_guard, step1_stmt),
            Action("Step21", step21_guard, step21_stmt),
            Action("Step22", step22_guard, step22_stmt),
            Action("Token1", token1_guard, token1_stmt),
            Action("Token2", token2_guard, token2_stmt),
            Action("Step31", step31_guard, step31_stmt),
            Action("Step32", step32_guard, step32_stmt),
            Action("Step4", step4_guard, step4_stmt),
            Action("Stab1", stab1_guard, stab1_stmt),
            Action("Stab2", stab2_guard, stab2_stmt),
        ]
        # Fair composition with the token module's maintenance actions (if
        # any).  They are appended *before* the CC actions' stabilization
        # rules would not be meaningful, so they go first (lowest priority).
        return tuple(self.token.maintenance_actions(pid) + actions)
