"""Binding a token module into a committee coordination algorithm.

The paper's composition ``CC ∘ TC`` is *emulating*: the composed algorithm
does not contain the token-passing action ``T`` explicitly -- the predicate
``Token(p)`` and the statement ``ReleaseToken_p`` are inputs to the CC layer,
which invokes ``ReleaseToken_p`` from its own actions (``Token2`` / ``Step4``
in ``CC1``, ``Step4`` in ``CC2``).

:class:`TokenBinding` packages a
:class:`~repro.tokenring.interfaces.TokenModule` for that purpose: it stores
the module's variables under a prefix inside the composed per-process state,
exposes ``Token(p)`` / ``ReleaseToken_p`` against an
:class:`~repro.kernel.algorithm.ActionContext`, and namespaces the module's
maintenance actions so they can be appended to the CC layer's action list
(fair composition).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.kernel.algorithm import Action, ActionContext
from repro.kernel.composition import namespaced_action
from repro.kernel.configuration import Configuration, ProcessId
from repro.tokenring.interfaces import TokenModule

#: Default prefix under which token-module variables live in the composed state.
TOKEN_PREFIX = "tc_"


class _PrefixWriter:
    """Minimal context shim: reads/writes the prefixed token variables."""

    __slots__ = ("_ctx", "_prefix", "pid")

    def __init__(self, ctx: ActionContext, prefix: str) -> None:
        self._ctx = ctx
        self._prefix = prefix
        self.pid = ctx.pid

    def write(self, variable: str, value: Any) -> None:
        self._ctx.write(self._prefix + variable, value)

    def read(self, pid: ProcessId, variable: str, default: Any = None) -> Any:
        return self._ctx.read(pid, self._prefix + variable, default)

    def own(self, variable: str, default: Any = None) -> Any:
        return self._ctx.read(self._ctx.pid, self._prefix + variable, default)

    def mark_token_released(self) -> None:
        self._ctx.mark_token_released()


class TokenBinding:
    """A :class:`TokenModule` bound under a variable prefix."""

    def __init__(self, module: TokenModule, prefix: str = TOKEN_PREFIX) -> None:
        self.module = module
        self.prefix = prefix

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def initial_variables(self, pid: ProcessId) -> Dict[str, Any]:
        return {
            self.prefix + name: value
            for name, value in self.module.initial_variables(pid).items()
        }

    def arbitrary_variables(self, pid: ProcessId, rng: Any) -> Dict[str, Any]:
        return {
            self.prefix + name: value
            for name, value in self.module.arbitrary_variables(pid, rng).items()
        }

    # ------------------------------------------------------------------ #
    # the Token(p) predicate and ReleaseToken_p statement
    # ------------------------------------------------------------------ #
    def token(self, ctx: ActionContext, pid: ProcessId | None = None) -> bool:
        """``Token(p)`` evaluated against the pre-step snapshot in ``ctx``."""
        target = ctx.pid if pid is None else pid
        read = lambda q, var: ctx.read(q, self.prefix + var)
        return self.module.holds_token(read, target)

    def token_in(self, configuration: Configuration, pid: ProcessId) -> bool:
        """``Token(p)`` evaluated against a full configuration (spec checkers)."""
        read = lambda q, var: configuration.get(q, self.prefix + var)
        return self.module.holds_token(read, pid)

    def token_holders(self, configuration: Configuration) -> Sequence[ProcessId]:
        read = lambda q, var: configuration.get(q, self.prefix + var)
        return self.module.token_holders(read)

    def release(self, ctx: ActionContext) -> None:
        """``ReleaseToken_p``: delegate to the module, writing prefixed variables."""
        shim = _PrefixWriter(ctx, self.prefix)
        read = lambda q, var: ctx.read(q, self.prefix + var)
        self.module.release_token(shim, read)  # type: ignore[arg-type]
        ctx.mark_token_released()

    # ------------------------------------------------------------------ #
    # dirty-set protocol (incremental scheduler engine)
    # ------------------------------------------------------------------ #
    def read_dependencies(self, pid: ProcessId) -> Sequence[ProcessId]:
        """Processes whose (prefixed) variables ``Token(pid)`` may read."""
        return self.module.read_dependencies(pid)

    def read_dependency_variables(
        self, pid: ProcessId
    ) -> Dict[ProcessId, "Sequence[str] | None"]:
        """Variable-granular form of :meth:`read_dependencies`, prefixed.

        The module declares its dependencies in its own (un-prefixed)
        variable names; the binding maps them into the composed state's
        namespace (``c`` becomes ``tc_c``) so the scheduler's inverse maps
        match the names that actually appear in step deltas.
        """
        return {
            source: (
                None
                if variables is None
                else tuple(self.prefix + name for name in variables)
            )
            for source, variables in self.module.read_dependency_variables(pid).items()
        }

    # ------------------------------------------------------------------ #
    # maintenance actions (fair composition)
    # ------------------------------------------------------------------ #
    def maintenance_actions(self, pid: ProcessId) -> List[Action]:
        return [
            namespaced_action(action, self.prefix)
            for action in self.module.maintenance_actions(pid)
        ]
