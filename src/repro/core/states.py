"""Professor statuses.

The problem statement (Section 2.3) distinguishes three professor *states*:
idle, waiting and meeting.  The algorithms refine them into four *statuses*
(Section 4.1, footnote 6):

====================  =======================================================
algorithm status       problem state
====================  =======================================================
``idle``              idle -- no interest in a meeting (``CC1`` only; in
                      ``CC2``/``CC3`` professors are always requesting so the
                      status does not exist)
``looking``           waiting -- searching for an available committee
``waiting``           waiting -- committed to a committee, waiting for every
                      member to catch up
``done``              meeting -- the meeting convened and the professor has
                      performed (or is performing) its essential discussion
====================  =======================================================

A committee *meets* iff every member points to it with status ``waiting`` or
``done``; the member is then *participating* in the meeting (see
:mod:`repro.spec.events` for the trace-level definitions).
"""

from __future__ import annotations

from typing import Tuple

#: Status variable name used by every committee coordination algorithm.
STATUS = "S"
#: Edge-pointer variable name (``P_p ∈ E_p ∪ {⊥}``; ``None`` encodes ``⊥``).
POINTER = "P"
#: Token-flag variable name (``T_p``).
TOKEN_FLAG = "T"
#: Lock-flag variable name (``L_p``, ``CC2``/``CC3`` only).
LOCK_FLAG = "L"

IDLE = "idle"
LOOKING = "looking"
WAITING = "waiting"
DONE = "done"

#: All statuses of Algorithm CC1.
CC1_STATUSES: Tuple[str, ...] = (IDLE, LOOKING, WAITING, DONE)
#: All statuses of Algorithms CC2 / CC3 (no ``idle``).
CC2_STATUSES: Tuple[str, ...] = (LOOKING, WAITING, DONE)


def is_waiting_status(status: str) -> bool:
    """``True`` iff the status maps to the problem's *waiting* state."""
    return status in (LOOKING, WAITING)


def is_meeting_status(status: str) -> bool:
    """``True`` iff the status can only occur while a meeting is (or was) held."""
    return status == DONE
