"""Command-line interface.

``python -m repro`` (or the installed ``repro-cc`` script) exposes the most
common operations:

* ``run``      -- simulate one algorithm on a named scenario and print metrics,
* ``bounds``   -- print the analytical quantities (minMM, AMM bounds, ...) of a scenario,
* ``compare``  -- run CC1/CC2/CC3 and all baselines on a scenario and print one table,
* ``scenarios``-- list the available scenarios.

Examples::

    repro-cc scenarios
    repro-cc run --scenario figure1 --algorithm cc2 --steps 2000
    repro-cc bounds --scenario figure2-impossibility
    repro-cc compare --scenario grid-3x3 --rounds 300
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.analysis.theory import bounds_for
from repro.baselines import (
    CentralizedGreedyCoordinator,
    DiningPhilosophersCoordinator,
    DrinkingPhilosophersCoordinator,
    KumarTokenCoordinator,
    ManagerTokenCoordinator,
)
from repro.core.runner import CommitteeCoordinator
from repro.metrics.throughput import measure_throughput
from repro.workloads.scenarios import paper_scenarios, scaling_scenarios, scenario_by_name


def _cmd_scenarios(_: argparse.Namespace) -> int:
    rows = [
        {"name": s.name, "n": s.n, "m": s.m, "description": s.description}
        for s in paper_scenarios() + scaling_scenarios()
    ]
    print(format_table(rows, title="Scenarios"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = scenario_by_name(args.scenario)
    coordinator = CommitteeCoordinator(
        scenario.hypergraph,
        algorithm=args.algorithm,
        token=args.token,
        seed=args.seed,
        engine=args.engine,
    )
    outcome = coordinator.run(
        max_steps=args.steps,
        discussion_steps=args.discussion,
        from_arbitrary=args.arbitrary,
    )
    row = {"scenario": scenario.name, "algorithm": args.algorithm}
    row.update(outcome.metrics.as_row())
    print(format_table([row], title=f"{args.algorithm.upper()} on {scenario.name}"))
    if args.verbose:
        for event in outcome.events[:50]:
            print(f"  {event.kind:9s} {tuple(event.committee.members)} at configuration {event.configuration_index}")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    scenario = scenario_by_name(args.scenario)
    bounds = bounds_for(scenario.hypergraph)
    row = {"scenario": scenario.name, "n": scenario.n, "m": scenario.m}
    row.update(bounds.as_row())
    print(format_table([row], title=f"Analytical bounds for {scenario.name}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = scenario_by_name(args.scenario)
    hypergraph = scenario.hypergraph
    rows = []
    for name in ("cc1", "cc2", "cc3"):
        coordinator = CommitteeCoordinator(hypergraph, algorithm=name, seed=args.seed)
        result = measure_throughput(coordinator.algorithm, max_steps=args.steps, seed=args.seed)
        row = {"algorithm": name}
        row.update(result.as_row())
        rows.append(row)
    baselines = [
        CentralizedGreedyCoordinator(hypergraph, seed=args.seed),
        DiningPhilosophersCoordinator(hypergraph, seed=args.seed),
        DrinkingPhilosophersCoordinator(hypergraph, seed=args.seed),
        ManagerTokenCoordinator(hypergraph, seed=args.seed),
        KumarTokenCoordinator(hypergraph, seed=args.seed),
    ]
    for baseline in baselines:
        result = baseline.run(rounds=args.rounds)
        row = {"algorithm": baseline.name}
        row.update(result.as_row())
        rows.append(row)
    print(format_table(rows, title=f"Comparison on {scenario.name}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-cc", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list available scenarios").set_defaults(func=_cmd_scenarios)

    run = sub.add_parser("run", help="run one algorithm on a scenario")
    run.add_argument("--scenario", default="figure1")
    run.add_argument("--algorithm", default="cc2", choices=["cc1", "cc2", "cc3"])
    run.add_argument("--token", default="tree", choices=["tree", "ring", "oracle"])
    run.add_argument(
        "--engine",
        default="dense",
        choices=["dense", "incremental"],
        help="execution engine: reference double-sweep (dense) or copy-on-write + enabled-set reuse (incremental)",
    )
    run.add_argument("--steps", type=int, default=2000)
    run.add_argument("--discussion", type=int, default=1)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--arbitrary", action="store_true", help="start from an arbitrary configuration")
    run.add_argument("--verbose", action="store_true", help="print meeting events")
    run.set_defaults(func=_cmd_run)

    bounds = sub.add_parser("bounds", help="print analytical bounds for a scenario")
    bounds.add_argument("--scenario", default="figure1")
    bounds.set_defaults(func=_cmd_bounds)

    compare = sub.add_parser("compare", help="compare CC1/CC2/CC3 and the baselines")
    compare.add_argument("--scenario", default="figure1")
    compare.add_argument("--steps", type=int, default=2000)
    compare.add_argument("--rounds", type=int, default=400)
    compare.add_argument("--seed", type=int, default=1)
    compare.set_defaults(func=_cmd_compare)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
