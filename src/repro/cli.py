"""Command-line interface.

``python -m repro`` (or the installed ``repro-cc`` script) exposes the most
common operations:

* ``run``      -- simulate one algorithm on a named scenario and print metrics,
* ``check``    -- run with the streaming spec monitors attached and print the
  Exclusion/Synchronization/Progress verdicts plus a fairness summary (works
  on sparse ``--sparse`` runs of any length; exits non-zero if any of the
  three checked properties is violated — fairness is informational),
* ``bounds``   -- print the analytical quantities (minMM, AMM bounds, ...) of a scenario,
* ``compare``  -- run CC1/CC2/CC3 and all baselines on a scenario and print one table,
* ``campaign`` -- expand a scenario × algorithm × engine × daemon × fault ×
  seed matrix (named and/or randomized scenarios) into seeded runs, execute
  them across ``--jobs`` worker processes with all streaming monitors
  attached, print the summary table and optionally write one JSONL row per
  run — streamed crash-safely as jobs complete and rewritten in job order
  at the end, byte-identical for any ``--jobs``.  ``--resume`` continues an
  interrupted ``--out`` file, ``--rerun-disagreements`` re-expands cells
  whose verdicts differ across seeds, ``--stream`` mirrors rows to a
  TCP/Unix socket, ``--collector`` (optionally with ``--shard I/N``) turns
  the process into one shard of a multi-machine campaign feeding a
  ``collect`` service.  Exit codes: 1 a checked property was violated, 2
  malformed matrix, 3 a worker raised (error rows present), 4 the
  collector was lost or rejected this shard,
* ``collect``  -- the merge point of a sharded campaign: listen on a
  TCP/Unix socket, lease job ranges to connecting shards (static
  ``--shard`` ranges and pull-based batches over the same protocol),
  validate and ack every row against the identically expanded matrix, and
  write the merged JSONL in job order — byte-identical to running the
  matrix locally with ``--jobs 1``.  A dead shard's undelivered range is
  re-dispatched to the surviving shards through the resume machinery,
* ``stats``    -- columnar aggregates over an existing campaign rows file
  (per-cell run/violation/error counts, step totals, Jain spread) served
  from an array-backed column store instead of reparsing JSONL per query,
* ``scenarios``-- list the available scenarios.

Examples::

    repro-cc scenarios
    repro-cc run --scenario figure1 --algorithm cc2 --steps 2000
    repro-cc check --scenario cycle-100 --engine incremental --sparse --steps 1000000
    repro-cc check --scenario figure1 --arbitrary --stop-on-violation
    repro-cc bounds --scenario figure2-impossibility
    repro-cc compare --scenario grid-3x3 --rounds 300
    repro-cc campaign --scenario figure1 --scenario grid-3x3 \\
        --algorithm cc1 --algorithm cc2 --random 4 --seeds 3 \\
        --jobs 4 --out rows.jsonl
    repro-cc collect --listen tcp:0.0.0.0:7777 --out merged.jsonl \\
        --scenario figure1 --seeds 8                  # on the head node
    repro-cc campaign --collector tcp:head:7777 --shard 1/3 \\
        --scenario figure1 --seeds 8 --jobs 4         # on each worker node
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.analysis.theory import bounds_for
from repro.baselines import (
    CentralizedGreedyCoordinator,
    DiningPhilosophersCoordinator,
    DrinkingPhilosophersCoordinator,
    KumarTokenCoordinator,
    ManagerTokenCoordinator,
)
from repro.campaign import (
    CampaignDriver,
    CampaignResult,
    CampaignSpec,
    Collector,
    ColumnStore,
    FaultSchedule,
    Finalizer,
    JsonlSink,
    ResumeError,
    RowSink,
    RunCache,
    ShardProtocolError,
    TeeSink,
    as_job_result,
    expand_jobs,
    read_rows,
    sink_from_spec,
    validate_rows_match_jobs,
)
from repro.campaign.sinks import row_line, write_lines_atomic
from repro.core.runner import CommitteeCoordinator
from repro.metrics.throughput import measure_throughput
from repro.workloads.scenarios import all_scenarios, scenario_by_name


def _cmd_scenarios(_: argparse.Namespace) -> int:
    rows = [
        {"name": s.name, "n": s.n, "m": s.m, "description": s.description}
        for s in all_scenarios()
    ]
    print(format_table(rows, title="Scenarios"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = scenario_by_name(args.scenario)
    coordinator = CommitteeCoordinator(
        scenario.hypergraph,
        algorithm=args.algorithm,
        token=args.token,
        seed=args.seed,
        engine=args.engine,
    )
    outcome = coordinator.run(
        max_steps=args.steps,
        discussion_steps=args.discussion,
        from_arbitrary=args.arbitrary,
    )
    row = {"scenario": scenario.name, "algorithm": args.algorithm}
    row.update(outcome.metrics.as_row())
    print(format_table([row], title=f"{args.algorithm.upper()} on {scenario.name}"))
    if args.verbose:
        for event in outcome.events[:50]:
            print(f"  {event.kind:9s} {tuple(event.committee.members)} at configuration {event.configuration_index}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    scenario = scenario_by_name(args.scenario)
    coordinator = CommitteeCoordinator(
        scenario.hypergraph,
        algorithm=args.algorithm,
        token=args.token,
        seed=args.seed,
        engine=args.engine,
    )
    outcome = coordinator.run(
        max_steps=args.steps,
        discussion_steps=args.discussion,
        from_arbitrary=args.arbitrary,
        record_configurations=not args.sparse,
        check=True,
        stop_on_violation=args.stop_on_violation,
        grace_steps=args.grace,
        check_discussion=args.discussion_spec,
    )
    spec = outcome.spec
    assert spec is not None
    rows = spec.as_rows()
    fairness = spec.fairness
    # Fairness is a liveness notion rendered as counts on a finite run, so
    # it is reported informationally ("holds" stays blank) and does not
    # drive the exit code — only Exclusion/Synchronization/Progress do.
    rows.append(
        {
            "property": "Fairness",
            "holds": "-",
            "violations": (
                f"{len(fairness.starved_professors)}p/"
                f"{len(fairness.starved_committees)}c starved"
            ),
            "first": f"jain={fairness.professor_jain_index():.3f}",
        }
    )
    mode = "sparse" if args.sparse else "dense"
    title = (
        f"Spec check: {args.algorithm.upper()} on {scenario.name} "
        f"({args.engine} engine, {mode}, {outcome.steps} steps)"
    )
    print(format_table(rows, title=title))
    if outcome.result.stop_reason == "violation":
        print(f"run halted at first violation (step {spec.first_violation.step_index}):")
    if spec.first_violation is not None:
        print(spec.first_violation.describe())
    if fairness.starved_professors:
        print(f"starved professors: {fairness.starved_professors}")
    if fairness.starved_committees:
        print(f"starved committees: {fairness.starved_committees}")
    return 0 if spec.all_hold else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    scenario = scenario_by_name(args.scenario)
    bounds = bounds_for(scenario.hypergraph)
    row = {"scenario": scenario.name, "n": scenario.n, "m": scenario.m}
    row.update(bounds.as_row())
    print(format_table([row], title=f"Analytical bounds for {scenario.name}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = scenario_by_name(args.scenario)
    hypergraph = scenario.hypergraph
    rows = []
    for name in ("cc1", "cc2", "cc3"):
        coordinator = CommitteeCoordinator(hypergraph, algorithm=name, seed=args.seed)
        result = measure_throughput(coordinator.algorithm, max_steps=args.steps, seed=args.seed)
        row = {"algorithm": name}
        row.update(result.as_row())
        rows.append(row)
    baselines = [
        CentralizedGreedyCoordinator(hypergraph, seed=args.seed),
        DiningPhilosophersCoordinator(hypergraph, seed=args.seed),
        DrinkingPhilosophersCoordinator(hypergraph, seed=args.seed),
        ManagerTokenCoordinator(hypergraph, seed=args.seed),
        KumarTokenCoordinator(hypergraph, seed=args.seed),
    ]
    for baseline in baselines:
        result = baseline.run(rounds=args.rounds)
        row = {"algorithm": baseline.name}
        row.update(result.as_row())
        rows.append(row)
    print(format_table(rows, title=f"Comparison on {scenario.name}"))
    return 0


#: ``campaign`` flags that only shape *named*-scenario jobs; randomized
#: scenarios draw their own token/daemon/environment/fault dimensions from
#: their seed, so a random-only campaign silently ignoring these would be a
#: footgun — the CLI warns instead (see _warn_ignored_random_axes).
_NAMED_ONLY_AXES = ("--token", "--daemon", "--faults", "--environment", "--arbitrary")


def _warn_ignored_random_axes(args: argparse.Namespace) -> None:
    given = {
        "--token": bool(args.token),
        "--daemon": bool(args.daemon),
        "--faults": bool(args.faults),
        "--environment": args.environment != "always",
        "--arbitrary": args.arbitrary,
    }
    ignored = [flag for flag in _NAMED_ONLY_AXES if given[flag]]
    if ignored:
        print(
            f"campaign: warning: ignoring {', '.join(ignored)} — randomized "
            "scenarios draw their own token/daemon/environment/fault "
            "dimensions from their seed; these flags only apply to named "
            "scenarios (add --scenario to use them)",
            file=sys.stderr,
        )


def _expand_matrix(args: argparse.Namespace):
    """``(spec, jobs)`` from the shared matrix flags (campaign/collect).

    Every participant of a sharded campaign calls this with the same flag
    values, so everyone expands the identical job list — the property the
    collector's handshake fingerprint then enforces.  Raises ``KeyError`` /
    ``ValueError`` for malformed matrices (the CLI maps those to exit 2).
    """
    scenarios = tuple(args.scenario or ())
    if not scenarios and not args.random:
        # Mirror the run/check default so a bare `repro-cc campaign` works.
        scenarios = ("figure1",)
    if not scenarios and args.random:
        _warn_ignored_random_axes(args)
    spec = CampaignSpec(
        scenarios=scenarios,
        random_count=args.random,
        random_base_seed=args.random_seed,
        algorithms=tuple(args.algorithm or ("cc2",)),
        tokens=tuple(args.token or ("tree",)),
        engines=tuple(args.engine or ("incremental",)),
        daemons=tuple(args.daemon or ("weakly_fair",)),
        faults=tuple(FaultSchedule.parse(text) for text in (args.faults or ("none",))),
        seeds=tuple(range(args.seed, args.seed + args.seeds)),
        max_steps=args.steps,
        discussion_steps=args.discussion,
        environment=args.environment,
        grace_steps=args.grace,
        arbitrary_start=args.arbitrary,
    )
    return spec, expand_jobs(spec)


def _parse_shard(text: str):
    """``"I/N"`` (1-based) -> 0-based ``(index, count)``; raises ValueError."""
    head, sep, tail = text.partition("/")
    if not sep or not head.isdigit() or not tail.isdigit():
        raise ValueError(f"bad --shard {text!r}: expected I/N, e.g. 2/3")
    index, count = int(head), int(tail)
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"bad --shard {text!r}: need 1 <= I <= N")
    return index - 1, count


def _check_campaign_flags(args: argparse.Namespace, shard_spec) -> None:
    """Reject flag combinations the pipeline cannot honor (CLI exit 2)."""
    if shard_spec is not None and not args.collector and not args.out:
        raise ValueError(
            "--shard without --collector needs --out (somewhere to "
            "keep the slice's rows for a later merge)"
        )
    if args.collector and args.rerun_disagreements:
        raise ValueError(
            "--rerun-disagreements cannot be combined with --collector "
            "(adaptive re-run jobs fall outside the matrix the shards and "
            "the collector agreed on)"
        )
    if args.resume and not args.out:
        raise ValueError("--resume requires --out (the JSONL file to continue)")


def _warn(message: str) -> None:
    print(message, file=sys.stderr)


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Flag-parsing adapter over the layered campaign driver.

    Everything campaign-shaped — resume reconciliation, cache probing,
    dispatch, row fan-out, the summary and the atomic job-order rewrite —
    lives in :class:`repro.campaign.CampaignDriver`; this function only
    parses flags, builds the sinks (resume appends, so prior rows are
    validated *before* a sink may touch the file) and maps the driver's
    exceptions onto exit codes.
    """
    sinks: List[RowSink] = []
    try:
        shard_spec = _parse_shard(args.shard) if args.shard else None
        _check_campaign_flags(args, shard_spec)
        _spec, all_jobs = _expand_matrix(args)
        prior_rows: List[dict] = []
        if args.resume:
            prior_rows = read_rows(args.out)
            validate_rows_match_jobs(all_jobs, prior_rows)
        if args.out:
            sinks.append(JsonlSink(args.out, append=args.resume))
        if args.stream:
            sinks.append(sink_from_spec(args.stream))
    except (KeyError, ValueError, ResumeError) as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    driver = CampaignDriver(
        all_jobs,
        jobs=args.jobs,
        mp_context=args.mp_context,
        sink=(sinks[0] if len(sinks) == 1 else TeeSink(sinks)) if sinks else None,
        timing=args.timing,
        cache=RunCache(args.cache) if args.cache else None,
        prior_rows=prior_rows,
        retry_errors=args.retry_errors,
        rerun_disagreements=args.rerun_disagreements,
        shard=shard_spec,
        collector=args.collector,
        out=args.out,
        info=print,
        warn=_warn,
    )
    try:
        driver.execute()
    except (ConnectionError, ShardProtocolError) as exc:
        # The collector vanished past the reconnect budget, or rejected this
        # shard outright (mismatched matrix).  Locally completed rows are in
        # --out (if given); the collector re-dispatches the rest.
        print(f"campaign: {exc}", file=sys.stderr)
        return 4
    except KeyboardInterrupt:
        if args.out:
            print(
                f"\ncampaign: interrupted — completed rows are in {args.out}; "
                "rerun with --resume to finish the remaining jobs",
                file=sys.stderr,
            )
        return 130
    finally:
        for open_sink in sinks:
            open_sink.close()
    try:
        return driver.finalize().exit_code
    except KeyboardInterrupt:
        if args.out:
            print(
                f"\ncampaign: interrupted during the final rewrite — "
                f"completed rows are in {args.out}; rerun with --resume "
                "to finish",
                file=sys.stderr,
            )
        return 130


def _write_rows(path: str, rows) -> None:
    """Atomically write rows via the canonical serializer (byte-identity).

    ``write_lines_atomic`` means a crash mid-write can never destroy the
    rows already collected at ``path`` — the collector's merge dump shares
    the campaign rewrite's atomicity guarantee.
    """
    write_lines_atomic(path, (row_line(row) for row in rows))


def _cmd_collect(args: argparse.Namespace) -> int:
    try:
        _spec, all_jobs = _expand_matrix(args)
    except (KeyError, ValueError) as exc:
        print(f"collect: {exc}", file=sys.stderr)
        return 2
    prior_rows: List[dict] = []
    if args.resume:
        try:
            prior_rows = read_rows(args.out)
        except ResumeError as exc:
            print(f"collect: {exc}", file=sys.stderr)
            return 2
    try:
        collector = Collector(all_jobs, args.listen, prior_rows=prior_rows)
    except (ResumeError, ValueError) as exc:
        print(f"collect: {exc}", file=sys.stderr)
        return 2
    try:
        collector.start()
    except OSError as exc:
        print(f"collect: cannot listen on {args.listen}: {exc}", file=sys.stderr)
        return 2
    pending = collector.state.pending_count()
    resumed = len(all_jobs) - pending
    print(
        f"collect: listening on {collector.address} — "
        f"{pending} of {len(all_jobs)} job(s) to collect"
        + (f" ({resumed} resumed)" if resumed else "")
    )
    try:
        rows = collector.run(timeout=args.timeout)
    except KeyboardInterrupt:
        collector.close()
        _write_rows(args.out, collector.state.merged_rows())
        print(
            f"\ncollect: interrupted — collected rows are in {args.out}; "
            "rerun with --resume to collect the remaining jobs",
            file=sys.stderr,
        )
        return 130
    except TimeoutError as exc:
        _write_rows(args.out, collector.state.merged_rows())
        print(
            f"collect: {exc} — collected rows are in {args.out}; "
            "rerun with --resume to collect the remaining jobs",
            file=sys.stderr,
        )
        return 4
    results = [as_job_result(row) for row in rows]
    campaign = CampaignResult(
        jobs=list(all_jobs),
        results=results,
        workers=max(1, len(collector.state.shards)),
        elapsed_seconds=0.0,
    )
    # ``rows`` + ``write_before_summary``: the merged rows are written
    # verbatim (not re-derived) and ahead of the table, so whatever the
    # shards sent — including --timing fields — survives byte-for-byte.
    outcome = Finalizer(out=args.out, info=print, prefix="collect").finalize(
        campaign,
        title=(
            f"Collected campaign: {len(rows)} rows via "
            f"{len(collector.state.shards)} shard connection(s) "
            f"({campaign.violations} with violations, {campaign.errors} errors)"
        ),
        rows=rows,
        write_before_summary=True,
    )
    return outcome.exit_code


def _cmd_stats(args: argparse.Namespace) -> int:
    """Columnar aggregates over an existing rows file, without re-running.

    Loads the JSONL into a :class:`~repro.campaign.store.ColumnStore` once
    and serves every aggregate (per-cell counts, step totals, Jain spread,
    status breakdown) from the typed columns — the query path the summary
    table itself uses.
    """
    try:
        rows = read_rows(args.rows)
    except ResumeError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print(f"stats: no rows in {args.rows}", file=sys.stderr)
        return 2
    store = ColumnStore.from_rows(rows)
    table = []
    for cell in store.cell_stats():
        table.append(
            {
                "scenario": cell["scenario"],
                "algorithm": cell["algorithm"],
                "runs": cell["runs"],
                "violations": cell["violations"],
                "errors": cell["errors"],
                "steps": cell["steps"],
                "jain min..max": (
                    f"{cell['jain_min']:.3f}..{cell['jain_max']:.3f}"
                    if cell["jain_min"] is not None
                    else "-"
                ),
            }
        )
    table.append(
        {
            "scenario": "TOTAL",
            "algorithm": "-",
            "runs": len(store),
            "violations": store.violation_count(),
            "errors": store.error_count(),
            "steps": store.total_steps(),
            "jain min..max": "-",
        }
    )
    print(format_table(table, title=f"Stats: {len(store)} rows from {args.rows}"))
    return 0


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return parsed


def _non_negative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return parsed


def _add_matrix_arguments(parser: argparse.ArgumentParser) -> None:
    """The campaign-matrix flags, shared verbatim by ``campaign`` and
    ``collect`` — both must expand the identical job list (the collector's
    handshake fingerprint rejects shards whose matrix drifted)."""
    parser.add_argument(
        "--scenario",
        action="append",
        help="named scenario (repeatable; default figure1 unless --random > 0)",
    )
    parser.add_argument(
        "--random",
        type=_non_negative_int,
        default=0,
        help="number of randomized scenarios to add (seeded, see "
        "repro.workloads.random_scenarios)",
    )
    parser.add_argument(
        "--random-seed",
        type=int,
        default=0,
        help="base seed for the randomized scenarios",
    )
    parser.add_argument(
        "--algorithm",
        action="append",
        choices=["cc1", "cc2", "cc3"],
        help="algorithm axis (repeatable; default cc2)",
    )
    parser.add_argument(
        "--token",
        action="append",
        choices=["tree", "ring", "oracle"],
        help="token substrate axis for named scenarios (repeatable; default tree)",
    )
    parser.add_argument(
        "--engine",
        action="append",
        choices=["auto", "dense", "incremental", "batched"],
        help="engine axis (repeatable; default incremental; 'batched' runs a "
        "cell's seed sweep in numpy lockstep — rows stay byte-identical to "
        "solo runs, requires the repro-cc[batched] extra)",
    )
    parser.add_argument(
        "--daemon",
        action="append",
        choices=["weakly_fair", "synchronous"],
        help="daemon axis for named scenarios (repeatable; default weakly_fair)",
    )
    parser.add_argument(
        "--faults",
        action="append",
        help="fault-schedule axis for named scenarios: 'none' or "
        "'EVERY:FRACTION', e.g. 50:0.4 (repeatable; default none)",
    )
    parser.add_argument(
        "--seeds",
        type=_positive_int,
        default=1,
        help="number of run seeds per matrix cell (consecutive from --seed)",
    )
    parser.add_argument("--seed", type=int, default=1, help="base run seed")
    parser.add_argument("--steps", type=_positive_int, default=2000, help="step budget per run")
    parser.add_argument("--discussion", type=int, default=1, help="voluntary discussion length")
    parser.add_argument(
        "--environment",
        default="always",
        help="request model for named scenarios: always, probabilistic[:P] "
        "or bursty[:ACTIVE:QUIET]",
    )
    parser.add_argument(
        "--grace",
        type=_positive_int,
        default=None,
        help="Progress tail window, >= 1 (default: half the trace)",
    )
    parser.add_argument(
        "--arbitrary",
        action="store_true",
        help="start named-scenario runs from arbitrary configurations",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-cc", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list available scenarios").set_defaults(func=_cmd_scenarios)

    run = sub.add_parser("run", help="run one algorithm on a scenario")
    run.add_argument("--scenario", default="figure1")
    run.add_argument("--algorithm", default="cc2", choices=["cc1", "cc2", "cc3"])
    run.add_argument("--token", default="tree", choices=["tree", "ring", "oracle"])
    run.add_argument(
        "--engine",
        default="incremental",
        choices=["auto", "dense", "incremental"],
        help="execution engine (default: incremental — copy-on-write + "
        "delta-driven enabled-set reuse, trace-identical to the reference "
        "double-sweep dense engine for any seed; 'auto' additionally falls "
        "back to dense for environments with side-effecting guards, which "
        "no CLI workload has)",
    )
    run.add_argument("--steps", type=int, default=2000)
    run.add_argument("--discussion", type=int, default=1)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--arbitrary", action="store_true", help="start from an arbitrary configuration")
    run.add_argument("--verbose", action="store_true", help="print meeting events")
    run.set_defaults(func=_cmd_run)

    check = sub.add_parser(
        "check",
        help="run with streaming spec monitors and print property verdicts",
    )
    check.add_argument("--scenario", default="figure1")
    check.add_argument("--algorithm", default="cc2", choices=["cc1", "cc2", "cc3"])
    check.add_argument("--token", default="tree", choices=["tree", "ring", "oracle"])
    check.add_argument(
        "--engine",
        default="incremental",
        choices=["auto", "dense", "incremental"],
        help="execution engine (default: incremental — spec checking is the "
        "sparse-run workhorse; verdicts are identical on both engines)",
    )
    check.add_argument(
        "--steps",
        type=_positive_int,
        default=2000,
        help="step budget, >= 1 (a zero-step run would vacuously 'hold')",
    )
    check.add_argument("--discussion", type=int, default=1)
    check.add_argument("--seed", type=int, default=1)
    check.add_argument(
        "--sparse",
        action="store_true",
        help="record_configurations=False: verdicts are computed online, in "
        "memory constant in the run length (O(n + m))",
    )
    check.add_argument("--arbitrary", action="store_true", help="start from an arbitrary configuration")
    check.add_argument(
        "--stop-on-violation",
        action="store_true",
        help="halt at the first safety violation and print the counterexample window",
    )
    check.add_argument(
        "--grace",
        type=_positive_int,
        default=None,
        help="Progress tail window in configurations, >= 1 (default: half the trace)",
    )
    check.add_argument(
        "--discussion-spec",
        action="store_true",
        help="also stream the 2-phase discussion checkers (EssentialDiscussion/"
        "VoluntaryDiscussion rows; their verdicts then drive the exit code too)",
    )
    check.set_defaults(func=_cmd_check)

    bounds = sub.add_parser("bounds", help="print analytical bounds for a scenario")
    bounds.add_argument("--scenario", default="figure1")
    bounds.set_defaults(func=_cmd_bounds)

    compare = sub.add_parser("compare", help="compare CC1/CC2/CC3 and the baselines")
    compare.add_argument("--scenario", default="figure1")
    compare.add_argument("--steps", type=int, default=2000)
    compare.add_argument("--rounds", type=int, default=400)
    compare.add_argument("--seed", type=int, default=1)
    compare.set_defaults(func=_cmd_compare)

    campaign = sub.add_parser(
        "campaign",
        help="run a scenario matrix across worker processes with all "
        "streaming monitors attached",
    )
    _add_matrix_arguments(campaign)
    campaign.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes (rows are byte-identical for any value)",
    )
    campaign.add_argument(
        "--out",
        default=None,
        help="write one JSON row per run to this file; rows are flushed as "
        "jobs complete (crash-safe) and rewritten in job order at the end",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted campaign: read the --out file, keep "
        "its completed rows and execute only the missing jobs (the final "
        "file is byte-identical to an uninterrupted run)",
    )
    campaign.add_argument(
        "--retry-errors",
        action="store_true",
        help="with --resume: also re-execute jobs whose previous row was an "
        "error row (transient worker failures)",
    )
    campaign.add_argument(
        "--rerun-disagreements",
        action="store_true",
        help="after the matrix completes, re-run every cell whose verdicts "
        "disagree across seeds with as many fresh seeds (appended "
        "deterministically)",
    )
    campaign.add_argument(
        "--stream",
        default=None,
        help="also stream each row as it completes to a socket: "
        "'tcp:HOST:PORT' or 'unix:PATH' (newline-delimited JSON, "
        "completion order)",
    )
    campaign.add_argument(
        "--timing",
        action="store_true",
        help="include per-run steps/sec in --out rows (machine-dependent: "
        "breaks byte-for-byte reproducibility)",
    )
    campaign.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run only the I-th of N contiguous job ranges (1-based); with "
        "--collector the range is announced and acked, without it --out "
        "keeps the slice for a later merge",
    )
    campaign.add_argument(
        "--collector",
        default=None,
        metavar="ADDRESS",
        help="deliver rows (acked, reconnecting) to a `repro-cc collect` "
        "service at 'tcp:HOST:PORT' or 'unix:PATH'; without --shard, pull "
        "job batches from it until the campaign is done",
    )
    campaign.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="content-addressed run cache: jobs whose identity block "
        "already has a cached row skip execution and emit the stored row "
        "(byte-identical — rows are pure functions of their jobs); every "
        "freshly executed non-error row is stored back",
    )
    campaign.add_argument(
        "--mp-context",
        choices=["spawn", "fork"],
        default="spawn",
        help="multiprocessing start method for the --jobs worker pool "
        "(default spawn — available everywhere and the strictest about "
        "what a worker receives; fork skips the per-worker interpreter "
        "start-up that dominates very small campaigns on POSIX; rows are "
        "byte-identical either way)",
    )
    campaign.set_defaults(func=_cmd_campaign)

    collect = sub.add_parser(
        "collect",
        help="collector service for sharded campaigns: lease job ranges to "
        "shards, validate and merge their rows byte-identically",
    )
    collect.add_argument(
        "--listen",
        required=True,
        help="address to listen on: 'tcp:HOST:PORT' (PORT 0 picks a free "
        "port) or 'unix:PATH'",
    )
    collect.add_argument(
        "--out",
        required=True,
        help="write the merged campaign JSONL here, in job order "
        "(byte-identical to running the same matrix with --jobs 1)",
    )
    collect.add_argument(
        "--resume",
        action="store_true",
        help="preload the rows already present in --out; shards are only "
        "handed the missing jobs",
    )
    collect.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up after this many seconds without completion (collected "
        "rows are written for a --resume retry; exit 4)",
    )
    _add_matrix_arguments(collect)
    collect.set_defaults(func=_cmd_collect)

    stats = sub.add_parser(
        "stats",
        help="columnar aggregates over an existing campaign rows file "
        "(per-cell counts, step totals, Jain spread) without re-running",
    )
    stats.add_argument(
        "rows",
        help="campaign JSONL file (a campaign/collect --out artifact)",
    )
    stats.set_defaults(func=_cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
