from setuptools import find_packages, setup

setup(
    name="repro-cc",
    version="0.7.0",
    description=(
        "Reproduction of snap-stabilizing committee coordination "
        "(Bonakdarpour, Devismes, Petit — IPDPS 2011) with a deterministic "
        "campaign engine and the repro-lint static-analysis suite"
    ),
    python_requires=">=3.8",
    # Core stays dependency-free; the batched lockstep engine is the one
    # numpy consumer and degrades gracefully without it (solo fallback,
    # CLI exit 2 with this extra's name).
    extras_require={"batched": ["numpy"]},
    package_dir={"repro": "src/repro"},
    packages=find_packages("src") + ["tools", "tools.staticcheck"],
    entry_points={
        "console_scripts": [
            "repro-cc = repro.cli:main",
            "repro-lint = tools.staticcheck.cli:main",
        ]
    },
)
