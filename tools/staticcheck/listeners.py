"""RL4xx — scheduler listener / observer protocol conformance.

Scheduler step listeners (``observe_step(configuration, record)`` methods
attached via ``step_listener=``) run *inside* the scheduler loop.  The
contract (docs/ARCHITECTURE.md, "observer protocol") has two load-bearing
clauses this pass checks statically:

========  ==================================================================
RL401     ``observe_step`` may raise only :class:`repro.kernel.StopRun` (or
          a subclass, e.g. ``SpecViolationError``) — anything else aborts
          the scheduler mid-step and, under a campaign worker, poisons the
          whole job batch instead of recording a clean early stop
RL402     an epoch-sensitive listener: ``observe_step`` consumes the
          incremental ``record.delta`` but neither handles configuration
          epochs itself (no ``epoch`` bookkeeping anywhere in the class)
          nor delegates the delta to a stream that does — after
          ``set_configuration`` its incremental state silently desyncs
========  ==================================================================

RL401 resolves raised names through the project class index, so a local
``class SpecViolationError(StopRun)`` is accepted without importing
anything; a bare ``raise`` (re-raise inside ``except``) is always fine.
RL402 accepts either ``epoch`` bookkeeping in the class body or passing the
delta onward as a call argument (delegation to ``MeetingEventStream``-style
helpers, which own the epoch resync).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from tools.staticcheck.diagnostics import Diagnostic, apply_suppressions
from tools.staticcheck.project import Project, SourceFile

#: Exception names that are (or alias) the sanctioned scheduler stop signal.
STOP_RUN_NAMES = {"StopRun"}

#: Builtin control-flow exceptions a listener may legitimately let escape.
ALWAYS_ALLOWED = {"StopIteration", "KeyboardInterrupt", "NotImplementedError"}

CODES: Dict[str, str] = {
    "RL401": "observe_step raises a non-StopRun exception inside the scheduler loop",
    "RL402": "delta-consuming listener has no epoch handling and does not delegate",
}

LISTENER_METHOD = "observe_step"


class ListenerProtocolPass:
    name = "listeners"
    codes = CODES
    scope = ("src/repro/",)

    def run(self, project: Project) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for source in project.files_in_scope(self.scope):
            file_diags: List[Diagnostic] = []
            for cls in source.classes.values():
                method = self._own_method(cls, LISTENER_METHOD)
                if method is None:
                    continue
                file_diags.extend(self._check_raises(project, source, cls, method))
                file_diags.extend(self._check_epoch_handling(source, cls, method))
            diagnostics.extend(apply_suppressions(file_diags, source.suppressions))
        return diagnostics

    @staticmethod
    def _own_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
        for node in cls.body:
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
        return None

    # ------------------------------------------------------------------ #
    # RL401
    # ------------------------------------------------------------------ #
    def _check_raises(
        self, project: Project, source: SourceFile, cls: ast.ClassDef, method: ast.FunctionDef
    ) -> List[Diagnostic]:
        found: List[Diagnostic] = []
        for node in ast.walk(method):
            if not isinstance(node, ast.Raise):
                continue
            if node.exc is None:
                continue  # bare re-raise inside except: fine
            name = self._raised_name(node.exc)
            if name is None:
                # ``raise exc_variable`` / dynamic — assume it re-raises a
                # caught exception; the scheduler-loop contract is about
                # exceptions *originated* here.
                continue
            if name in STOP_RUN_NAMES or name in ALWAYS_ALLOWED:
                continue
            if self._derives_from_stop_run(project, source, name):
                continue
            found.append(
                Diagnostic(
                    source.rel,
                    node.lineno,
                    "RL401",
                    f"{cls.name}.observe_step raises {name}, which does not derive "
                    "from StopRun; inside the scheduler loop this aborts the run "
                    "instead of recording a clean early stop (raise StopRun or a "
                    "subclass, or handle the condition)",
                )
            )
        return found

    @staticmethod
    def _raised_name(exc: ast.expr) -> Optional[str]:
        node = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _derives_from_stop_run(self, project: Project, source: SourceFile, name: str) -> bool:
        cls = source.classes.get(name)
        defining_source = source
        if cls is None and name in source.from_imports:
            module_name, original = source.from_imports[name]
            target = project.modules.get(module_name)
            if target is not None:
                cls = target.classes.get(original)
                defining_source = target
        if cls is None:
            return False
        return bool(project.base_names(defining_source, cls) & STOP_RUN_NAMES)

    # ------------------------------------------------------------------ #
    # RL402
    # ------------------------------------------------------------------ #
    def _check_epoch_handling(
        self, source: SourceFile, cls: ast.ClassDef, method: ast.FunctionDef
    ) -> List[Diagnostic]:
        if not self._consumes_delta(method):
            return []
        if self._mentions_epoch(cls):
            return []
        if self._delegates_delta(method):
            return []
        return [
            Diagnostic(
                source.rel,
                method.lineno,
                "RL402",
                f"{cls.name}.observe_step consumes record.delta but the class "
                "neither tracks configuration epochs nor delegates the delta to "
                "an epoch-aware stream; after set_configuration its incremental "
                "state silently desyncs (compare delta.epoch, resync on mismatch)",
            )
        ]

    @staticmethod
    def _consumes_delta(method: ast.FunctionDef) -> bool:
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute) and node.attr == "delta":
                return True
            if isinstance(node, ast.Name) and node.id == "delta":
                return True
        return False

    @staticmethod
    def _mentions_epoch(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Attribute) and "epoch" in node.attr:
                return True
            if isinstance(node, ast.Name) and "epoch" in node.id:
                return True
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                continue
        return False

    @staticmethod
    def _delegates_delta(method: ast.FunctionDef) -> bool:
        """``self._stream.observe(configuration, delta)`` — delta handed on."""
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == "delta":
                    return True
                if isinstance(arg, ast.Attribute) and arg.attr == "delta":
                    return True
        return False
