"""RC0xx — the historical ``tools/check_repo.py`` checks as registry passes.

The repo-hygiene checks predate the AST suite and are *dynamic* (they
import ``repro``, introspect the live argparse parser, pickle things, run
``git ls-files``) — exactly what they need to be to catch drift between docs
and code.  Migrating them into the pass registry gives them the shared
``file:line: CODE message`` diagnostic shape, the one CLI and the one JSON
format, without rewriting their battle-tested implementations: each pass
wraps the corresponding ``check_*`` function and re-parses its error strings
into :class:`~tools.staticcheck.diagnostics.Diagnostic` rows.

========  ==============================================================
RC001     tracked bytecode artefacts (``.pyc`` / ``__pycache__``)
RC002     broken docs links / dangling ``repro.*`` module references
RC003     ``docs/CLI.md`` flag drift against ``repro.cli.build_parser()``
RC004     ``benchmarks/perf_rows.jsonl`` row-schema violations
RC005     spawn entry points not resolvable/picklable from a worker
RC006     campaign row-schema drift / non-byte-identical resume round-trip
RC007     row sink classes or fresh instances that do not pickle
RC008     collector-merged shard streams not byte-identical to ``--jobs 1``
RC009     run-cache key drift against the row identity block
RC010     ``repro/cli.py`` imports dispatch machinery (thin-adapter breach)
========  ==============================================================

These passes only run against the real repo layout; a fixture-corpus
project (``enforce_scopes=False``) gets an empty result, so the AST corpus
tests never depend on importing ``repro``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Callable, Dict, List

from tools.staticcheck.diagnostics import Diagnostic
from tools.staticcheck.project import Project

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: ``path:line: message`` / ``path: message`` prefixes inside check_repo's
#: human-readable error strings (e.g. ``docs/CLI.md: broken relative link``,
#: ``benchmarks/perf_rows.jsonl:12: not valid JSON``).
_LOCATED_RE = re.compile(
    r"^(?P<path>[A-Za-z0-9_./-]+\.(?:py|md|jsonl|cfg|toml|ini)):(?:(?P<line>\d+):)?\s*(?P<msg>.+)$"
)


def _load_check_repo():
    if str(REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(REPO_ROOT))
    from tools import check_repo

    return check_repo


class _RepoCheckPass:
    """One migrated hygiene check: wrap ``check_*`` and locate its errors."""

    #: Subclasses set these.
    name: str = ""
    code: str = ""
    description: str = ""
    default_path: str = "."
    codes: Dict[str, str] = {}

    def run(self, project: Project) -> List[Diagnostic]:
        if not project.enforce_scopes:
            return []  # fixture corpus: dynamic repo checks do not apply
        errors = self._check(_load_check_repo())
        return [self._locate(error) for error in errors]

    def _check(self, check_repo) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _locate(self, error: str) -> Diagnostic:
        match = _LOCATED_RE.match(error)
        if match:
            return Diagnostic(
                match.group("path"),
                int(match.group("line") or 1),
                self.code,
                match.group("msg"),
            )
        return Diagnostic(self.default_path, 1, self.code, error)


def _make_pass(
    name: str, code: str, description: str, default_path: str, func_name: str
) -> type:
    def _check(self, check_repo) -> List[str]:
        return getattr(check_repo, func_name)()

    return type(
        f"RepoCheck_{func_name}",
        (_RepoCheckPass,),
        {
            "name": name,
            "code": code,
            "description": description,
            "default_path": default_path,
            "codes": {code: description},
            "_check": _check,
        },
    )


REPO_CHECK_PASSES = (
    _make_pass(
        "repo-bytecode", "RC001",
        "tracked bytecode artefact (.pyc / __pycache__) in the git index",
        ".gitignore", "check_no_tracked_bytecode",
    ),
    _make_pass(
        "repo-doc-links", "RC002",
        "broken docs link or dangling module/benchmark reference",
        "README.md", "check_doc_links",
    ),
    _make_pass(
        "repo-cli-docs", "RC003",
        "docs/CLI.md flag drift against the live argparse parser",
        "docs/CLI.md", "check_cli_docs",
    ),
    _make_pass(
        "repo-perf-rows", "RC004",
        "benchmarks/perf_rows.jsonl row violates its bench schema",
        "benchmarks/perf_rows.jsonl", "check_perf_rows",
    ),
    _make_pass(
        "repo-spawn-entry", "RC005",
        "spawn entry point not resolvable/picklable from a worker",
        "src/repro/campaign/__init__.py", "check_spawn_entry_points",
    ),
    _make_pass(
        "repo-campaign-rows", "RC006",
        "campaign row schema drift or non-byte-identical resume round-trip",
        "src/repro/campaign/jobs.py", "check_campaign_rows",
    ),
    _make_pass(
        "repo-sinks", "RC007",
        "row sink class or fresh instance does not pickle",
        "src/repro/campaign/sinks.py", "check_sink_picklability",
    ),
    _make_pass(
        "repo-collector", "RC008",
        "control-schema drift or collector merge not byte-identical to --jobs 1",
        "src/repro/campaign/shard.py", "check_collector_merge",
    ),
    _make_pass(
        "repo-run-cache", "RC009",
        "run-cache key drift against ROW_IDENTITY_ATTRS (identity not fully keyed)",
        "src/repro/campaign/store.py", "check_run_cache_key",
    ),
    _make_pass(
        "repo-cli-adapter", "RC010",
        "repro/cli.py imports multiprocessing/socket/repro.campaign.batched "
        "directly (dispatch must go through repro.campaign.driver)",
        "src/repro/cli.py", "check_cli_thin_adapter",
    ),
)
