"""RL3xx — spawn-safety for the multiprocessing campaign engine.

The campaign engine uses the **spawn** start method semantics as its
portability baseline: a worker process re-imports modules from scratch and
resolves every callable it receives *by dotted name* through pickle.  Three
things break that, and all three are statically visible:

========  ==================================================================
RL301     a module that a spawned worker imports (statically reachable from
          the modules of ``SPAWN_ENTRY_POINTS``) executes a side-effecting
          bare call at import time — every worker would re-run it
RL302     a lambda / nested function handed to a pool API
          (``Pool.imap_unordered``, ``apply_async``, ``Process(target=)``,
          executor ``submit``/``map``) — unpicklable under spawn
RL303     a ``SPAWN_ENTRY_POINTS`` entry whose dotted name does not resolve
          to a top-level ``def`` of its module — a worker could not import it
========  ==================================================================

Reachability is computed over the project's *static* import graph (``import
x`` / ``from x import y`` statements), starting from each entry point's
module; no code is executed.  Fixture projects treat every file as
worker-reachable so the corpus can exercise RL301 directly.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from tools.staticcheck.diagnostics import Diagnostic, apply_suppressions
from tools.staticcheck.project import Project, SourceFile

#: Pool / executor methods that ship their callable argument to a worker.
POOL_APIS = {
    "apply", "apply_async", "imap", "imap_unordered", "map", "map_async",
    "starmap", "starmap_async", "submit",
}

#: Bare module-level calls that are well-known import-time idioms, not work.
BENIGN_MODULE_CALLS = {
    "register", "filterwarnings", "simplefilter", "seterr", "freeze_support",
}

CODES: Dict[str, str] = {
    "RL301": "worker-imported module runs a side-effecting call at import time",
    "RL302": "lambda/nested function handed to a pool API (unpicklable under spawn)",
    "RL303": "SPAWN_ENTRY_POINTS entry does not name a top-level function",
}


def _call_tail(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class SpawnSafetyPass:
    name = "spawn-safety"
    codes = CODES
    scope = ("src/repro/",)

    def run(self, project: Project) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        entry_points = self._entry_points(project)
        reachable = self._reachable_modules(project, entry_points)

        for source in project.files_in_scope(self.scope):
            file_diags: List[Diagnostic] = []
            worker_imported = (
                not project.enforce_scopes
                or (source.module is not None and source.module in reachable)
            )
            if worker_imported:
                file_diags.extend(self._check_import_side_effects(source))
            file_diags.extend(self._check_pool_calls(source))
            file_diags.extend(self._check_entry_declarations(project, source, entry_points))
            diagnostics.extend(apply_suppressions(file_diags, source.suppressions))
        return diagnostics

    # ------------------------------------------------------------------ #
    # entry points & import reachability
    # ------------------------------------------------------------------ #
    def _entry_points(self, project: Project) -> List[Tuple[SourceFile, ast.expr, Tuple[str, ...]]]:
        """Every ``SPAWN_ENTRY_POINTS = (...)`` assignment in the project."""
        found = []
        for source in project.files:
            node = source.constants.get("SPAWN_ENTRY_POINTS")
            if node is None:
                continue
            resolved = project.resolve_str_tuple(source, node)
            if resolved is not None:
                found.append((source, node, resolved))
        return found

    def _reachable_modules(
        self, project: Project, entry_points: List[Tuple[SourceFile, ast.expr, Tuple[str, ...]]]
    ) -> Set[str]:
        roots: Set[str] = set()
        for _source, _node, dotted_names in entry_points:
            for dotted in dotted_names:
                module_name = dotted.rpartition(".")[0]
                if module_name:
                    roots.add(module_name)
                    # importing a submodule imports its ancestor packages too
                    parts = module_name.split(".")
                    roots.update(".".join(parts[:i]) for i in range(1, len(parts)))
        reachable: Set[str] = set()
        queue = [m for m in roots if m in project.modules]
        while queue:
            module_name = queue.pop()
            if module_name in reachable:
                continue
            reachable.add(module_name)
            source = project.modules.get(module_name)
            if source is None:
                continue
            for imported in self._imported_modules(source):
                if imported in project.modules and imported not in reachable:
                    queue.append(imported)
        return reachable

    @staticmethod
    def _imported_modules(source: SourceFile) -> Set[str]:
        imported: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                imported.update(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level == 0:
                    imported.add(node.module)
                    imported.update(f"{node.module}.{alias.name}" for alias in node.names)
        return imported

    # ------------------------------------------------------------------ #
    # RL301 — import-time side effects
    # ------------------------------------------------------------------ #
    def _check_import_side_effects(self, source: SourceFile) -> List[Diagnostic]:
        found: List[Diagnostic] = []

        def scan(body: List[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                    tail = _call_tail(stmt.value)
                    if tail in BENIGN_MODULE_CALLS:
                        continue
                    found.append(
                        Diagnostic(
                            source.rel,
                            stmt.lineno,
                            "RL301",
                            f"module-level call {tail or '<dynamic>'}(...) runs in every "
                            "spawned worker at import time; move it under "
                            "if __name__ == '__main__' or into the entry point",
                        )
                    )
                elif isinstance(stmt, ast.If):
                    if self._is_main_or_type_checking_guard(stmt.test):
                        continue
                    scan(stmt.body)
                    scan(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    scan(stmt.body)
                    for handler in stmt.handlers:
                        scan(handler.body)
                    scan(stmt.orelse)
                    scan(stmt.finalbody)
                elif isinstance(stmt, (ast.With,)):
                    found.append(
                        Diagnostic(
                            source.rel,
                            stmt.lineno,
                            "RL301",
                            "module-level with-statement acquires a resource at import "
                            "time in every spawned worker",
                        )
                    )

        scan(source.tree.body)
        return found

    @staticmethod
    def _is_main_or_type_checking_guard(test: ast.expr) -> bool:
        if isinstance(test, ast.Compare):
            left = test.left
            if isinstance(left, ast.Name) and left.id == "__name__":
                return True
        name = test.attr if isinstance(test, ast.Attribute) else getattr(test, "id", None)
        return name == "TYPE_CHECKING"

    # ------------------------------------------------------------------ #
    # RL302 — closures into pool APIs
    # ------------------------------------------------------------------ #
    def _check_pool_calls(self, source: SourceFile) -> List[Diagnostic]:
        found: List[Diagnostic] = []
        nested_defs = self._nested_function_names(source)

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            is_pool_method = (
                isinstance(node.func, ast.Attribute) and node.func.attr in POOL_APIS
            )
            is_process_ctor = (
                _call_tail(node) == "Process"
                and any(kw.arg == "target" for kw in node.keywords)
            )
            if not (is_pool_method or is_process_ctor):
                continue
            candidates: List[ast.expr] = list(node.args)
            candidates.extend(kw.value for kw in node.keywords if kw.arg in {"func", "target", "fn"})
            for arg in candidates:
                if isinstance(arg, ast.Lambda):
                    found.append(
                        Diagnostic(
                            source.rel,
                            arg.lineno,
                            "RL302",
                            "lambda handed to a pool API cannot be pickled by a "
                            "spawn-context worker; use a module-level function",
                        )
                    )
                elif isinstance(arg, ast.Name) and arg.id in nested_defs:
                    found.append(
                        Diagnostic(
                            source.rel,
                            arg.lineno,
                            "RL302",
                            f"nested function {arg.id!r} handed to a pool API cannot be "
                            "resolved by dotted name from a spawned worker; move it to "
                            "module top level",
                        )
                    )
        return found

    @staticmethod
    def _nested_function_names(source: SourceFile) -> Set[str]:
        """Names of functions defined *inside* other functions."""
        nested: Set[str] = set()
        for outer in ast.walk(source.tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(outer):
                if stmt is outer:
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(stmt.name)
        return nested

    # ------------------------------------------------------------------ #
    # RL303 — entry points name top-level defs
    # ------------------------------------------------------------------ #
    def _check_entry_declarations(
        self,
        project: Project,
        source: SourceFile,
        entry_points: List[Tuple[SourceFile, ast.expr, Tuple[str, ...]]],
    ) -> List[Diagnostic]:
        found: List[Diagnostic] = []
        for decl_source, node, dotted_names in entry_points:
            if decl_source is not source:
                continue
            for dotted in dotted_names:
                module_name, _, attr = dotted.rpartition(".")
                target = project.modules.get(module_name)
                if target is None:
                    if project.enforce_scopes:
                        found.append(
                            Diagnostic(
                                source.rel,
                                node.lineno,
                                "RL303",
                                f"spawn entry point {dotted!r}: module {module_name!r} "
                                "is not part of the analyzed tree",
                            )
                        )
                    continue
                is_top_level_def = any(
                    isinstance(stmt, ast.FunctionDef) and stmt.name == attr
                    for stmt in target.tree.body
                )
                if not is_top_level_def:
                    found.append(
                        Diagnostic(
                            source.rel,
                            node.lineno,
                            "RL303",
                            f"spawn entry point {dotted!r} is not a top-level def in "
                            f"{module_name}; a spawn-context worker resolves entry "
                            "points by dotted name and would fail to import it",
                        )
                    )
        return found
