"""``python -m tools.staticcheck`` — the repro-lint standalone runner."""

from __future__ import annotations

import sys

from tools.staticcheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
