"""The ``repro-lint`` command line (also ``python -m tools.staticcheck``).

Two modes share one pass registry and one output format:

* **repo mode** (no positional paths): analyze the repo layout —
  ``src/repro/**`` + ``benchmarks/**`` through the AST passes, plus the
  migrated RC0xx repo-hygiene checks — exactly what tier-1 asserts is clean;
* **file mode** (explicit paths): parse just those files and run the AST
  passes over all of them, scope-free.  This is what the fixture-corpus
  tests use, and what an editor integration would call on save.

Exit status: 0 clean, 1 active findings, 2 usage errors.  ``--format json``
emits a deterministic sorted array for cross-commit diffing; suppressed
findings are hidden unless ``--show-suppressed`` (they never affect the
exit status).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
if str(REPO_ROOT) not in sys.path:  # direct script invocation
    sys.path.insert(0, str(REPO_ROOT))

from tools.staticcheck.diagnostics import active, render_json, render_text
from tools.staticcheck.project import DEFAULT_ROOTS, Project
from tools.staticcheck.registry import (
    all_passes,
    ast_passes,
    known_pass_names,
    run_passes,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static-analysis suite guarding determinism, the writer-set "
            "protocol, spawn-safety, the listener protocol and repo hygiene. "
            "See docs/STATIC_ANALYSIS.md for the pass catalogue."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="python files to lint (default: the whole repo incl. RC0xx repo checks)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="repo root for repo mode (default: this checkout)",
    )
    parser.add_argument(
        "--passes",
        help="comma-separated pass names to run (default: all; see --list-passes)",
    )
    parser.add_argument(
        "--skip-repo-checks",
        action="store_true",
        help="repo mode: run only the AST passes (no repro import, no git)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="text (file:line: CODE message) or deterministic JSON",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the output (never in the exit status)",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="list registered pass names and their codes, then exit",
    )
    return parser


def _list_passes() -> int:
    for pass_ in all_passes():
        print(pass_.name)
        for code in sorted(pass_.codes):
            print(f"  {code}  {pass_.codes[code]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_passes:
        return _list_passes()

    names = None
    if args.passes:
        names = [n.strip() for n in args.passes.split(",") if n.strip()]
        unknown = set(names) - set(known_pass_names())
        if unknown:
            parser.error(
                f"unknown pass name(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(known_pass_names())})"
            )

    if args.paths:
        missing = [p for p in args.paths if not p.is_file()]
        if missing:
            parser.error(f"no such file(s): {', '.join(str(p) for p in missing)}")
        project = Project.from_files(args.paths)
        passes = ast_passes(names)
    else:
        project = Project.load(args.root.resolve(), DEFAULT_ROOTS)
        passes = ast_passes(names) if args.skip_repo_checks else all_passes(names)

    diagnostics = run_passes(project, passes)

    if args.format == "json":
        print(render_json(diagnostics, show_suppressed=args.show_suppressed))
    else:
        rendered = render_text(diagnostics, show_suppressed=args.show_suppressed)
        if rendered:
            print(rendered)

    findings = active(diagnostics)
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if args.format == "text":
        print("repro-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
