"""The pass registry: one list of passes, one driver, one diagnostic format.

A *pass* is any object with

* ``name`` — the stable registry key (``repro-lint --passes`` names),
* ``codes`` — ``{code: one-line description}`` for everything it can emit,
* ``run(project) -> List[Diagnostic]`` — suppressions already applied
  (suppressed findings are returned marked, not dropped).

Two families live here:

* **AST passes** (:data:`AST_PASSES`) analyze the parsed
  :class:`~tools.staticcheck.project.Project` without executing anything —
  they work on the repo layout *and* on fixture corpora;
* **repo-check passes** (:func:`repo_check_passes`) are the migrated
  ``tools/check_repo.py`` hygiene checks — they import ``repro`` and touch
  git/docs, so they only make sense against the real repo and are skipped
  automatically for fixture projects.

The driver (:func:`run_passes`) is what both the CLI and tier-1 call; it
returns every diagnostic sorted, suppressed ones included, and leaves the
"did anything *count*" question to :func:`~tools.staticcheck.diagnostics.active`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from tools.staticcheck.determinism import DeterminismPass
from tools.staticcheck.diagnostics import Diagnostic
from tools.staticcheck.listeners import ListenerProtocolPass
from tools.staticcheck.project import Project
from tools.staticcheck.spawn_safety import SpawnSafetyPass
from tools.staticcheck.writer_sets import WriterSetConformancePass

#: The AST analysis passes, in execution (and documentation) order.
AST_PASSES = (
    DeterminismPass,
    WriterSetConformancePass,
    SpawnSafetyPass,
    ListenerProtocolPass,
)


def ast_passes(names: Optional[Iterable[str]] = None) -> List[object]:
    """Instances of the AST passes (optionally restricted to ``names``)."""
    selected = _select(AST_PASSES, names)
    return [factory() for factory in selected]


def repo_check_passes(names: Optional[Iterable[str]] = None) -> List[object]:
    """Instances of the migrated repo-hygiene passes.

    Imported lazily: the repo checks import ``repro`` (and run git), which a
    fixture-corpus analysis must not require.
    """
    from tools.staticcheck.repo_checks import REPO_CHECK_PASSES

    return [factory() for factory in _select(REPO_CHECK_PASSES, names)]


def all_passes(names: Optional[Iterable[str]] = None) -> List[object]:
    """AST passes followed by the repo-check passes."""
    return ast_passes(names) + repo_check_passes(names)


def _select(factories: Sequence[type], names: Optional[Iterable[str]]) -> List[type]:
    if names is None:
        return list(factories)
    wanted = set(names)
    chosen = [f for f in factories if f.name in wanted]
    unknown = wanted - {f.name for f in factories}
    # Unknown names are *not* an error here: ``all_passes`` feeds the same
    # name set to both families, so each family ignores the other's names.
    del unknown
    return chosen


def known_pass_names() -> List[str]:
    from tools.staticcheck.repo_checks import REPO_CHECK_PASSES

    return [f.name for f in AST_PASSES] + [f.name for f in REPO_CHECK_PASSES]


def run_passes(project: Project, passes: Sequence[object]) -> List[Diagnostic]:
    """Run ``passes`` over ``project`` and return every diagnostic, sorted.

    Suppressed diagnostics are included (marked ``suppressed=True``) so the
    caller can both count real findings and prove suppressions were honored.
    """
    diagnostics: List[Diagnostic] = []
    for pass_ in passes:
        diagnostics.extend(pass_.run(project))
    return sorted(diagnostics)


def _collect_codes() -> Dict[str, str]:
    codes: Dict[str, str] = {}
    for factory in AST_PASSES:
        codes.update(factory.codes)
    try:
        from tools.staticcheck.repo_checks import REPO_CHECK_PASSES
    except Exception:  # pragma: no cover - repo checks need the repo layout
        return codes
    for factory in REPO_CHECK_PASSES:
        codes.update(factory.codes)
    return codes


#: ``code -> one-line description`` across every registered pass.
ALL_CODES: Dict[str, str] = _collect_codes()
