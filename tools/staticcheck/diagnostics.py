"""Diagnostics: the one result type every pass emits, plus suppressions.

A :class:`Diagnostic` is ``file:line: CODE message`` — the same shape for an
AST finding (``src/repro/core/cc1.py:217: RL201 ...``) and for a migrated
repo-hygiene check (``docs/CLI.md:1: RC003 ...``), so one CLI, one JSON
format and one test harness cover the whole suite.

Suppression is per *line*, never per pass or per file::

    start = time.perf_counter()  # repro-lint: disable=RL102 -- opt-in --timing

Multiple codes separate with commas (``disable=RL102,RL105``); anything after
the code list is a free-form justification (the convention in this repo is
that a suppression **must** carry one).  A suppressed diagnostic is not
dropped silently — it is returned with ``suppressed=True`` so ``repro-lint
--show-suppressed`` and the self-tests can assert that a pass both fires and
honors its suppressions.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Sequence, Set

#: ``# repro-lint: disable=RL102`` / ``disable=RL102,RL105 -- justification``.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line: code message``.

    ``path`` is repo-relative (posix separators) so output is stable across
    machines and the JSON mode diffs cleanly across commits.
    """

    path: str
    line: int
    code: str
    message: str
    suppressed: bool = field(default=False, compare=False)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
            "suppressed": self.suppressed,
        }


def parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """``line number -> codes disabled on that line`` (1-based)."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            suppressions[lineno] = {
                code.strip().upper() for code in match.group(1).split(",") if code.strip()
            }
    return suppressions


def apply_suppressions(
    diagnostics: Iterable[Diagnostic], suppressions: Dict[int, Set[str]]
) -> List[Diagnostic]:
    """Mark diagnostics whose line carries a matching ``disable=`` comment."""
    marked: List[Diagnostic] = []
    for diag in diagnostics:
        codes = suppressions.get(diag.line, ())
        if diag.code.upper() in codes:
            marked.append(replace(diag, suppressed=True))
        else:
            marked.append(diag)
    return marked


def render_text(diagnostics: Sequence[Diagnostic], show_suppressed: bool = False) -> str:
    lines = [
        d.render() + (" [suppressed]" if d.suppressed else "")
        for d in diagnostics
        if show_suppressed or not d.suppressed
    ]
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], show_suppressed: bool = False) -> str:
    """Deterministic JSON (sorted rows, sorted keys) for cross-commit diffs."""
    rows = [
        d.as_dict()
        for d in sorted(diagnostics)
        if show_suppressed or not d.suppressed
    ]
    return json.dumps(rows, sort_keys=True, indent=2)


def active(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The findings that actually count (suppressed ones filtered out)."""
    return [d for d in diagnostics if not d.suppressed]
