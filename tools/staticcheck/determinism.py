"""RL1xx — the determinism pass.

Everything this reproduction guarantees (incremental ≡ dense traces,
byte-identical campaign files for any worker count, crash-safe resume) is a
*determinism* invariant: a run must be a pure function of its seeds.  This
pass rejects the constructs that silently break that at lint time:

========  ==================================================================
RL101     unseeded randomness: ``random.random()``-style module-level
          functions or a zero-argument ``random.Random()`` — draw from a
          seeded ``random.Random(seed)`` instance instead
RL102     wall-clock reads (``time.time``/``perf_counter``/``monotonic``/
          ``process_time``): allowed only on explicitly timing-opt-in lines
          (suppress per line with a justification)
RL103     ``datetime.now()`` / ``utcnow()`` / ``today()``: ambient time in
          output breaks byte-identity across runs
RL104     OS entropy: ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``
RL105     ``hash()`` as an ordering key: str hashing is salted per process
          (PYTHONHASHSEED), so hash-ordered output differs between workers
RL106     iterating an unordered ``set``/``frozenset`` expression straight
          into order-sensitive consumption (``for``, ``list()``,
          ``tuple()``, ``join``, ``enumerate``) without ``sorted()`` — the
          exact bug class that would break ``row_line`` byte-identity
========  ==================================================================

Scope (repo layout): ``src/repro/**`` and ``benchmarks/**``.  Benchmarks
legitimately read the wall clock — each such line carries an explicit
``# repro-lint: disable=RL102`` with a justification, rather than the whole
directory being excluded, so *new* nondeterminism still gets caught there.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from tools.staticcheck.diagnostics import Diagnostic, apply_suppressions
from tools.staticcheck.project import Project, SourceFile, call_name, dotted_call

#: ``random`` module-level functions whose hidden global state breaks seeding.
UNSEEDED_RANDOM_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate", "randbytes",
    "randint", "random", "randrange", "sample", "seed", "shuffle", "triangular",
    "uniform", "vonmisesvariate", "weibullvariate",
}

#: Wall-clock reads: meaningless to replay, poison to byte-identity.
WALL_CLOCK_FUNCS = {
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "time", "time_ns",
}

#: Ambient-date constructors.
DATETIME_FUNCS = {"now", "today", "utcnow"}

#: Order-sensitive single-argument consumers of an iterable.
ORDER_SENSITIVE_CONSUMERS = {"enumerate", "iter", "list", "reversed", "tuple"}

CODES: Dict[str, str] = {
    "RL101": "unseeded random.* module-level function (use a seeded random.Random)",
    "RL102": "wall-clock read outside a timing-opt-in line",
    "RL103": "ambient datetime (now/utcnow/today) breaks reproducibility",
    "RL104": "OS entropy source (os.urandom / uuid1 / uuid4 / secrets)",
    "RL105": "hash() used as an ordering key (salted per process)",
    "RL106": "unordered set iteration feeds order-sensitive output (wrap in sorted())",
}


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _lambda_calls_hash(node: ast.expr) -> bool:
    if not isinstance(node, ast.Lambda):
        return False
    for child in ast.walk(node.body):
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Name):
            if child.func.id == "hash":
                return True
    return False


class DeterminismPass:
    name = "determinism"
    codes = CODES
    scope = ("src/repro/", "benchmarks/")

    def run(self, project: Project) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for source in project.files_in_scope(self.scope):
            diagnostics.extend(self._check_file(source))
        return diagnostics

    # ------------------------------------------------------------------ #
    def _check_file(self, source: SourceFile) -> List[Diagnostic]:
        random_aliases = {
            alias for alias, module in source.module_aliases.items() if module == "random"
        }
        time_aliases = {
            alias for alias, module in source.module_aliases.items() if module == "time"
        }
        os_aliases = {
            alias for alias, module in source.module_aliases.items() if module == "os"
        }
        uuid_aliases = {
            alias for alias, module in source.module_aliases.items() if module == "uuid"
        }
        secrets_aliases = {
            alias for alias, module in source.module_aliases.items() if module == "secrets"
        }
        # ``from random import choice`` / ``from time import perf_counter``.
        from_random = {
            alias
            for alias, (module, original) in source.from_imports.items()
            if module == "random" and original in UNSEEDED_RANDOM_FUNCS
        }
        from_time = {
            alias
            for alias, (module, original) in source.from_imports.items()
            if module == "time" and original in WALL_CLOCK_FUNCS
        }
        from_os_urandom = {
            alias
            for alias, (module, original) in source.from_imports.items()
            if module == "os" and original == "urandom"
        }

        found: List[Diagnostic] = []

        def emit(node: ast.AST, code: str, message: str) -> None:
            found.append(Diagnostic(source.rel, getattr(node, "lineno", 1), code, message))

        hash_method_stack: List[bool] = []

        class Visitor(ast.NodeVisitor):
            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                hash_method_stack.append(node.name in {"__hash__", "__eq__"})
                self.generic_visit(node)
                hash_method_stack.pop()

            visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

            def visit_Call(self, node: ast.Call) -> None:
                self._check_call(node)
                self.generic_visit(node)

            def visit_For(self, node: ast.For) -> None:
                if _is_set_expr(node.iter):
                    emit(
                        node.iter,
                        "RL106",
                        "iterating an unordered set expression in a for loop; "
                        "wrap it in sorted(...) if the loop's effects are order-sensitive",
                    )
                self.generic_visit(node)

            def visit_comprehension_iter(self, node: ast.expr) -> None:
                if _is_set_expr(node):
                    emit(
                        node,
                        "RL106",
                        "comprehension iterates an unordered set expression; wrap in sorted(...)",
                    )

            def _visit_comp(self, node) -> None:
                for gen in node.generators:
                    self.visit_comprehension_iter(gen.iter)
                self.generic_visit(node)

            visit_ListComp = _visit_comp
            visit_GeneratorExp = _visit_comp
            visit_DictComp = _visit_comp

            def visit_SetComp(self, node: ast.SetComp) -> None:
                # Iterating a set to build another set is order-insensitive.
                self.generic_visit(node)

            # ---------------------------------------------------------- #
            def _check_call(self, node: ast.Call) -> None:
                func = node.func
                dotted = dotted_call(node)

                # RL101 — unseeded random
                if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                    owner, attr = func.value.id, func.attr
                    if owner in random_aliases and attr in UNSEEDED_RANDOM_FUNCS:
                        emit(node, "RL101", f"unseeded random.{attr}() (module-level RNG)")
                    if owner in random_aliases and attr == "Random" and not node.args and not node.keywords:
                        emit(node, "RL101", "random.Random() without a seed")
                    # RL102 — wall clock
                    if owner in time_aliases and attr in WALL_CLOCK_FUNCS:
                        emit(
                            node,
                            "RL102",
                            f"wall-clock read time.{attr}(); timing must be opt-in "
                            "(suppress per line with a justification if intentional)",
                        )
                    # RL104 — entropy
                    if owner in os_aliases and attr == "urandom":
                        emit(node, "RL104", "os.urandom() is nondeterministic entropy")
                    if owner in uuid_aliases and attr in {"uuid1", "uuid4"}:
                        emit(node, "RL104", f"uuid.{attr}() is nondeterministic")
                    if owner in secrets_aliases:
                        emit(node, "RL104", f"secrets.{attr}() is nondeterministic entropy")
                    # RL103 — ambient datetime
                    if attr in DATETIME_FUNCS and owner in {"datetime", "date"}:
                        emit(node, "RL103", f"{owner}.{attr}() reads ambient time")
                if dotted is not None and dotted.endswith((".datetime.now", ".datetime.utcnow", ".date.today")):
                    emit(node, "RL103", f"{dotted}() reads ambient time")

                if isinstance(func, ast.Name):
                    if func.id in from_random:
                        emit(node, "RL101", f"unseeded random function {func.id}() (from random import)")
                    if func.id in from_time:
                        emit(
                            node,
                            "RL102",
                            f"wall-clock read {func.id}(); timing must be opt-in "
                            "(suppress per line with a justification if intentional)",
                        )
                    if func.id in from_os_urandom:
                        emit(node, "RL104", "os.urandom() is nondeterministic entropy")

                    # RL106 — order-sensitive consumers of a set expression
                    if func.id in ORDER_SENSITIVE_CONSUMERS and node.args and _is_set_expr(node.args[0]):
                        emit(
                            node,
                            "RL106",
                            f"{func.id}() over an unordered set expression; wrap in sorted(...)",
                        )

                # RL106 — "sep".join(set expr)
                if isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
                    if _is_set_expr(node.args[0]):
                        emit(node, "RL106", "str.join over an unordered set expression; wrap in sorted(...)")

                # RL105 — hash as ordering key
                in_hash_method = any(hash_method_stack)
                if not in_hash_method:
                    key_kw = next((kw for kw in node.keywords if kw.arg == "key"), None)
                    is_ordering = (isinstance(func, ast.Name) and func.id in {"sorted", "min", "max"}) or (
                        isinstance(func, ast.Attribute) and func.attr == "sort"
                    )
                    if is_ordering and key_kw is not None:
                        if (isinstance(key_kw.value, ast.Name) and key_kw.value.id == "hash") or _lambda_calls_hash(key_kw.value):
                            emit(
                                node,
                                "RL105",
                                "hash() as an ordering key: str hashes are salted per "
                                "process, so the order differs between workers",
                            )

        Visitor().visit(source.tree)
        return apply_suppressions(found, source.suppressions)
