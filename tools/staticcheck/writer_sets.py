"""RL2xx — writer-set / read-dependency conformance for the delta protocol.

The incremental engine's correctness contract (docs/ARCHITECTURE.md) is:

* every variable a statement **writes** is part of the algorithm's declared
  state (it appears in the initial-state layout), so the per-variable dirty
  maps built from :class:`StepDelta` writer sets can name it;
* every variable a guard **reads of another process** is declared in the
  class's read-dependency declaration (``neighbour_guard_variables`` for the
  committee layer, the tuples inside ``read_dependency_variables`` for the
  token modules), so a write to it actually re-evaluates the reader;
* a class whose guards consult the environment (``ctx.request_in()`` /
  ``ctx.request_out()``) must not declare
  ``environment_sensitive_variables = ()`` (which tells the engine that
  enabledness never changes between steps without a write).

Until now these contracts were only caught *probabilistically*, by the seeded
fuzz differential tests; this pass checks them at lint time, per class, for
every ``DistributedAlgorithm`` / ``TokenModule`` subclass in the tree:

========  ==================================================================
RL201     a statement writes a variable that is not part of the class's
          statically-resolvable state layout (undeclared writer variable)
RL202     a guard-evaluable method reads a variable of *another* process
          that the class's read-dependency declaration does not cover
RL203     guards consult the environment but the class declares
          ``environment_sensitive_variables = ()``
RL204     a write's variable name is dynamic (not statically resolvable)
          inside an algorithm class — the conformance of that write cannot
          be verified; prefer a named constant
========  ==================================================================

The analysis is deliberately conservative and *closed-world per class*: a
class whose state layout or dependency declaration cannot be resolved to
literal tuples/dict keys (e.g. it delegates wholesale to a wrapped module)
is skipped for the corresponding check rather than guessed at.  Reads are
over-approximated — a read of another process in *any* method of the class
counts as guard-relevant, because helper predicates are freely shared
between guards and statements in this codebase.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from tools.staticcheck.diagnostics import Diagnostic, apply_suppressions
from tools.staticcheck.project import Project, SourceFile, iter_functions

#: Class names that make a class an "algorithm" for this pass (matched along
#: the statically-resolved base chain, by simple name, so fixture files can
#: subclass a local stub).
ALGORITHM_ROOTS = {"DistributedAlgorithm"}
TOKEN_MODULE_ROOTS = {"TokenModule"}

#: Methods whose returned dict keys define the per-process state layout, in
#: preference order: the most specific one found along the lineage wins.
STATE_LAYOUT_METHODS = ("own_initial_state", "initial_variables", "initial_state")

#: Methods read-dependency tuples are harvested from.
DECLARATION_METHODS = ("read_dependency_variables",)

CODES: Dict[str, str] = {
    "RL201": "statement writes an undeclared state variable",
    "RL202": "guard reads an undeclared variable of another process",
    "RL203": "guards consult the environment but environment_sensitive_variables is ()",
    "RL204": "dynamic write target cannot be checked against the writer-set protocol",
}


class _ClassModel:
    """Everything statically extracted about one algorithm/token class."""

    def __init__(self) -> None:
        self.state_vars: Set[str] = set()
        self.state_closed = False
        self.declared_read_vars: Set[str] = set()
        self.declaration_found = False
        self.declaration_closed = False


class WriterSetConformancePass:
    name = "writer-sets"
    codes = CODES
    scope = ("src/repro/",)

    def run(self, project: Project) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for source in project.files_in_scope(self.scope):
            file_diags: List[Diagnostic] = []
            for cls in source.classes.values():
                base_names = project.base_names(source, cls)
                is_algorithm = bool(base_names & ALGORITHM_ROOTS) and cls.name not in ALGORITHM_ROOTS
                is_token = bool(base_names & TOKEN_MODULE_ROOTS) and cls.name not in TOKEN_MODULE_ROOTS
                if not (is_algorithm or is_token):
                    continue
                file_diags.extend(self._check_class(project, source, cls))
            diagnostics.extend(apply_suppressions(file_diags, source.suppressions))
        return diagnostics

    # ------------------------------------------------------------------ #
    # model extraction
    # ------------------------------------------------------------------ #
    def _build_model(self, project: Project, source: SourceFile, cls: ast.ClassDef) -> _ClassModel:
        model = _ClassModel()

        # -- state layout ------------------------------------------------ #
        for method_name in STATE_LAYOUT_METHODS:
            definitions = project.class_methods(source, cls, method_name)
            if not definitions:
                continue
            closed = True
            for def_source, definition in definitions:
                variables, is_closed = self._harvest_state_method(project, def_source, definition, method_name)
                model.state_vars.update(variables)
                closed = closed and is_closed
            model.state_closed = closed and bool(model.state_vars)
            break  # most specific layout method wins

        # -- read-dependency declaration ---------------------------------- #
        attr = project.resolve_class_attr(source, cls, "neighbour_guard_variables")
        if attr is not None:
            attr_source, attr_value = attr
            resolved = project.resolve_str_tuple(attr_source, attr_value)
            if resolved is not None:
                model.declared_read_vars.update(resolved)
                model.declaration_found = True
                model.declaration_closed = True

        for method_name in DECLARATION_METHODS:
            for def_source, definition in project.class_methods(source, cls, method_name):
                tuples, saw_open = self._harvest_declaration_tuples(project, def_source, definition)
                if tuples:
                    model.declared_read_vars.update(tuples)
                    model.declaration_found = True
                    # ``None`` values ("any variable of that source") do not
                    # open the declaration: they only widen specific sources.
                    model.declaration_closed = model.declaration_closed or not saw_open

        return model

    def _harvest_state_method(
        self, project: Project, source: SourceFile, method: ast.FunctionDef, method_name: str
    ) -> Tuple[Set[str], bool]:
        """Dict-literal keys and ``state[CONST] = ...`` targets; closed-ness."""
        variables: Set[str] = set()
        closed = True
        for node in ast.walk(method):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is None:  # ``{**other}`` — opaque
                        closed = False
                        continue
                    value = project.resolve_str(source, key)
                    if value is None:
                        closed = False
                    else:
                        variables.add(value)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Subscript):
                    value = project.resolve_str(source, target.slice)
                    if value is not None:
                        variables.add(value)
                    else:
                        closed = False
                elif isinstance(node.value, ast.Call):
                    closed = closed and self._is_super_delegation(node.value, method_name)
            elif isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                closed = False  # returns something built elsewhere
            elif isinstance(node, ast.Call):
                # ``state.update(<anything but a dict literal>)`` — opaque.
                if isinstance(node.func, ast.Attribute) and node.func.attr == "update":
                    if not (node.args and isinstance(node.args[0], ast.Dict)):
                        closed = False
        return variables, closed

    @staticmethod
    def _is_super_delegation(call: ast.Call, method_name: str) -> bool:
        """``super().own_initial_state(pid)`` — covered by lineage harvesting."""
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == method_name
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        )

    def _harvest_declaration_tuples(
        self, project: Project, source: SourceFile, method: ast.FunctionDef
    ) -> Tuple[Set[str], bool]:
        """Every resolvable string tuple in the method body, plus whether any
        unresolvable ("any variable") value appeared."""
        declared: Set[str] = set()
        saw_open = False
        for node in ast.walk(method):
            if isinstance(node, (ast.Tuple, ast.List)):
                resolved = project.resolve_str_tuple(source, node)
                if resolved is not None:
                    declared.update(resolved)
        return declared, saw_open

    # ------------------------------------------------------------------ #
    # checks
    # ------------------------------------------------------------------ #
    def _check_class(self, project: Project, source: SourceFile, cls: ast.ClassDef) -> List[Diagnostic]:
        model = self._build_model(project, source, cls)
        diagnostics: List[Diagnostic] = []

        uses_environment = False
        for method in (n for n in cls.body if isinstance(n, ast.FunctionDef)):
            own_pids = self._own_pid_names(method)
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                kind = self._call_kind(node)
                if kind == "write":
                    diagnostics.extend(
                        self._check_write(project, source, cls, model, node)
                    )
                elif kind == "read":
                    diagnostics.extend(
                        self._check_read(project, source, cls, model, node, own_pids)
                    )
                elif kind == "environment":
                    uses_environment = True

        if uses_environment:
            attr = project.resolve_class_attr(source, cls, "environment_sensitive_variables")
            if attr is not None:
                attr_source, attr_value = attr
                resolved = project.resolve_str_tuple(attr_source, attr_value)
                if resolved == ():
                    diagnostics.append(
                        Diagnostic(
                            source.rel,
                            cls.lineno,
                            "RL203",
                            f"{cls.name} guards call request_in()/request_out() but the class "
                            "declares environment_sensitive_variables = () — the incremental "
                            "engine would never refresh its enabledness between steps",
                        )
                    )
        return diagnostics

    @staticmethod
    def _call_kind(node: ast.Call) -> Optional[str]:
        """Classify ``*.write(var, value)``, 2-arg reads, and request calls."""
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "write" and len(node.args) >= 2:
                return "write"
            if func.attr in {"read", "own"} and node.args:
                return "read"
            if func.attr in {"request_in", "request_out"}:
                return "environment"
        elif isinstance(func, ast.Name):
            # Token modules receive a bare ``read(pid, var)`` accessor.
            if func.id == "read" and len(node.args) == 2:
                return "read"
        return None

    @staticmethod
    def _own_pid_names(method: ast.FunctionDef) -> Set[str]:
        """Names that denote the executing process inside ``method``."""
        own = {"pid"}
        own.update(arg.arg for arg in method.args.args if arg.arg in {"pid", "p"})
        return own

    def _check_write(
        self,
        project: Project,
        source: SourceFile,
        cls: ast.ClassDef,
        model: _ClassModel,
        node: ast.Call,
    ) -> List[Diagnostic]:
        variable = project.resolve_str(source, node.args[0])
        if variable is None:
            return [
                Diagnostic(
                    source.rel,
                    node.lineno,
                    "RL204",
                    f"{cls.name}: write target is not a resolvable constant; the "
                    "writer-set protocol cannot be checked for this write "
                    "(use a module-level variable-name constant)",
                )
            ]
        if model.state_closed and variable not in model.state_vars:
            return [
                Diagnostic(
                    source.rel,
                    node.lineno,
                    "RL201",
                    f"{cls.name} writes undeclared state variable {variable!r}; it is "
                    f"missing from the state layout ({', '.join(sorted(model.state_vars))}) "
                    "— an undeclared write silently defeats incremental invalidation",
                )
            ]
        return []

    def _check_read(
        self,
        project: Project,
        source: SourceFile,
        cls: ast.ClassDef,
        model: _ClassModel,
        node: ast.Call,
        own_pids: Set[str],
    ) -> List[Diagnostic]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "own":
            return []  # own-variable read: pid itself is always a full dependency
        if len(node.args) < 2:
            return []
        target, variable_node = node.args[0], node.args[1]
        if self._is_own_target(target, own_pids):
            return []
        if not model.declaration_closed:
            return []  # declaration is "any variable" / unresolvable: nothing to check
        variable = project.resolve_str(source, variable_node)
        if variable is None:
            return []  # dynamic reader shims (lambda q, var: ...) — not checkable
        if variable not in model.declared_read_vars:
            return [
                Diagnostic(
                    source.rel,
                    node.lineno,
                    "RL202",
                    f"{cls.name} reads {variable!r} of another process but its "
                    "read-dependency declaration only covers "
                    f"({', '.join(sorted(model.declared_read_vars))}) — a write to "
                    f"{variable!r} would not re-evaluate this guard incrementally",
                )
            ]
        return []

    @staticmethod
    def _is_own_target(target: ast.expr, own_pids: Set[str]) -> bool:
        if isinstance(target, ast.Name) and target.id in own_pids:
            return True
        if isinstance(target, ast.Attribute) and target.attr == "pid":
            return True  # ``ctx.pid`` / ``self.pid``
        return False
