"""``repro-lint`` — the static-analysis suite guarding this reproduction.

Everything the repo promises dynamically (incremental ≡ dense traces,
byte-identical campaign files for any worker count, crash-safe ``--resume``)
rests on invariants that are *statically visible*: no ambient entropy or
wall clock in the run path, writer sets that match the declared state
layout, spawn-resolvable entry points, listeners that only raise
:class:`~repro.kernel.StopRun`.  This package checks them at lint time,
before any test runs.

Layout
------
``diagnostics``   the one :class:`~tools.staticcheck.diagnostics.Diagnostic`
                  result type + per-line ``# repro-lint: disable=CODE``
                  suppression handling
``project``       the parsed-project model (every file parsed once, static
                  constant/class/import resolution — nothing is executed)
``determinism``   RL1xx — seed/byte reproducibility (unseeded RNG, wall
                  clock, ambient datetime, entropy, hash ordering, unordered
                  set iteration)
``writer_sets``   RL2xx — writer-set / read-dependency conformance for the
                  incremental engine's delta protocol
``spawn_safety``  RL3xx — multiprocessing spawn-safety (import-time side
                  effects, closures into pools, entry-point resolvability)
``listeners``     RL4xx — scheduler listener protocol (StopRun-only raises,
                  epoch-aware delta consumption)
``repo_checks``   RC0xx — the seven historical ``tools/check_repo.py``
                  hygiene checks, migrated into the same registry
``registry``      pass registry + driver shared by the CLI and tier-1
``cli``           the ``repro-lint`` console entry point
                  (``python -m tools.staticcheck``)

See ``docs/STATIC_ANALYSIS.md`` for the pass catalogue, the full code table
and the suppression conventions.
"""

from __future__ import annotations

from tools.staticcheck.diagnostics import Diagnostic, active
from tools.staticcheck.project import Project
from tools.staticcheck.registry import (
    ALL_CODES,
    AST_PASSES,
    all_passes,
    ast_passes,
    run_passes,
)

__all__ = [
    "ALL_CODES",
    "AST_PASSES",
    "Diagnostic",
    "Project",
    "active",
    "all_passes",
    "ast_passes",
    "run_passes",
]
