"""The parsed-project model shared by every AST pass.

One :class:`Project` holds every analyzed file parsed exactly once, plus the
cheap symbol information the passes need to resolve things *statically* (no
imports are executed):

* per-file **constants** — top-level ``NAME = "literal"`` / tuple-of-literal
  assignments (``STATUS = "S"``, ``CC1_STATUSES = (IDLE, ...)``), chased
  through ``from module import NAME`` into the defining module;
* per-file **imports** — ``import x as y`` aliases and ``from x import a``
  bindings, restricted to modules that are part of the project;
* a **class index** with base-chain resolution across modules, so a pass can
  ask "does ``CC3Algorithm`` descend from something named
  ``DistributedAlgorithm``?" and "what is the nearest definition of
  ``neighbour_guard_variables`` along that chain?" without importing
  anything.

Fixture corpora (self-contained bad/good snippets) build a project from an
explicit file list with ``enforce_scopes=False``; the CLI builds one from
the repo layout, where each pass additionally filters by its default scope
(e.g. the determinism pass looks at ``src/repro/**`` and ``benchmarks/**``
but not tests).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from tools.staticcheck.diagnostics import parse_suppressions

#: Default analysis roots, relative to the repo root.
DEFAULT_ROOTS = ("src/repro", "benchmarks")


@dataclass
class SourceFile:
    """One parsed python file plus its line-level suppressions."""

    path: Path  # absolute
    rel: str  # repo-relative, posix separators
    module: Optional[str]  # dotted module name when under a source root
    text: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]]

    # Lazily-built symbol tables (see Project helpers).
    constants: Dict[str, ast.expr] = field(default_factory=dict)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)

    def index_symbols(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self.constants[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self.constants[node.target.id] = node.value
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (node.module, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node


class Project:
    """Every analyzed file, parsed once, with static symbol resolution."""

    def __init__(self, root: Path, files: Sequence[SourceFile], enforce_scopes: bool = True) -> None:
        self.root = root
        self.files = list(files)
        self.enforce_scopes = enforce_scopes
        self.modules: Dict[str, SourceFile] = {
            f.module: f for f in self.files if f.module is not None
        }

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _load_file(path: Path, root: Path, src_root: Optional[Path]) -> Optional[SourceFile]:
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError):
            return None
        module: Optional[str] = None
        if src_root is not None:
            try:
                parts = list(path.relative_to(src_root).with_suffix("").parts)
                if parts and parts[-1] == "__init__":
                    parts = parts[:-1]
                module = ".".join(parts) if parts else None
            except ValueError:
                module = None
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        source = SourceFile(
            path=path,
            rel=rel,
            module=module,
            text=text,
            tree=tree,
            suppressions=parse_suppressions(text),
        )
        source.index_symbols()
        return source

    @classmethod
    def load(cls, root: Path, roots: Sequence[str] = DEFAULT_ROOTS) -> "Project":
        """The repo-layout project the CLI and tier-1 analyze."""
        root = root.resolve()
        src_root = root / "src"
        files: List[SourceFile] = []
        for rel_root in roots:
            base = root / rel_root
            if not base.exists():
                continue
            for path in sorted(base.rglob("*.py")):
                loaded = cls._load_file(path, root, src_root if src_root in path.parents or src_root == path.parent else None)
                if loaded is not None:
                    files.append(loaded)
        return cls(root, files, enforce_scopes=True)

    @classmethod
    def from_files(
        cls, paths: Sequence[Path], root: Optional[Path] = None, src_root: Optional[Path] = None
    ) -> "Project":
        """A fixture project: the given files, every pass applies to all of them."""
        paths = [Path(p).resolve() for p in paths]
        base = (root or paths[0].parent).resolve()
        files = []
        for path in paths:
            loaded = cls._load_file(path, base, src_root)
            if loaded is None:
                raise ValueError(f"cannot parse fixture file {path}")
            if loaded.module is None:
                loaded.module = path.stem
            files.append(loaded)
        project = cls(base, files, enforce_scopes=False)
        return project

    # ------------------------------------------------------------------ #
    # scope
    # ------------------------------------------------------------------ #
    def files_in_scope(self, prefixes: Sequence[str]) -> List[SourceFile]:
        """The files a pass should analyze.

        With ``enforce_scopes`` (repo layout) only files whose repo-relative
        path starts with one of ``prefixes``; fixture projects return
        everything, so the corpus exercises each pass directly.
        """
        if not self.enforce_scopes:
            return self.files
        return [f for f in self.files if any(f.rel.startswith(p) for p in prefixes)]

    # ------------------------------------------------------------------ #
    # constant resolution
    # ------------------------------------------------------------------ #
    def resolve_str(self, source: SourceFile, node: ast.expr, _seen: Optional[Set[str]] = None) -> Optional[str]:
        """``"S"`` from a string literal or a (possibly imported) constant name."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            resolved = self._resolve_name(source, node.id, _seen or set())
            if resolved is not None:
                value_source, value = resolved
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value
                # one more indirection (NAME = OTHER_NAME)
                if isinstance(value, ast.Name):
                    return self.resolve_str(value_source, value, (_seen or set()) | {node.id})
        return None

    def resolve_str_tuple(self, source: SourceFile, node: ast.expr) -> Optional[Tuple[str, ...]]:
        """``("S", "P")`` from a tuple/list of resolvable strings, or a named constant."""
        if isinstance(node, ast.Name):
            resolved = self._resolve_name(source, node.id, set())
            if resolved is None:
                return None
            source, node = resolved
        if isinstance(node, (ast.Tuple, ast.List)):
            values: List[str] = []
            for element in node.elts:
                value = self.resolve_str(source, element)
                if value is None:
                    return None
                values.append(value)
            return tuple(values)
        return None

    def _resolve_name(
        self, source: SourceFile, name: str, seen: Set[str]
    ) -> Optional[Tuple[SourceFile, ast.expr]]:
        key = f"{source.rel}:{name}"
        if key in seen:
            return None
        seen.add(key)
        if name in source.constants:
            return source, source.constants[name]
        if name in source.from_imports:
            module_name, original = source.from_imports[name]
            target = self.modules.get(module_name)
            if target is not None:
                return self._resolve_name(target, original, seen)
        return None

    # ------------------------------------------------------------------ #
    # class resolution
    # ------------------------------------------------------------------ #
    def class_lineage(self, source: SourceFile, cls: ast.ClassDef) -> List[Tuple[SourceFile, ast.ClassDef]]:
        """``cls`` plus every project-resolvable ancestor, nearest first."""
        lineage: List[Tuple[SourceFile, ast.ClassDef]] = []
        queue: List[Tuple[SourceFile, ast.ClassDef]] = [(source, cls)]
        seen: Set[str] = set()
        while queue:
            current_source, current = queue.pop(0)
            key = f"{current_source.rel}:{current.name}"
            if key in seen:
                continue
            seen.add(key)
            lineage.append((current_source, current))
            for base in current.bases:
                resolved = self._resolve_class(current_source, base)
                if resolved is not None:
                    queue.append(resolved)
        return lineage

    def _resolve_class(
        self, source: SourceFile, base: ast.expr
    ) -> Optional[Tuple[SourceFile, ast.ClassDef]]:
        if isinstance(base, ast.Attribute):
            # ``abc.ABC`` and friends — external, ignore.
            return None
        if not isinstance(base, ast.Name):
            return None
        name = base.id
        if name in source.classes:
            return source, source.classes[name]
        if name in source.from_imports:
            module_name, original = source.from_imports[name]
            target = self.modules.get(module_name)
            if target is not None and original in target.classes:
                return target, target.classes[original]
        return None

    def base_names(self, source: SourceFile, cls: ast.ClassDef) -> Set[str]:
        """All (simple) class names along the lineage, plus unresolvable base names.

        An unresolvable base such as ``DistributedAlgorithm`` imported from
        the kernel still contributes its *name*, which is what the passes
        match on — so fixture files can subclass a local stub of the same
        name and exercise the pass without importing the kernel.
        """
        names: Set[str] = set()
        for lineage_source, lineage_cls in self.class_lineage(source, cls):
            names.add(lineage_cls.name)
            for base in lineage_cls.bases:
                if isinstance(base, ast.Name):
                    names.add(base.id)
                elif isinstance(base, ast.Attribute):
                    names.add(base.attr)
        return names

    def resolve_class_attr(
        self, source: SourceFile, cls: ast.ClassDef, attr: str
    ) -> Optional[Tuple[SourceFile, ast.expr]]:
        """The nearest class-body assignment of ``attr`` along the lineage."""
        for lineage_source, lineage_cls in self.class_lineage(source, cls):
            for node in lineage_cls.body:
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id == attr:
                            return lineage_source, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if isinstance(node.target, ast.Name) and node.target.id == attr:
                        return lineage_source, node.value
        return None

    def class_methods(
        self, source: SourceFile, cls: ast.ClassDef, name: str
    ) -> List[Tuple[SourceFile, ast.FunctionDef]]:
        """Every definition of method ``name`` along the lineage (nearest first)."""
        found: List[Tuple[SourceFile, ast.FunctionDef]] = []
        for lineage_source, lineage_cls in self.class_lineage(source, cls):
            for node in lineage_cls.body:
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    found.append((lineage_source, node))
        return found


def iter_functions(node: ast.AST) -> Iterator[ast.FunctionDef]:
    """All function definitions under ``node``, nested ones included."""
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child  # type: ignore[misc]


def call_name(node: ast.Call) -> Optional[str]:
    """``foo`` for ``foo(...)``, ``attr`` for ``x.y.attr(...)``."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def dotted_call(node: ast.Call) -> Optional[str]:
    """``"x.y.attr"`` for simple attribute chains, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node.func
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None
