#!/usr/bin/env python3
"""Repo hygiene checks, tier-1-safe (fast, no network, no state mutation).

These ten checks are registered in the ``repro-lint`` pass registry as
the ``repo-*`` passes (codes RC001–RC010) — ``tools/staticcheck`` wraps the
functions below unchanged, so ``python -m tools.staticcheck`` runs them
alongside the AST passes with unified ``file:line: CODE message``
diagnostics.  See ``docs/STATIC_ANALYSIS.md`` for the catalogue.  This
module remains the historical standalone entry point.

Ten checks, each returning a list of human-readable error strings:

* ``check_no_tracked_bytecode`` — no ``.pyc`` / ``__pycache__`` entries ever
  re-enter the git index (they were purged once; ``.gitignore`` keeps new
  ones out of ``git add .``, this check keeps them out of force-adds);
* ``check_doc_links`` — every relative markdown link in ``README.md`` and
  ``docs/*.md`` resolves to an existing file, and every backticked
  ``repro.foo.bar`` dotted name names an importable module (or an attribute
  of one), so the architecture tables cannot drift from the package layout;
* ``check_cli_docs`` — ``docs/CLI.md`` documents every ``--flag`` of every
  ``repro-cc`` subcommand (each in its own section) and mentions no flag
  the parser does not define, introspected live from
  ``repro.cli.build_parser()``;
* ``check_perf_rows`` — every line of ``benchmarks/perf_rows.jsonl`` is a
  JSON object matching the per-bench schema registry (``PERF_ROW_SCHEMAS``),
  so perf rows stay machine-readable across commits and a new bench cannot
  emit rows nobody can aggregate;
* ``check_spawn_entry_points`` — every dotted name the campaign engine hands
  to ``multiprocessing`` (``repro.campaign.SPAWN_ENTRY_POINTS``) is a
  module-top-level callable that pickles by reference, i.e. resolvable from
  a spawn-context worker; a sample expanded ``RunJob`` must round-trip too;
* ``check_campaign_rows`` — the campaign row schema
  (``repro.campaign.jobs.ROW_FIELDS`` / ``ERROR_ROW_FIELDS``) matches what
  ``execute_job``/``error_result`` actually emit, and the resume module
  round-trips every schema'd row shape **byte-identically** (parse a
  serialized row, re-serialize, compare) — the property ``--resume``'s
  "final file equals an uninterrupted run" guarantee rests on;
* ``check_sink_picklability`` — every row sink class
  (``repro.campaign.sinks.SINK_TYPES``) is a module-top-level class that
  pickles by reference, and fresh (unopened) instances pickle round-trip,
  so sink configurations can always be shipped between processes;
* ``check_run_cache_key`` — the content-addressed run cache's key
  (``repro.campaign.store.CACHE_KEY_ATTRS``) covers exactly the row
  identity block minus the job index, with a per-field sensitivity sweep:
  every identity attribute must change the key, the index must not — so a
  new ``RunJob`` axis cannot silently alias cache entries across runs;
* ``check_collector_merge`` — the sharding layer's control-message registry
  (``repro.campaign.shard.CONTROL_SCHEMAS``) is self-consistent (ops carry
  the ``"op"`` discriminator, rows never do), and an in-process collector
  fed by two static shards over a real socket merges their streams
  **byte-identically** to the same matrix run locally with ``--jobs 1`` —
  the distributed sibling of ``check_campaign_rows``'s resume round-trip;
* ``check_cli_thin_adapter`` — ``repro/cli.py`` stays a flag-parsing
  adapter over :mod:`repro.campaign.driver`: it may not import
  ``multiprocessing``, ``socket`` or ``repro.campaign.batched`` directly,
  so worker-pool, shard-protocol and batched-engine dispatch cannot grow a
  fourth copy inside the argparse layer.

Run standalone (``python tools/check_repo.py``, exit 1 on failure) or from
the test suite (``tests/test_repo_checks.py`` calls :func:`run_checks`).
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import json
import pickle
import re
import subprocess
import sys
import threading
from pathlib import Path
from typing import Callable, Dict, List, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
SRC_DIR = REPO_ROOT / "src"

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
#: Dotted package paths, optionally class/function-qualified:
#: `repro.kernel.trace`, `repro.kernel.trace.StepDelta`, `repro.kernel.StopRun`.
_MODULE_RE = re.compile(
    r"`(repro(?:\.[a-z_][a-z_0-9]*)*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)`"
)
_FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def _doc_files() -> List[Path]:
    docs = [REPO_ROOT / "README.md"]
    if DOCS_DIR.is_dir():
        docs.extend(sorted(DOCS_DIR.glob("*.md")))
    return [d for d in docs if d.is_file()]


# --------------------------------------------------------------------------- #
# 1. no tracked bytecode
# --------------------------------------------------------------------------- #
def check_no_tracked_bytecode() -> List[str]:
    try:
        proc = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
    except OSError:
        return []  # no git binary (e.g. an sdist install): nothing to verify
    except subprocess.CalledProcessError as exc:
        stderr = (exc.stderr or "").strip()
        if "not a git repository" in stderr.lower():
            return []  # genuinely not a checkout: nothing to verify
        # Any other git failure (dubious ownership, corruption, ...) must
        # surface, not silently pass the check in exactly the automated
        # environments it exists to protect.
        return [f"git ls-files failed ({exc.returncode}): {stderr or 'no stderr'}"]
    return [
        f"tracked bytecode artefact (git rm --cached it): {path}"
        for path in proc.stdout.splitlines()
        if path.endswith(".pyc") or "__pycache__" in path
    ]


# --------------------------------------------------------------------------- #
# 2. docs: relative links + module references
# --------------------------------------------------------------------------- #
def _module_resolves(dotted: str) -> bool:
    """``True`` iff ``dotted`` is an importable module or an attribute of one.

    Tries the full dotted path as a module first, then successively shorter
    prefixes (``find_spec`` raising because a prefix is a plain module, not a
    package, just means "try shorter"); a trailing remainder must then be a
    real attribute of the longest importable prefix — so
    ``repro.kernel.trace``, ``repro.kernel.trace.StepDelta`` and
    ``repro.kernel.StopRun`` all resolve, while any typo in either the
    module path or the attribute name fails.
    """
    if str(SRC_DIR) not in sys.path:
        sys.path.insert(0, str(SRC_DIR))
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        candidate = ".".join(parts[:cut])
        try:
            spec = importlib.util.find_spec(candidate)
        except (ImportError, ValueError):
            continue  # a prefix is a non-package module: try shorter
        if spec is None:
            continue
        remainder = parts[cut:]
        if not remainder:
            return True
        if len(remainder) > 1:
            return False
        module = importlib.import_module(candidate)
        return hasattr(module, remainder[0])
    return False


def check_doc_links() -> List[str]:
    errors: List[str] = []
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(REPO_ROOT)
        for target in _LINK_RE.findall(text):
            target = target.split("#", 1)[0].strip()
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            if not (doc.parent / target).exists():
                errors.append(f"{rel}: broken relative link -> {target}")
        for dotted in sorted(set(_MODULE_RE.findall(text))):
            if not _module_resolves(dotted):
                errors.append(f"{rel}: unknown module reference `{dotted}`")
        for bench in sorted(set(re.findall(r"benchmarks/bench_[a-z0-9_]+\.py", text))):
            if not (REPO_ROOT / bench).is_file():
                errors.append(f"{rel}: unknown benchmark reference {bench}")
    return errors


# --------------------------------------------------------------------------- #
# 3. CLI flags documented in docs/CLI.md
# --------------------------------------------------------------------------- #
def _parser_flags() -> Dict[str, Set[str]]:
    """``subcommand -> set of --option strings`` from the live parser."""
    if str(SRC_DIR) not in sys.path:
        sys.path.insert(0, str(SRC_DIR))
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    return {
        name: {
            option
            for action in sub._actions
            for option in action.option_strings
            if option.startswith("--")
        }
        for name, sub in subparsers.choices.items()
    }


def _subcommand_sections(text: str) -> Dict[str, str]:
    """``command -> section body`` for each ``## `repro-cc <cmd>` `` heading."""
    sections: Dict[str, str] = {}
    matches = list(re.finditer(r"^## `repro-cc ([a-z]+)`", text, re.MULTILINE))
    for i, match in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections[match.group(1)] = text[match.end() : end]
    return sections


def check_cli_docs() -> List[str]:
    doc = DOCS_DIR / "CLI.md"
    if not doc.is_file():
        return ["docs/CLI.md is missing"]
    text = doc.read_text(encoding="utf-8")
    flags = _parser_flags()
    documented = set(_FLAG_RE.findall(text))
    real = {"--help"}.union(*flags.values())
    errors = [
        f"docs/CLI.md names a flag the CLI does not define: {flag}"
        for flag in sorted(documented - real)
    ]
    # Flag completeness is checked per subcommand *section*, not file-wide:
    # a flag documented under `check` must not silence a missing row under
    # `run` — and every subcommand the parser defines is held to it.
    sections = _subcommand_sections(text)
    for command in sorted(flags):
        section_flags = set(_FLAG_RE.findall(sections.get(command, "")))
        for flag in sorted(flags[command] - section_flags - {"--help"}):
            errors.append(
                f"docs/CLI.md section `repro-cc {command}` does not document "
                f"its flag {flag}"
            )
    for command in flags:
        if f"repro-cc {command}" not in text:
            errors.append(f"docs/CLI.md does not mention subcommand `repro-cc {command}`")
    return errors


# --------------------------------------------------------------------------- #
# 4. perf_rows.jsonl row schemas
# --------------------------------------------------------------------------- #
PERF_ROWS_PATH = REPO_ROOT / "benchmarks" / "perf_rows.jsonl"

#: bench name -> required row fields (beyond the universal bench/timestamp).
#: A bench that starts emitting rows must register its schema here, so the
#: perf trajectory stays aggregatable; unregistered bench names fail.
PERF_ROW_SCHEMAS: Dict[str, Set[str]] = {
    "engine_scaling": {"engine", "n", "steps", "steps_per_sec"},
    "engine_scaling_batched": {"engine", "runs", "n", "steps", "steps_per_sec"},
    "streaming_spec_overhead": {
        "engine", "kind", "n", "overhead", "scenario", "steps", "steps_per_sec"
    },
    "campaign_scaling": {"jobs", "runs", "total_steps", "seconds", "runs_per_sec"},
    "campaign_sink_overhead": {
        "sink", "runs", "total_steps", "seconds", "runs_per_sec", "overhead"
    },
    "run_cache_resubmission": {
        "variant", "runs", "cold_seconds", "cached_seconds", "speedup"
    },
    "row_store_aggregates": {
        "query", "rows", "jsonl_seconds", "store_seconds", "speedup"
    },
    "campaign_driver_overhead": {
        "variant", "runs", "total_steps", "seconds", "overhead"
    },
}

_SCALAR_TYPES = (str, int, float, bool, type(None))


def check_perf_rows() -> List[str]:
    if not PERF_ROWS_PATH.is_file():
        return []  # nothing recorded yet (fresh clone before any bench run)
    errors: List[str] = []
    try:
        rel = PERF_ROWS_PATH.relative_to(REPO_ROOT)
    except ValueError:  # a test pointed PERF_ROWS_PATH outside the repo
        rel = PERF_ROWS_PATH
    for lineno, line in enumerate(
        PERF_ROWS_PATH.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{rel}:{lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(row, dict):
            errors.append(f"{rel}:{lineno}: row is not a JSON object")
            continue
        bad_values = [k for k, v in row.items() if not isinstance(v, _SCALAR_TYPES)]
        if bad_values:
            errors.append(f"{rel}:{lineno}: non-scalar field(s) {bad_values}")
        if not isinstance(row.get("timestamp"), (int, float)):
            errors.append(f"{rel}:{lineno}: missing numeric 'timestamp'")
        bench = row.get("bench")
        if not isinstance(bench, str):
            errors.append(f"{rel}:{lineno}: missing string 'bench'")
            continue
        schema = PERF_ROW_SCHEMAS.get(bench)
        if schema is None:
            errors.append(
                f"{rel}:{lineno}: unknown bench {bench!r} "
                "(register its row schema in tools/check_repo.py PERF_ROW_SCHEMAS)"
            )
            continue
        missing = schema - set(row)
        if missing:
            errors.append(
                f"{rel}:{lineno}: bench {bench!r} row missing field(s) {sorted(missing)}"
            )
    return errors


# --------------------------------------------------------------------------- #
# 5. multiprocessing entry points resolvable from a spawn context
# --------------------------------------------------------------------------- #
def check_spawn_entry_points() -> List[str]:
    """A spawn-context worker re-imports modules and resolves functions by
    dotted name via pickle; anything nested, lambda-valued or renamed breaks
    ``repro-cc campaign --jobs N`` at runtime.  Verify the declared entry
    points (and a sample expanded job payload) round-trip *here*, in tier-1.
    """
    if str(SRC_DIR) not in sys.path:
        sys.path.insert(0, str(SRC_DIR))
    errors: List[str] = []
    try:
        campaign = importlib.import_module("repro.campaign")
    except Exception as exc:  # pragma: no cover - import breakage shows everywhere
        return [f"cannot import repro.campaign: {exc!r}"]
    for dotted in getattr(campaign, "SPAWN_ENTRY_POINTS", ()):
        module_name, _, attr = dotted.rpartition(".")
        try:
            module = importlib.import_module(module_name)
        except Exception as exc:
            errors.append(f"spawn entry point {dotted}: module import failed ({exc!r})")
            continue
        func = getattr(module, attr, None)
        if func is None or not callable(func):
            errors.append(f"spawn entry point {dotted}: not a module-level callable")
            continue
        if getattr(func, "__qualname__", attr) != attr:
            errors.append(
                f"spawn entry point {dotted}: nested callable "
                f"({func.__qualname__}) cannot be resolved by a spawned worker"
            )
            continue
        try:
            if pickle.loads(pickle.dumps(func)) is not func:
                errors.append(f"spawn entry point {dotted}: pickle does not round-trip by reference")
        except Exception as exc:
            errors.append(f"spawn entry point {dotted}: not picklable ({exc!r})")
    # The payload must survive the trip too: expand a tiny matrix and
    # round-trip one job.
    try:
        matrix = importlib.import_module("repro.campaign.matrix")
        jobs = matrix.expand_jobs(
            matrix.CampaignSpec(scenarios=("figure1",), max_steps=1)
        )
        if pickle.loads(pickle.dumps(jobs[0])) != jobs[0]:
            errors.append("RunJob pickle round-trip is not value-identical")
    except Exception as exc:
        errors.append(f"RunJob spawn payload check failed: {exc!r}")
    return errors


# --------------------------------------------------------------------------- #
# 6. campaign row schema + resume byte-identical round-trip
# --------------------------------------------------------------------------- #
def _roundtrip_row(row: Dict[str, object], resume_module, label: str) -> List[str]:
    """Serialize → parse-as-resume-would → re-serialize must be bytes-stable."""
    errors: List[str] = []
    line = json.dumps(row, sort_keys=True)
    try:
        parsed = resume_module.parse_rows([line], source=label)
    except Exception as exc:
        return [f"{label}: resume.parse_rows rejected a schema'd row ({exc!r})"]
    if len(parsed) != 1 or parsed[0] != row:
        errors.append(f"{label}: resume round-trip is not value-identical")
    elif json.dumps(parsed[0], sort_keys=True) != line:
        errors.append(f"{label}: resume round-trip is not byte-identical")
    return errors


def check_campaign_rows() -> List[str]:
    """The row schema constants, the rows actually emitted, and the resume
    parser must agree — and rows must survive the JSONL round-trip byte for
    byte, which is what makes an interrupted-then-resumed campaign's final
    rewrite equal an uninterrupted run.
    """
    if str(SRC_DIR) not in sys.path:
        sys.path.insert(0, str(SRC_DIR))
    errors: List[str] = []
    try:
        campaign_jobs = importlib.import_module("repro.campaign.jobs")
        matrix = importlib.import_module("repro.campaign.matrix")
        resume = importlib.import_module("repro.campaign.resume")
    except Exception as exc:  # pragma: no cover - import breakage shows everywhere
        return [f"cannot import the campaign persistence modules: {exc!r}"]
    job = matrix.expand_jobs(matrix.CampaignSpec(scenarios=("figure1",), max_steps=5))[0]

    result = campaign_jobs.execute_job(job)
    expected = set(campaign_jobs.ROW_FIELDS)
    if set(result.row) != expected:
        errors.append(
            "execute_job row keys drifted from ROW_FIELDS: "
            f"missing {sorted(expected - set(result.row))}, "
            f"extra {sorted(set(result.row) - expected)}"
        )
    errors.extend(_roundtrip_row(result.row, resume, "completed row"))

    error_row = campaign_jobs.error_result(job, RuntimeError("schema probe")).row
    expected_error = set(campaign_jobs.ERROR_ROW_FIELDS)
    if set(error_row) != expected_error:
        errors.append(
            "error_result row keys drifted from ERROR_ROW_FIELDS: "
            f"missing {sorted(expected_error - set(error_row))}, "
            f"extra {sorted(set(error_row) - expected_error)}"
        )
    errors.extend(_roundtrip_row(error_row, resume, "error row"))
    return errors


# --------------------------------------------------------------------------- #
# 7. row sinks picklable (configurations shippable between processes)
# --------------------------------------------------------------------------- #
def check_sink_picklability() -> List[str]:
    if str(SRC_DIR) not in sys.path:
        sys.path.insert(0, str(SRC_DIR))
    errors: List[str] = []
    try:
        sinks = importlib.import_module("repro.campaign.sinks")
    except Exception as exc:  # pragma: no cover - import breakage shows everywhere
        return [f"cannot import repro.campaign.sinks: {exc!r}"]
    samples = {
        "AckingSocketSink": sinks.AckingSocketSink(
            "tcp:127.0.0.1:9", hello={"op": "hello"}
        ),
        "BufferedSink": sinks.BufferedSink(),
        "JsonlSink": sinks.JsonlSink("rows.jsonl"),
        "SocketSink": sinks.SocketSink("tcp:127.0.0.1:9"),
        "TeeSink": sinks.TeeSink([sinks.BufferedSink()]),
    }
    for sink_type in getattr(sinks, "SINK_TYPES", ()):
        name = sink_type.__name__
        if getattr(sinks, name, None) is not sink_type or sink_type.__qualname__ != name:
            errors.append(f"sink {name}: not a module-top-level class")
            continue
        try:
            if pickle.loads(pickle.dumps(sink_type)) is not sink_type:
                errors.append(f"sink {name}: class does not pickle by reference")
        except Exception as exc:
            errors.append(f"sink {name}: class not picklable ({exc!r})")
            continue
        sample = samples.get(name)
        if sample is None:
            errors.append(
                f"sink {name}: no sample instance in check_sink_picklability "
                "(add one so fresh-instance pickling stays covered)"
            )
            continue
        try:
            clone = pickle.loads(pickle.dumps(sample))
        except Exception as exc:
            errors.append(f"sink {name}: fresh instance not picklable ({exc!r})")
            continue
        if type(clone) is not sink_type:
            errors.append(f"sink {name}: instance pickle round-trip changed type")
    return errors


# --------------------------------------------------------------------------- #
# 8. shard collector merge: shards' streams merged == --jobs 1 bytes
# --------------------------------------------------------------------------- #
#: op -> sample field values, one per registered control message.  The check
#: builds each through ``control_message`` so a schema edit that breaks the
#: builder (or a new op without a sample here) fails loudly in tier-1.
CONTROL_SAMPLE_FIELDS: Dict[str, Dict[str, object]] = {
    "hello": {"shard": None, "jobs": 0, "fingerprint": "", "range": None},
    "welcome": {"jobs": 0, "pending": 0},
    "reject": {"error": ""},
    "pull": {"max": 1},
    "grant": {"jobs": [], "done": False},
    "ack": {"job": 0},
}


def check_collector_merge() -> List[str]:
    """The distributed sibling of ``check_campaign_rows``: an in-process
    collector fed by two static shards over a real socket must merge their
    acked streams into exactly the bytes a local ``--jobs 1`` run writes —
    the property `repro-cc collect`'s output file guarantee rests on.  Also
    keeps the control-message schema registry honest: every op builds
    through ``control_message``, every schema carries the ``"op"``
    discriminator, and campaign rows never do (rows vs control messages are
    distinguished by exactly that key).
    """
    if str(SRC_DIR) not in sys.path:
        sys.path.insert(0, str(SRC_DIR))
    errors: List[str] = []
    try:
        campaign = importlib.import_module("repro.campaign")
        shard_mod = importlib.import_module("repro.campaign.shard")
        campaign_jobs = importlib.import_module("repro.campaign.jobs")
        matrix = importlib.import_module("repro.campaign.matrix")
        sinks = importlib.import_module("repro.campaign.sinks")
    except Exception as exc:  # pragma: no cover - import breakage shows everywhere
        return [f"cannot import the campaign shard modules: {exc!r}"]

    for op, schema in shard_mod.CONTROL_SCHEMAS.items():
        if "op" not in schema:
            errors.append(f"control schema {op!r} lacks the 'op' discriminator key")
    for fields in (campaign_jobs.ROW_FIELDS, campaign_jobs.ERROR_ROW_FIELDS):
        if "op" in fields:
            errors.append(
                "campaign rows must not carry an 'op' key — it is what "
                "distinguishes control messages from rows on the wire"
            )
    if set(CONTROL_SAMPLE_FIELDS) != set(shard_mod.CONTROL_SCHEMAS):
        errors.append(
            "control-op registry drifted: CONTROL_SCHEMAS ops are "
            f"{sorted(shard_mod.CONTROL_SCHEMAS)}, samples cover "
            f"{sorted(CONTROL_SAMPLE_FIELDS)} (update CONTROL_SAMPLE_FIELDS)"
        )
    else:
        for op, fields in CONTROL_SAMPLE_FIELDS.items():
            try:
                shard_mod.control_message(op, **fields)
            except Exception as exc:
                errors.append(f"control_message({op!r}) rejects its own schema: {exc!r}")
    if errors:
        return errors  # no point running the socket round-trip on a broken registry

    jobs = matrix.expand_jobs(
        matrix.CampaignSpec(scenarios=("figure1",), seeds=(1, 2), max_steps=5)
    )
    baseline = campaign.run_campaign(jobs, jobs=1).jsonl_lines()
    collector = campaign.Collector(jobs, "tcp:127.0.0.1:0").start()
    failures: List[str] = []

    def feed(index: int) -> None:
        try:
            campaign.run_shard(collector.address, jobs, shard=(index, 2))
        except Exception as exc:
            failures.append(f"shard {index + 1}/2 failed: {exc!r}")

    threads = [threading.Thread(target=feed, args=(index,)) for index in range(2)]
    for thread in threads:
        thread.start()
    try:
        rows = collector.run(timeout=60)
    except TimeoutError as exc:
        rows = []
        failures.append(f"collector did not complete: {exc}")
    for thread in threads:
        thread.join(timeout=10)
    errors.extend(failures)
    if not failures and [sinks.row_line(row) for row in rows] != baseline:
        errors.append(
            "two static shards merged through the collector are not "
            "byte-identical to the same matrix run with --jobs 1"
        )
    return errors


# --------------------------------------------------------------------------- #
# 9. run-cache key covers exactly the row identity (drift bites here)
# --------------------------------------------------------------------------- #
def _mutated_value(value: object) -> object:
    """A different-but-same-shape value for the key-sensitivity sweep."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.5
    if isinstance(value, str):
        return value + "-mutant"
    return 0 if value is None else None


def check_run_cache_key() -> List[str]:
    """The content-addressed run cache is only safe while its key pins the
    *entire* run identity: ``CACHE_KEY_ATTRS`` must equal
    ``ROW_IDENTITY_ATTRS`` minus ``"job"`` (the index is a matrix position,
    not run identity), every identity attribute must flip the key when it
    changes (a new ``RunJob`` axis that the key ignores would alias cache
    entries across different runs — this sweep is where that drift bites),
    and the index must *not* flip it (or reshaped matrices would never hit).
    """
    if str(SRC_DIR) not in sys.path:
        sys.path.insert(0, str(SRC_DIR))
    errors: List[str] = []
    try:
        store = importlib.import_module("repro.campaign.store")
        campaign_jobs = importlib.import_module("repro.campaign.jobs")
        matrix = importlib.import_module("repro.campaign.matrix")
    except Exception as exc:  # pragma: no cover - import breakage shows everywhere
        return [f"cannot import the campaign store modules: {exc!r}"]
    expected = {
        key: attr
        for key, attr in campaign_jobs.ROW_IDENTITY_ATTRS.items()
        if key != "job"
    }
    if dict(store.CACHE_KEY_ATTRS) != expected:
        errors.append(
            "CACHE_KEY_ATTRS drifted from ROW_IDENTITY_ATTRS minus 'job': "
            f"missing {sorted(set(expected) - set(store.CACHE_KEY_ATTRS))}, "
            f"extra {sorted(set(store.CACHE_KEY_ATTRS) - set(expected))}"
        )
        return errors  # the sweep below would just repeat this per field
    import dataclasses

    job = matrix.expand_jobs(matrix.CampaignSpec(scenarios=("figure1",), max_steps=5))[0]
    base = store.run_cache_key(job)
    for key, attr in expected.items():
        mutated = dataclasses.replace(
            job, **{attr: _mutated_value(getattr(job, attr))}
        )
        if store.run_cache_key(mutated) == base:
            errors.append(
                f"run_cache_key ignores identity field {key!r} (RunJob.{attr}): "
                "two different runs would share a cache entry"
            )
    if store.run_cache_key(dataclasses.replace(job, index=job.index + 1)) != base:
        errors.append(
            "run_cache_key depends on the job index — the same run at a "
            "different matrix position would never hit"
        )
    if store.run_cache_key_for_row(
        {k: getattr(job, a) for k, a in campaign_jobs.ROW_IDENTITY_ATTRS.items()}
    ) != base:
        errors.append(
            "run_cache_key_for_row disagrees with run_cache_key for the "
            "same identity block"
        )
    return errors


# --------------------------------------------------------------------------- #
# 10. the CLI stays a thin adapter over the campaign driver
# --------------------------------------------------------------------------- #
CLI_PATH = SRC_DIR / "repro" / "cli.py"

#: Module prefixes ``repro/cli.py`` may not import: all dispatch machinery
#: (worker pools, the shard socket protocol, batched grouping) is reached
#: through ``repro.campaign.driver``, so a fourth orchestration copy cannot
#: quietly grow back inside the argparse layer.
CLI_FORBIDDEN_IMPORTS = ("multiprocessing", "socket", "repro.campaign.batched")


def check_cli_thin_adapter() -> List[str]:
    """``repro/cli.py`` must stay a flag-parsing adapter over the driver.

    AST-walks the CLI module and flags any ``import`` / ``from ... import``
    whose resolved module is (or sits under) a forbidden prefix — including
    ``from repro.campaign import batched``-style spellings.
    """
    import ast

    try:
        rel = CLI_PATH.relative_to(REPO_ROOT).as_posix()
    except ValueError:  # monkeypatched out of the repo in tests
        rel = CLI_PATH.as_posix()
    try:
        tree = ast.parse(CLI_PATH.read_text(encoding="utf-8"))
    except (OSError, SyntaxError) as exc:
        return [f"{rel}: cannot parse the CLI module: {exc}"]

    def forbidden(module: str) -> bool:
        return any(
            module == banned or module.startswith(banned + ".")
            for banned in CLI_FORBIDDEN_IMPORTS
        )

    errors: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names if forbidden(alias.name)]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            names = [
                f"{base}.{alias.name}" if base else alias.name
                for alias in node.names
                if node.level == 0 and (forbidden(base) or forbidden(f"{base}.{alias.name}"))
            ]
        else:
            continue
        for name in names:
            errors.append(
                f"{rel}:{node.lineno}: the CLI imports {name!r} — dispatch "
                "machinery belongs behind repro.campaign.driver (thin-adapter "
                "invariant)"
            )
    return errors


# --------------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------------- #
CHECKS: List[Callable[[], List[str]]] = [
    check_no_tracked_bytecode,
    check_doc_links,
    check_cli_docs,
    check_perf_rows,
    check_spawn_entry_points,
    check_campaign_rows,
    check_sink_picklability,
    check_collector_merge,
    check_run_cache_key,
    check_cli_thin_adapter,
]


def run_checks() -> List[str]:
    errors: List[str] = []
    for check in CHECKS:
        errors.extend(check())
    return errors


def main() -> int:
    errors = run_checks()
    for error in errors:
        print(f"check_repo: {error}", file=sys.stderr)
    if errors:
        print(f"check_repo: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("check_repo: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
