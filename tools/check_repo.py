#!/usr/bin/env python3
"""Repo hygiene checks, tier-1-safe (fast, no network, no state mutation).

Three checks, each returning a list of human-readable error strings:

* ``check_no_tracked_bytecode`` — no ``.pyc`` / ``__pycache__`` entries ever
  re-enter the git index (they were purged once; ``.gitignore`` keeps new
  ones out of ``git add .``, this check keeps them out of force-adds);
* ``check_doc_links`` — every relative markdown link in ``README.md`` and
  ``docs/*.md`` resolves to an existing file, and every backticked
  ``repro.foo.bar`` dotted name names an importable module (or an attribute
  of one), so the architecture tables cannot drift from the package layout;
* ``check_cli_docs`` — ``docs/CLI.md`` documents every ``--flag`` of the
  ``repro-cc run``/``check`` subcommands and mentions no flag the parser
  does not define, introspected live from ``repro.cli.build_parser()``.

Run standalone (``python tools/check_repo.py``, exit 1 on failure) or from
the test suite (``tests/test_repo_checks.py`` calls :func:`run_checks`).
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import re
import subprocess
import sys
from pathlib import Path
from typing import Callable, Dict, List, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
SRC_DIR = REPO_ROOT / "src"

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
#: Dotted package paths, optionally class/function-qualified:
#: `repro.kernel.trace`, `repro.kernel.trace.StepDelta`, `repro.kernel.StopRun`.
_MODULE_RE = re.compile(
    r"`(repro(?:\.[a-z_][a-z_0-9]*)*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)`"
)
_FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def _doc_files() -> List[Path]:
    docs = [REPO_ROOT / "README.md"]
    if DOCS_DIR.is_dir():
        docs.extend(sorted(DOCS_DIR.glob("*.md")))
    return [d for d in docs if d.is_file()]


# --------------------------------------------------------------------------- #
# 1. no tracked bytecode
# --------------------------------------------------------------------------- #
def check_no_tracked_bytecode() -> List[str]:
    try:
        proc = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
    except OSError:
        return []  # no git binary (e.g. an sdist install): nothing to verify
    except subprocess.CalledProcessError as exc:
        stderr = (exc.stderr or "").strip()
        if "not a git repository" in stderr.lower():
            return []  # genuinely not a checkout: nothing to verify
        # Any other git failure (dubious ownership, corruption, ...) must
        # surface, not silently pass the check in exactly the automated
        # environments it exists to protect.
        return [f"git ls-files failed ({exc.returncode}): {stderr or 'no stderr'}"]
    return [
        f"tracked bytecode artefact (git rm --cached it): {path}"
        for path in proc.stdout.splitlines()
        if path.endswith(".pyc") or "__pycache__" in path
    ]


# --------------------------------------------------------------------------- #
# 2. docs: relative links + module references
# --------------------------------------------------------------------------- #
def _module_resolves(dotted: str) -> bool:
    """``True`` iff ``dotted`` is an importable module or an attribute of one.

    Tries the full dotted path as a module first, then successively shorter
    prefixes (``find_spec`` raising because a prefix is a plain module, not a
    package, just means "try shorter"); a trailing remainder must then be a
    real attribute of the longest importable prefix — so
    ``repro.kernel.trace``, ``repro.kernel.trace.StepDelta`` and
    ``repro.kernel.StopRun`` all resolve, while any typo in either the
    module path or the attribute name fails.
    """
    if str(SRC_DIR) not in sys.path:
        sys.path.insert(0, str(SRC_DIR))
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        candidate = ".".join(parts[:cut])
        try:
            spec = importlib.util.find_spec(candidate)
        except (ImportError, ValueError):
            continue  # a prefix is a non-package module: try shorter
        if spec is None:
            continue
        remainder = parts[cut:]
        if not remainder:
            return True
        if len(remainder) > 1:
            return False
        module = importlib.import_module(candidate)
        return hasattr(module, remainder[0])
    return False


def check_doc_links() -> List[str]:
    errors: List[str] = []
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(REPO_ROOT)
        for target in _LINK_RE.findall(text):
            target = target.split("#", 1)[0].strip()
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            if not (doc.parent / target).exists():
                errors.append(f"{rel}: broken relative link -> {target}")
        for dotted in sorted(set(_MODULE_RE.findall(text))):
            if not _module_resolves(dotted):
                errors.append(f"{rel}: unknown module reference `{dotted}`")
        for bench in sorted(set(re.findall(r"benchmarks/bench_[a-z0-9_]+\.py", text))):
            if not (REPO_ROOT / bench).is_file():
                errors.append(f"{rel}: unknown benchmark reference {bench}")
    return errors


# --------------------------------------------------------------------------- #
# 3. CLI flags documented in docs/CLI.md
# --------------------------------------------------------------------------- #
def _parser_flags() -> Dict[str, Set[str]]:
    """``subcommand -> set of --option strings`` from the live parser."""
    if str(SRC_DIR) not in sys.path:
        sys.path.insert(0, str(SRC_DIR))
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    return {
        name: {
            option
            for action in sub._actions
            for option in action.option_strings
            if option.startswith("--")
        }
        for name, sub in subparsers.choices.items()
    }


def _subcommand_sections(text: str) -> Dict[str, str]:
    """``command -> section body`` for each ``## `repro-cc <cmd>` `` heading."""
    sections: Dict[str, str] = {}
    matches = list(re.finditer(r"^## `repro-cc ([a-z]+)`", text, re.MULTILINE))
    for i, match in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections[match.group(1)] = text[match.end() : end]
    return sections


def check_cli_docs() -> List[str]:
    doc = DOCS_DIR / "CLI.md"
    if not doc.is_file():
        return ["docs/CLI.md is missing"]
    text = doc.read_text(encoding="utf-8")
    flags = _parser_flags()
    documented = set(_FLAG_RE.findall(text))
    real = {"--help"}.union(*flags.values())
    errors = [
        f"docs/CLI.md names a flag the CLI does not define: {flag}"
        for flag in sorted(documented - real)
    ]
    # Flag completeness is checked per subcommand *section*, not file-wide:
    # a flag documented under `check` must not silence a missing row under
    # `run` — and every subcommand the parser defines is held to it.
    sections = _subcommand_sections(text)
    for command in sorted(flags):
        section_flags = set(_FLAG_RE.findall(sections.get(command, "")))
        for flag in sorted(flags[command] - section_flags - {"--help"}):
            errors.append(
                f"docs/CLI.md section `repro-cc {command}` does not document "
                f"its flag {flag}"
            )
    for command in flags:
        if f"repro-cc {command}" not in text:
            errors.append(f"docs/CLI.md does not mention subcommand `repro-cc {command}`")
    return errors


# --------------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------------- #
CHECKS: List[Callable[[], List[str]]] = [
    check_no_tracked_bytecode,
    check_doc_links,
    check_cli_docs,
]


def run_checks() -> List[str]:
    errors: List[str] = []
    for check in CHECKS:
        errors.extend(check())
    return errors


def main() -> int:
    errors = run_checks()
    for error in errors:
        print(f"check_repo: {error}", file=sys.stderr)
    if errors:
        print(f"check_repo: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("check_repo: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
