"""Repository tooling (not shipped inside the ``repro`` package).

``tools.staticcheck`` is the ``repro-lint`` static-analysis suite;
``tools/check_repo.py`` is the historical entry point, now a thin shim over
the same pass registry.
"""
