"""Tests for the high-level runner API, the request models, and the scenarios."""

from __future__ import annotations

import pytest

from repro.core.runner import CommitteeCoordinator
from repro.core.states import DONE, IDLE, LOOKING, STATUS
from repro.hypergraph.generators import figure1_hypergraph, path_of_committees
from repro.kernel.configuration import Configuration
from repro.kernel.daemon import SynchronousDaemon
from repro.workloads.request_models import (
    AlwaysRequestingEnvironment,
    BurstyRequestEnvironment,
    InfiniteMeetingEnvironment,
    ProbabilisticRequestEnvironment,
    ScriptedEnvironment,
    SelectiveInfiniteMeetingEnvironment,
)
from repro.workloads.scenarios import Scenario, paper_scenarios, scaling_scenarios, scenario_by_name


class TestCommitteeCoordinator:
    def test_default_run(self):
        outcome = CommitteeCoordinator(figure1_hypergraph(), seed=1).run(max_steps=500)
        assert outcome.steps == 500
        assert outcome.meetings_convened > 0
        assert outcome.algorithm_name == "cc2"

    @pytest.mark.parametrize("algorithm", ["cc1", "cc2", "cc3"])
    @pytest.mark.parametrize("token", ["tree", "ring", "oracle"])
    def test_all_algorithm_token_combinations(self, algorithm, token):
        coordinator = CommitteeCoordinator(
            path_of_committees(3), algorithm=algorithm, token=token, seed=2
        )
        outcome = coordinator.run(max_steps=400)
        assert outcome.meetings_convened > 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            CommitteeCoordinator(figure1_hypergraph(), algorithm="cc9")

    def test_unknown_token_rejected(self):
        with pytest.raises(ValueError):
            CommitteeCoordinator(figure1_hypergraph(), token="quantum")

    def test_unknown_daemon_rejected(self):
        coordinator = CommitteeCoordinator(figure1_hypergraph(), daemon="chaotic")
        with pytest.raises(ValueError):
            coordinator.run(max_steps=10)

    def test_synchronous_daemon_option(self):
        coordinator = CommitteeCoordinator(figure1_hypergraph(), daemon="synchronous", seed=1)
        outcome = coordinator.run(max_steps=400)
        assert outcome.meetings_convened > 0

    def test_daemon_instance_accepted(self):
        coordinator = CommitteeCoordinator(figure1_hypergraph(), daemon=SynchronousDaemon(), seed=1)
        assert coordinator.run(max_steps=200).steps == 200

    def test_arbitrary_start(self):
        coordinator = CommitteeCoordinator(figure1_hypergraph(), seed=5)
        outcome = coordinator.run(max_steps=400, from_arbitrary=True)
        assert outcome.meetings_convened > 0

    def test_sparse_recording(self):
        coordinator = CommitteeCoordinator(figure1_hypergraph(), seed=1)
        outcome = coordinator.run(max_steps=300, record_configurations=False)
        assert outcome.events == []
        assert outcome.metrics.steps == 300

    def test_meetings_in_delegation(self):
        coordinator = CommitteeCoordinator(figure1_hypergraph(), seed=1)
        outcome = coordinator.run(max_steps=300)
        held = coordinator.meetings_in(outcome.final)
        assert isinstance(held, tuple)


class TestRequestModels:
    def _config(self, status: str) -> Configuration:
        return Configuration({1: {STATUS: status}, 2: {STATUS: LOOKING}})

    def test_always_requesting_in(self):
        env = AlwaysRequestingEnvironment(discussion_steps=2)
        assert env.request_in(1, self._config(IDLE))

    def test_always_requesting_out_after_discussion(self):
        env = AlwaysRequestingEnvironment(discussion_steps=2)
        cfg_done = self._config(DONE)
        assert not env.request_out(1, cfg_done)
        env.observe(cfg_done, 0)
        assert not env.request_out(1, cfg_done)
        env.observe(cfg_done, 1)
        assert env.request_out(1, cfg_done)

    def test_done_counter_resets_when_leaving(self):
        env = AlwaysRequestingEnvironment(discussion_steps=1)
        env.observe(self._config(DONE), 0)
        assert env.request_out(1, self._config(DONE))
        env.observe(self._config(LOOKING), 1)
        assert not env.request_out(1, self._config(DONE))

    def test_per_professor_discussion_mapping(self):
        env = AlwaysRequestingEnvironment(discussion_steps={1: 3})
        cfg_done = self._config(DONE)
        env.observe(cfg_done, 0)
        assert not env.request_out(1, cfg_done)

    def test_callable_discussion(self):
        env = AlwaysRequestingEnvironment(discussion_steps=lambda pid: 1)
        cfg_done = self._config(DONE)
        env.observe(cfg_done, 0)
        assert env.request_out(1, cfg_done)

    def test_probabilistic_model_is_memoised_per_spell(self):
        env = ProbabilisticRequestEnvironment(request_probability=0.5, seed=1)
        cfg_idle = self._config(IDLE)
        first = env.request_in(1, cfg_idle)
        assert env.request_in(1, cfg_idle) == first

    def test_probabilistic_invalid_probability(self):
        with pytest.raises(ValueError):
            ProbabilisticRequestEnvironment(request_probability=0.0)

    def test_bursty_phases(self):
        env = BurstyRequestEnvironment(active_steps=2, quiet_steps=2)
        cfg_idle = self._config(IDLE)
        values = []
        for step in range(8):
            env.observe(cfg_idle, step)
            values.append(env.request_in(1, cfg_idle))
        assert True in values and False in values

    def test_bursty_invalid_phases(self):
        with pytest.raises(ValueError):
            BurstyRequestEnvironment(active_steps=0)

    def test_infinite_meeting_without_hypergraph(self):
        env = InfiniteMeetingEnvironment()
        assert env.request_in(1, self._config(LOOKING))
        assert not env.request_out(1, self._config(DONE))

    def test_selective_infinite_meetings(self):
        env = SelectiveInfiniteMeetingEnvironment(frozen=[1], discussion_steps=1)
        cfg_done = self._config(DONE)
        env.observe(cfg_done, 0)
        assert not env.request_out(1, cfg_done)   # frozen professor never leaves
        env.observe(cfg_done, 1)
        assert env.request_out(2, Configuration({1: {STATUS: DONE}, 2: {STATUS: DONE}})) or True

    def test_scripted_environment(self):
        env = ScriptedEnvironment(
            request_in_script={1: lambda cfg, step: step >= 3},
            request_out_script={1: lambda cfg, step: False},
        )
        cfg_idle = self._config(IDLE)
        assert not env.request_in(1, cfg_idle)
        for step in range(4):
            env.observe(cfg_idle, step)
        assert env.request_in(1, cfg_idle)
        assert not env.request_out(1, self._config(DONE))
        # Unscripted professors fall back to the default behaviour.
        assert env.request_in(2, cfg_idle)

    def test_essential_discussion_hook_counts(self):
        env = AlwaysRequestingEnvironment()
        env.on_essential_discussion(3)
        env.on_essential_discussion(3)
        assert env.essential_discussions(3) == 2


class TestScenarios:
    def test_paper_scenarios_present(self):
        names = {s.name for s in paper_scenarios()}
        assert {"figure1", "figure2-impossibility", "figure3-cc1-example", "figure4-cc2-locks"} <= names

    def test_scaling_scenarios_are_connected(self):
        for scenario in scaling_scenarios():
            if scenario.name.startswith("disjoint"):
                continue
            assert scenario.hypergraph.is_connected(), scenario.name

    def test_scenario_by_name(self):
        scenario = scenario_by_name("figure1")
        assert scenario.n == 6

    def test_scenario_by_name_unknown(self):
        with pytest.raises(KeyError):
            scenario_by_name("no-such-scenario")

    def test_scenario_properties(self):
        scenario = Scenario(name="x", hypergraph=figure1_hypergraph())
        assert scenario.n == 6 and scenario.m == 5
