"""Tests for the campaign persistence layer: sinks, resume, adaptive re-runs.

The crash-safety acceptance property lives here at the library level (the
CLI-level twin is in ``test_cli_end_to_end.py``): stream rows through a
:class:`JsonlSink`, kill the campaign after ``k`` rows (simulated by
truncating the file mid-line, exactly what an interrupted flush leaves),
resume, and assert the final job-order rewrite is **byte-identical** to an
uninterrupted run.  Worker exceptions must become ``status="error"`` rows
— under a real spawn pool too — instead of aborting the drain.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import socket
import threading

import pytest

from repro.campaign import (
    BufferedSink,
    CampaignResult,
    CampaignSpec,
    FaultSchedule,
    JobResult,
    JsonlSink,
    ResumeError,
    SocketSink,
    TeeSink,
    disagreement_cells,
    execute_job,
    expand_jobs,
    merge_results,
    read_rows,
    remaining_jobs,
    rerun_jobs,
    run_campaign,
    sink_from_spec,
    validate_rows_match_jobs,
)
from repro.campaign.jobs import ERROR_ROW_FIELDS, ROW_FIELDS, error_result
from repro.campaign.resume import as_job_result, parse_rows
from repro.campaign.sinks import row_line


def _spec(**overrides) -> CampaignSpec:
    defaults = dict(
        scenarios=("figure1", "grid-3x3"),
        algorithms=("cc1", "cc2"),
        seeds=(1, 2),
        max_steps=100,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


#: A deterministic disagreement cell: figure1 x cc2 x faults(40, 0.3) at
#: 200 steps holds under seed 3/4 and violates under seed 5.
_DISAGREE_SPEC = CampaignSpec(
    scenarios=("figure1",),
    algorithms=("cc2",),
    faults=(FaultSchedule(every=40, fraction=0.3),),
    seeds=(3, 4, 5),
    max_steps=200,
)


class TestSinks:
    def test_buffered_sink_collects_in_completion_order(self):
        sink = BufferedSink()
        result = run_campaign(_spec(scenarios=("figure1",), seeds=(1,)), sink=sink)
        assert sink.rows == [r.row for r in result.results]

    def test_jsonl_sink_flushes_every_row_before_close(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        sink = JsonlSink(str(path))
        sink.write_row({"job": 0, "ok": True})
        sink.write_row({"job": 1, "ok": False})
        # No close() yet: the file must already hold both complete lines —
        # that is the whole crash-safety point.
        lines = path.read_text().splitlines()
        assert lines == [row_line({"job": 0, "ok": True}), row_line({"job": 1, "ok": False})]
        sink.close()

    def test_jsonl_sink_append_mode_continues_file(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.write_row({"job": 0})
        with JsonlSink(str(path), append=True) as sink:
            sink.write_row({"job": 1})
        assert [json.loads(l)["job"] for l in path.read_text().splitlines()] == [0, 1]

    def test_jsonl_sink_append_truncates_partial_tail(self, tmp_path):
        # An interrupted flush leaves a partial final line.  Opening the
        # file with append=True must truncate that tail before writing, or
        # the next appended row is glued onto the fragment and the file is
        # unparseable from that point on.
        path = tmp_path / "rows.jsonl"
        good = [row_line({"job": 0, "ok": True}), row_line({"job": 1, "ok": True})]
        path.write_text("\n".join(good) + "\n" + '{"job": 2, "ok"')
        with JsonlSink(str(path), append=True) as sink:
            sink.write_row({"job": 2, "ok": False})
        assert path.read_text().splitlines() == good + [row_line({"job": 2, "ok": False})]
        # Idempotent across repeated crashes: a second partial tail on the
        # same file is dropped just the same.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"job": 3')
        with JsonlSink(str(path), append=True) as sink:
            sink.write_row({"job": 3, "ok": True})
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["job"] for row in rows] == [0, 1, 2, 3]

    def test_fresh_sinks_pickle_but_active_sinks_refuse(self, tmp_path):
        fresh = JsonlSink(str(tmp_path / "rows.jsonl"))
        clone = pickle.loads(pickle.dumps(fresh))
        assert isinstance(clone, JsonlSink) and clone.path == fresh.path
        fresh.write_row({"job": 0})
        with pytest.raises(TypeError, match="open file handle"):
            pickle.dumps(fresh)
        fresh.close()
        assert isinstance(pickle.loads(pickle.dumps(SocketSink("tcp:127.0.0.1:9"))), SocketSink)

    def test_tee_sink_fans_out(self):
        first, second = BufferedSink(), BufferedSink()
        tee = TeeSink([first, second])
        tee.write_row({"job": 7})
        assert first.rows == second.rows == [{"job": 7}]

    def test_tee_sink_close_closes_every_sink_and_reraises_first_error(self):
        closed = []

        class Exploding(BufferedSink):
            def __init__(self, name):
                super().__init__()
                self.name = name

            def close(self):
                closed.append(self.name)
                raise RuntimeError(f"boom from {self.name}")

        class Recording(BufferedSink):
            def close(self):
                closed.append("quiet")

        tee = TeeSink([Exploding("first"), Recording(), Exploding("last")])
        with pytest.raises(RuntimeError, match="boom from first"):
            tee.close()
        # Every sink got its close() — the first failure must not leak the
        # file handles / sockets of the sinks behind it.
        assert closed == ["first", "quiet", "last"]

    def test_unix_socket_sink_streams_rows(self, tmp_path):
        address = str(tmp_path / "rows.sock")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(address)
        server.listen(1)
        received = bytearray()

        def serve():
            conn, _ = server.accept()
            while chunk := conn.recv(4096):
                received.extend(chunk)
            conn.close()

        thread = threading.Thread(target=serve)
        thread.start()
        with sink_from_spec(f"unix:{address}") as sink:
            assert isinstance(sink, SocketSink)
            sink.write_row({"job": 0, "ok": True})
            sink.write_row({"job": 1, "ok": False})
        thread.join(timeout=5)
        server.close()
        rows = [json.loads(line) for line in bytes(received).decode().splitlines()]
        assert [row["job"] for row in rows] == [0, 1]

    def test_tcp_socket_sink_streams_rows(self):
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]
        received = bytearray()

        def serve():
            conn, _ = server.accept()
            while chunk := conn.recv(4096):
                received.extend(chunk)
            conn.close()

        thread = threading.Thread(target=serve)
        thread.start()
        with SocketSink(f"tcp:127.0.0.1:{port}") as sink:
            sink.write_row({"job": 3})
        thread.join(timeout=5)
        server.close()
        assert json.loads(bytes(received).decode())["job"] == 3

    def test_broken_stream_socket_does_not_abort_the_campaign(self, capsys):
        # The collector was never listening: the sink must report once and
        # go dark, not blow up the drain loop of an otherwise healthy run.
        dead = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        dead.bind(("127.0.0.1", 0))
        port = dead.getsockname()[1]
        dead.close()  # nothing listens on this port now
        sink = SocketSink(f"tcp:127.0.0.1:{port}")
        result = run_campaign(_spec(scenarios=("figure1",), seeds=(1, 2)), sink=sink)
        assert len(result.results) == 4
        err = capsys.readouterr().err
        assert err.count("continuing without it") == 1  # reported once, then dark
        sink.close()

    def test_sink_spec_rejects_files_and_garbage(self):
        with pytest.raises(ValueError, match="stream spec"):
            sink_from_spec("rows.jsonl")
        with pytest.raises(ValueError, match="tcp:HOST:PORT"):
            SocketSink("tcp:localhost")
        with pytest.raises(ValueError, match="socket sink address"):
            SocketSink("carrier-pigeon:coop")


class TestResumeParsing:
    def test_parse_rows_drops_only_a_truncated_tail(self):
        good = [row_line({"job": i, "ok": True}) for i in range(3)]
        rows = parse_rows(good + ['{"job": 3, "ok"'])
        assert [row["job"] for row in rows] == [0, 1, 2]
        with pytest.raises(ResumeError, match="corrupt row before end"):
            parse_rows([good[0], '{"job": 1, "ok"', good[2]])

    def test_parse_rows_rejects_non_row_objects_mid_stream(self):
        with pytest.raises(ResumeError, match="integer 'job'"):
            parse_rows(['["not", "a", "row"]', row_line({"job": 1})])

    def test_read_rows_missing_file_is_empty(self, tmp_path):
        assert read_rows(str(tmp_path / "nope.jsonl")) == []

    def test_remaining_jobs_and_retry_errors(self):
        jobs = expand_jobs(_spec())
        rows = [
            {"job": 0, "ok": True, "status": "ok"},
            {"job": 2, "ok": False, "status": "error", "error": "RuntimeError: x"},
        ]
        remaining = remaining_jobs(jobs, rows)
        assert [job.index for job in remaining] == [j.index for j in jobs if j.index not in (0, 2)]
        retried = remaining_jobs(jobs, rows, retry_errors=True)
        assert 2 in [job.index for job in retried]

    def test_validate_rejects_foreign_rows(self):
        jobs = expand_jobs(_spec())
        validate_rows_match_jobs(jobs, [{"job": 0, "scenario": "figure1", "seed": 1}])
        with pytest.raises(ResumeError, match="another campaign"):
            validate_rows_match_jobs(jobs, [{"job": 0, "scenario": "star-5"}])
        # Indices beyond the matrix (adaptive re-run rows) are ignored.
        validate_rows_match_jobs(jobs, [{"job": 999, "scenario": "star-5"}])

    def test_validate_pins_the_full_run_shape(self):
        # Rows persist *every* RunJob field, so a resume against a matrix
        # differing only in fault fraction or step budget — which would
        # silently mix two campaigns' rows — is rejected.
        spec = _spec(
            scenarios=("figure1",),
            faults=(FaultSchedule(every=50, fraction=0.3),),
        )
        rows = [execute_job(expand_jobs(spec)[0]).row]
        validate_rows_match_jobs(expand_jobs(spec), rows)
        refraction = _spec(
            scenarios=("figure1",),
            faults=(FaultSchedule(every=50, fraction=0.5),),
        )
        with pytest.raises(ResumeError, match="fault_fraction"):
            validate_rows_match_jobs(expand_jobs(refraction), rows)
        rebudget = _spec(
            scenarios=("figure1",),
            faults=(FaultSchedule(every=50, fraction=0.3),),
            max_steps=200,
        )
        with pytest.raises(ResumeError, match="max_steps"):
            validate_rows_match_jobs(expand_jobs(rebudget), rows)

    def test_as_job_result_reconstructs_timing(self):
        synthetic = as_job_result({"job": 4, "steps": 100, "ok": True, "steps_per_sec": 50.0})
        assert synthetic.index == 4 and synthetic.ok
        # The stored measurement stays in the row: a --timing resume must
        # rewrite prior rows with their original value, byte for byte.
        assert synthetic.row["steps_per_sec"] == 50.0
        assert synthetic.steps_per_sec == pytest.approx(50.0)
        # An untimed rewrite of the same result still strips it.
        assert "steps_per_sec" not in synthetic.output_row(include_timing=False)
        assert synthetic.output_row(include_timing=True)["steps_per_sec"] == 50.0
        untimed = as_job_result({"job": 5, "steps": 100, "ok": False})
        assert untimed.steps_per_sec == 0.0

    def test_merge_results_prefers_fresh_executions(self):
        prior = [{"job": 0, "ok": False, "status": "error", "error": "x"}]
        fresh = JobResult(index=0, row={"job": 0, "ok": True, "status": "ok"},
                          steps=10, elapsed_seconds=0.1, ok=True)
        merged = merge_results(prior, [fresh])
        assert len(merged) == 1 and merged[0].ok


class TestKillAndResume:
    def test_interrupted_stream_resumes_byte_identical(self, tmp_path):
        jobs = expand_jobs(_spec())
        uninterrupted = run_campaign(jobs, jobs=1)
        expected_lines = uninterrupted.jsonl_lines()

        # Crash simulation: the sink flushed k complete rows and died
        # mid-write of row k+1.
        k = 3
        path = tmp_path / "rows.jsonl"
        path.write_text("\n".join(expected_lines[:k]) + "\n" + expected_lines[k][:17])

        prior = read_rows(str(path))
        assert len(prior) == k
        validate_rows_match_jobs(jobs, prior)
        todo = remaining_jobs(jobs, prior)
        assert len(todo) == len(jobs) - k

        with JsonlSink(str(path)) as sink:  # truncate-and-rewrite survivors
            for row in prior:
                sink.write_row(row)
            resumed = run_campaign(todo, jobs=1, sink=sink)

        merged = merge_results(prior, resumed.results)
        final = CampaignResult(jobs=jobs, results=merged, workers=1,
                               elapsed_seconds=resumed.elapsed_seconds)
        assert final.jsonl_lines() == expected_lines
        final.write_jsonl(str(path))
        assert path.read_text().splitlines() == expected_lines


    def test_timed_resume_rewrites_prior_rows_byte_identical(self, tmp_path):
        # A --timing campaign stores machine-dependent measurements; a
        # resume must carry the prior rows' stored values through verbatim,
        # not re-derive them from the reconstructed elapsed time.
        jobs = expand_jobs(_spec(scenarios=("figure1",), seeds=(1, 2)))
        path = tmp_path / "timed.jsonl"
        run_campaign(jobs, jobs=1).write_jsonl(str(path), include_timing=True)
        original_lines = path.read_text().splitlines()
        assert all("steps_per_sec" in json.loads(line) for line in original_lines)

        # Pure rewrite round-trip (nothing left to execute).
        prior = read_rows(str(path))
        merged = merge_results(prior, [])
        assert all("steps_per_sec" in result.row for result in merged)
        final = CampaignResult(jobs=jobs, results=merged, workers=1, elapsed_seconds=0.0)
        final.write_jsonl(str(path), include_timing=True)
        assert path.read_text().splitlines() == original_lines

        # Interrupted variant: the first k rows survive a crash; after the
        # resume, exactly those k lines are still byte-identical (the
        # re-executed jobs get fresh, legitimately different measurements).
        k = 2
        path.write_text("\n".join(original_lines[:k]) + "\n" + original_lines[k][:13])
        prior = read_rows(str(path))
        assert len(prior) == k
        todo = remaining_jobs(jobs, prior)
        resumed = run_campaign(todo, jobs=1)
        merged = merge_results(prior, resumed.results)
        final = CampaignResult(jobs=jobs, results=merged, workers=1,
                               elapsed_seconds=resumed.elapsed_seconds)
        final.write_jsonl(str(path), include_timing=True)
        rewritten = path.read_text().splitlines()
        assert len(rewritten) == len(jobs)
        assert rewritten[:k] == original_lines[:k]


class TestErrorRows:
    def test_execute_job_converts_exceptions_to_error_rows(self):
        job = dataclasses.replace(
            expand_jobs(_spec())[0], scenario="no-such-scenario"
        )
        result = execute_job(job)
        assert result.status == "error"
        assert not result.ok
        assert set(result.row) == set(ERROR_ROW_FIELDS)
        assert result.row["error"] == "KeyError: \"unknown scenario 'no-such-scenario'\""
        # Deterministic: the row is still a pure function of the job.
        assert execute_job(job).row == result.row

    def test_error_rows_survive_a_spawn_pool(self):
        jobs = expand_jobs(_spec(scenarios=("figure1",), algorithms=("cc1", "cc2"), seeds=(1,)))
        poisoned = dataclasses.replace(jobs[0], index=len(jobs), scenario="no-such-scenario")
        result = run_campaign(jobs + [poisoned], jobs=2)
        assert result.workers == 2
        assert result.errors == 1
        assert result.violations == 0
        assert not result.ok
        completed = [r for r in result.results if r.status != "error"]
        assert len(completed) == len(jobs)  # nothing lost to the poisoned job

    def test_summary_table_surfaces_error_counts(self):
        jobs = expand_jobs(_spec(scenarios=("figure1",), algorithms=("cc2",), seeds=(1,)))
        poisoned = dataclasses.replace(jobs[0], index=len(jobs), scenario="no-such-scenario")
        result = run_campaign(jobs + [poisoned], jobs=1)
        rows = result.summary_rows()
        assert rows[-1]["errors"] == 1
        poisoned_cells = [r for r in rows if r["scenario"] == "no-such-scenario"]
        assert poisoned_cells and poisoned_cells[0]["errors"] == 1
        assert poisoned_cells[0]["jain min..max"] == "-"

    def test_completed_row_schema_is_exact(self):
        result = execute_job(expand_jobs(_spec(scenarios=("figure1",), seeds=(1,)))[0])
        assert set(result.row) == set(ROW_FIELDS)
        assert result.row["status"] in ("ok", "violation")


class TestZeroElapsedGuards:
    def test_job_result_steps_per_sec_is_finite(self):
        frozen = JobResult(index=0, row={"job": 0}, steps=500, elapsed_seconds=0.0, ok=True)
        assert frozen.steps_per_sec == 0.0
        # The regression: --timing rows must stay RFC 8259-valid JSON.
        line = row_line(frozen.output_row(include_timing=True))
        assert json.loads(line)["steps_per_sec"] == 0.0
        assert "Infinity" not in line

    def test_campaign_result_steps_per_sec_is_finite(self):
        frozen = JobResult(index=0, row={"job": 0, "scenario": "s", "algorithm": "a",
                                         "jain": 1.0, "status": "ok", "ok": True},
                           steps=500, elapsed_seconds=0.0, ok=True)
        campaign = CampaignResult(jobs=[], results=[frozen], workers=1, elapsed_seconds=0.0)
        assert campaign.steps_per_sec == 0.0
        assert json.loads("[%s]" % ",".join(campaign.jsonl_lines(include_timing=True)))
        assert campaign.summary_rows()[-1]["steps/s"] == "-"


class TestAdaptiveReruns:
    def test_disagreeing_cell_is_rerun_with_fresh_seeds(self):
        base = expand_jobs(_DISAGREE_SPEC)
        result = run_campaign(base, jobs=1)
        verdicts = [r.ok for r in result.results]
        assert True in verdicts and False in verdicts  # the fixture's point

        cells = disagreement_cells(base, result.results)
        assert len(cells) == 1
        extra = rerun_jobs(base, result.results)
        # As many fresh seeds as the cell had, appended deterministically.
        assert [job.seed for job in extra] == [6, 7, 8]
        assert [job.index for job in extra] == [3, 4, 5]
        template = base[0]
        for job in extra:
            assert (job.scenario, job.algorithm, job.fault_every) == (
                template.scenario, template.algorithm, template.fault_every
            )
        # Deterministic: same inputs, same re-expansion.
        assert rerun_jobs(base, result.results) == extra
        # The fresh jobs actually run.
        extra_result = run_campaign(extra, jobs=1)
        assert len(extra_result.results) == 3

    def test_agreeing_campaign_adds_no_jobs(self):
        jobs = expand_jobs(_spec(scenarios=("figure1",), seeds=(1, 2)))
        result = run_campaign(jobs, jobs=1)
        assert rerun_jobs(jobs, result.results) == []

    def test_error_rows_do_not_fake_disagreement(self):
        jobs = expand_jobs(_spec(scenarios=("figure1",), algorithms=("cc2",), seeds=(1, 2)))
        results = [execute_job(jobs[0]), error_result(jobs[1], RuntimeError("boom"))]
        assert disagreement_cells(jobs, results) == []
