"""Tests for topology generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypergraph.generators import (
    complete_hypergraph,
    cycle_of_committees,
    disjoint_committees,
    figure1_hypergraph,
    figure2_hypergraph,
    figure3_hypergraph,
    figure4_hypergraph,
    grid_of_committees,
    path_of_committees,
    random_k_uniform_hypergraph,
    star_hypergraph,
)


class TestPaperFigures:
    def test_figure1_shape(self):
        h = figure1_hypergraph()
        assert h.n == 6 and h.m == 5
        assert h.is_connected()

    def test_figure2_shape(self):
        h = figure2_hypergraph()
        assert h.n == 5 and h.m == 3
        assert {tuple(e.members) for e in h.hyperedges} == {(1, 2), (1, 3, 5), (3, 4)}

    def test_figure3_shape(self):
        h = figure3_hypergraph()
        assert h.n == 10
        assert h.is_connected()
        # The committees the worked example revolves around are present.
        members = {tuple(e.members) for e in h.hyperedges}
        for committee in [(1, 2, 3), (9, 10), (5, 6), (7, 8), (6, 7), (6, 9), (8, 9)]:
            assert committee in members

    def test_figure4_shape(self):
        h = figure4_hypergraph()
        assert h.n == 9
        members = {tuple(e.members) for e in h.hyperedges}
        assert (1, 2, 5, 8) in members
        assert (3, 4, 5) in members
        assert (6, 7, 9) in members
        assert (8, 9) in members
        assert h.is_connected()


class TestFamilies:
    def test_path_of_committees_chain_structure(self):
        h = path_of_committees(4)
        assert h.m == 4
        assert h.is_connected()
        # Consecutive committees share exactly one professor.
        edges = sorted(h.hyperedges, key=lambda e: e.members)
        for a, b in zip(edges, edges[1:]):
            assert len(set(a.members) & set(b.members)) <= 1

    def test_path_committee_size(self):
        h = path_of_committees(3, committee_size=3)
        assert all(e.size == 3 for e in h.hyperedges)

    def test_path_invalid_args(self):
        with pytest.raises(ValueError):
            path_of_committees(0)
        with pytest.raises(ValueError):
            path_of_committees(3, committee_size=1)

    def test_cycle_of_committees(self):
        h = cycle_of_committees(4)
        assert h.m == 4
        assert h.is_connected()
        # In a cycle every professor belongs to at most two committees and at
        # least one.
        assert all(1 <= h.degree(p) <= 2 for p in h.vertices)

    def test_cycle_needs_three(self):
        with pytest.raises(ValueError):
            cycle_of_committees(2)

    def test_star_all_committees_share_center(self):
        h = star_hypergraph(4, 3)
        assert h.m == 4
        assert all(1 in e for e in h.hyperedges)

    def test_complete_hypergraph_pairs(self):
        h = complete_hypergraph(4, 2)
        assert h.m == 6

    def test_complete_invalid(self):
        with pytest.raises(ValueError):
            complete_hypergraph(3, 5)

    def test_disjoint_committees(self):
        h = disjoint_committees(3, 2)
        assert h.m == 3
        for a in h.hyperedges:
            for b in h.hyperedges:
                if a != b:
                    assert not a.intersects(b)

    def test_grid_of_committees(self):
        h = grid_of_committees(2, 3)
        assert h.n == 6
        # 2x3 grid has 2*2 + 1*3 = 7 dominoes.
        assert h.m == 7
        assert h.is_connected()

    def test_grid_too_small(self):
        with pytest.raises(ValueError):
            grid_of_committees(1, 1)


class TestRandomHypergraphs:
    def test_random_is_reproducible(self):
        a = random_k_uniform_hypergraph(8, 6, 3, seed=5)
        b = random_k_uniform_hypergraph(8, 6, 3, seed=5)
        assert a == b

    def test_random_counts(self):
        h = random_k_uniform_hypergraph(8, 6, 3, seed=5)
        assert h.n == 8
        assert h.m >= 6
        assert all(e.size == 3 for e in h.hyperedges[:6])

    def test_random_connected(self):
        h = random_k_uniform_hypergraph(10, 7, 2, seed=11)
        assert h.is_connected()

    def test_every_professor_in_a_committee(self):
        h = random_k_uniform_hypergraph(9, 6, 3, seed=3)
        for p in h.vertices:
            assert h.degree(p) >= 1

    def test_too_many_committees_rejected(self):
        with pytest.raises(ValueError):
            random_k_uniform_hypergraph(4, 100, 2, seed=1)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            random_k_uniform_hypergraph(4, 2, 1, seed=1)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=10),
    m=st.integers(min_value=2, max_value=6),
    k=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_random_hypergraph_well_formed(n, m, k, seed):
    from hypothesis import assume
    from math import comb

    assume(m <= comb(n, k))          # enough distinct committees exist
    assume(m * k >= n)               # every professor can be covered
    h = random_k_uniform_hypergraph(n, m, k, seed=seed)
    assert h.n == n
    assert h.m >= m
    for p in h.vertices:
        assert h.degree(p) >= 1
    assert h.is_connected()
