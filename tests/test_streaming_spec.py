"""Tests for the streaming specification subsystem (`repro.spec.streaming`).

Covers

* dense checkers raising a clear ``ValueError`` on sparse traces instead of
  silently reporting vacuous passes;
* dense-vs-streaming report parity on clean and arbitrary-start runs;
* counterexample windows: violation step index, involved committees and
  window contents match the dense checker's first violation on
  cc1/cc2/cc3 × ring/tree/oracle under seeded mid-run fault injection;
* ``stop_on_violation`` halting the scheduler at the exact first-violation
  step via the ``StopRun`` listener protocol;
* ``FaultInjector.corrupt_scheduler`` invalidating the incremental engine's
  cached enabled map (the dirty-set protocol observes mid-run corruption);
* sparse-vs-dense fairness parity (``FairnessSummary``, Jain index, starved
  sets), with a ``slow``-marked >=100k-step long-haul variant;
* the ``CommitteeCoordinator.run(check=...)`` and ``repro-cc check`` wiring.
"""

from __future__ import annotations

from typing import Optional, Tuple

import pytest

from repro.cli import main as cli_main
from repro.core.runner import CommitteeCoordinator
from repro.hypergraph.generators import figure1_hypergraph
from repro.kernel.daemon import SynchronousDaemon, default_daemon
from repro.kernel.faults import FaultInjector, arbitrary_configuration
from repro.kernel.scheduler import Scheduler, StopRun
from repro.metrics.collector import StreamingMetricsCollector, collect_metrics
from repro.spec.events import concurrency_profile, meeting_events
from repro.spec.fairness import professor_fairness_counts
from repro.spec.properties import (
    check_exclusion,
    check_progress,
    check_synchronization,
)
from repro.spec.streaming import (
    SpecViolationError,
    StreamingSpecSuite,
)
from repro.workloads.request_models import AlwaysRequestingEnvironment

ALGORITHMS = ("cc1", "cc2", "cc3")
TOKENS = ("ring", "tree", "oracle")


def _build(algorithm: str, token: str, seed: int, engine: str, record: bool,
           suite: Optional[StreamingSpecSuite] = None,
           collector: Optional[StreamingMetricsCollector] = None,
           arbitrary: bool = False):
    hypergraph = figure1_hypergraph()
    coordinator = CommitteeCoordinator(
        hypergraph, algorithm=algorithm, token=token, seed=seed, engine=engine
    )
    listeners = [obs.observe_step for obs in (collector, suite) if obs is not None]
    scheduler = Scheduler(
        coordinator.algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=default_daemon(seed=seed),
        initial_configuration=(
            arbitrary_configuration(coordinator.algorithm, seed=seed) if arbitrary else None
        ),
        record_configurations=record,
        engine=engine,
        step_listener=listeners or None,
    )
    return hypergraph, coordinator.algorithm, scheduler


def _run_with_bursts(scheduler, algorithm, seed: int, max_steps: int,
                     burst_every: int, fraction: float = 0.8) -> Optional[int]:
    """Step the scheduler, corrupting it every ``burst_every`` steps.

    Returns the step index the run stopped at when a listener raised
    ``StopRun``, else ``None``.
    """
    injector = FaultInjector(algorithm, fraction=fraction, seed=seed + 99)
    while scheduler.step_index < max_steps:
        if burst_every and scheduler.step_index and scheduler.step_index % burst_every == 0:
            injector.corrupt_scheduler(scheduler)
        try:
            if scheduler.step() is None:
                break
        except StopRun:
            return scheduler.step_index
    return None


# --------------------------------------------------------------------------- #
# satellite: dense checkers reject sparse traces
# --------------------------------------------------------------------------- #
class TestSparseTraceGuards:
    @pytest.fixture
    def sparse_trace(self):
        _, _, scheduler = _build("cc2", "oracle", seed=1, engine="dense", record=False)
        result = scheduler.run(max_steps=30)
        assert result.trace.is_sparse
        return result.trace

    @pytest.mark.parametrize(
        "checker",
        [
            check_exclusion,
            check_synchronization,
            check_progress,
            professor_fairness_counts,
            meeting_events,
            concurrency_profile,
            collect_metrics,
        ],
    )
    def test_dense_consumers_raise_on_sparse_traces(self, sparse_trace, checker):
        with pytest.raises(ValueError, match="record_configurations"):
            checker(sparse_trace, figure1_hypergraph())

    def test_dense_trace_still_accepted(self):
        hypergraph, _, scheduler = _build("cc2", "oracle", seed=1, engine="dense", record=True)
        trace = scheduler.run(max_steps=30).trace
        assert check_exclusion(trace, hypergraph).holds
        assert check_progress(trace, hypergraph).holds


# --------------------------------------------------------------------------- #
# dense-vs-streaming report parity
# --------------------------------------------------------------------------- #
class TestStreamingParity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("arbitrary", [False, True])
    def test_reports_match_dense_checkers(self, algorithm, arbitrary):
        hypergraph, _, dense_sched = _build(
            algorithm, "ring", seed=7, engine="dense", record=True, arbitrary=arbitrary
        )
        trace = dense_sched.run(max_steps=250).trace

        suite = StreamingSpecSuite(hypergraph)
        _, _, sparse_sched = _build(
            algorithm, "ring", seed=7, engine="incremental", record=False,
            suite=suite, arbitrary=arbitrary,
        )
        sparse_sched.run(max_steps=250)

        verdicts = suite.verdicts()
        assert verdicts.exclusion == check_exclusion(trace, hypergraph)
        assert verdicts.synchronization == check_synchronization(trace, hypergraph)
        assert verdicts.progress == check_progress(trace, hypergraph)
        assert verdicts.fairness == professor_fairness_counts(trace, hypergraph)

    def test_explicit_grace_steps_match(self):
        hypergraph, _, dense_sched = _build("cc2", "tree", seed=3, engine="dense", record=True)
        trace = dense_sched.run(max_steps=180).trace
        suite = StreamingSpecSuite(hypergraph, grace_steps=25)
        _, _, sparse_sched = _build(
            "cc2", "tree", seed=3, engine="incremental", record=False, suite=suite
        )
        sparse_sched.run(max_steps=180)
        assert suite.verdicts().progress == check_progress(trace, hypergraph, grace_steps=25)

    @pytest.mark.parametrize("grace", [0, -3])
    def test_non_positive_grace_rejected_everywhere(self, grace):
        # A zero window would make the dense tail slice ([-0:] = whole
        # trace) and the streaming monitor's empty window silently disagree,
        # so every entry point refuses it up front.
        hypergraph, _, scheduler = _build("cc2", "oracle", seed=1, engine="dense", record=True)
        trace = scheduler.run(max_steps=30).trace
        with pytest.raises(ValueError, match="grace_steps"):
            check_progress(trace, hypergraph, grace_steps=grace)
        with pytest.raises(ValueError, match="grace_steps"):
            StreamingSpecSuite(hypergraph, grace_steps=grace)
        with pytest.raises(SystemExit):
            cli_main(["check", "--scenario", "figure1", "--grace", str(grace)])

    def test_short_run_progress_vacuous_both_ways(self):
        hypergraph, _, dense_sched = _build("cc1", "oracle", seed=2, engine="dense", record=True)
        trace = dense_sched.run(max_steps=2).trace
        suite = StreamingSpecSuite(hypergraph)
        _, _, sparse_sched = _build(
            "cc1", "oracle", seed=2, engine="incremental", record=False, suite=suite
        )
        sparse_sched.run(max_steps=2)
        dense_report = check_progress(trace, hypergraph)
        assert dense_report.holds and suite.verdicts().progress == dense_report


# --------------------------------------------------------------------------- #
# satellite: counterexample windows across cc1/cc2/cc3 × ring/tree/oracle
# --------------------------------------------------------------------------- #
class TestCounterexampleWindows:
    MAX_STEPS = 400
    BURST_EVERY = 7

    def _first_dense_violation(self, algorithm: str, token: str):
        """Scan seeds until fault injection produces a safety violation."""
        for seed in range(8):
            hypergraph, algo, scheduler = _build(
                algorithm, token, seed=seed, engine="dense", record=True
            )
            _run_with_bursts(scheduler, algo, seed, self.MAX_STEPS, self.BURST_EVERY)
            trace = scheduler.trace
            details = sorted(
                check_exclusion(trace, hypergraph).details
                + check_synchronization(trace, hypergraph).details,
                key=lambda v: v.configuration_index,
            )
            if details:
                return seed, trace, details[0]
        pytest.fail(f"no safety violation provoked for {algorithm}/{token} in 8 seeds")

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("token", TOKENS)
    def test_window_matches_dense_first_violation(self, algorithm, token):
        seed, dense_trace, dense_first = self._first_dense_violation(algorithm, token)

        hypergraph = figure1_hypergraph()
        suite = StreamingSpecSuite(hypergraph, stop_on_violation=True)
        _, algo, scheduler = _build(
            algorithm, token, seed=seed, engine="incremental", record=False, suite=suite
        )
        stopped_at = _run_with_bursts(scheduler, algo, seed, self.MAX_STEPS, self.BURST_EVERY)

        window = suite.first_violation
        assert window is not None
        # The run halted at the exact step of the dense checker's first violation.
        assert stopped_at == dense_first.configuration_index
        assert window.step_index == dense_first.configuration_index
        assert window.violation == dense_first
        assert window.committees == dense_first.committees
        # The window frames are the dense trace's configurations at those indices.
        assert window.frames
        for index, configuration in window.frames:
            assert dense_trace.configurations[index] == configuration
        # The frames end at the violating configuration and are contiguous.
        indices = [index for index, _ in window.frames]
        assert indices[-1] == window.step_index
        assert indices == list(range(indices[0], indices[-1] + 1))
        # The textual rendering names the step and the involved committees.
        description = window.describe()
        assert str(window.step_index) in description

    def test_no_stop_without_flag(self):
        # Same scenario, stop_on_violation=False: the run continues to the
        # bound and every violation is accumulated in the reports.
        seed, _, dense_first = self._first_dense_violation("cc2", "oracle")
        hypergraph = figure1_hypergraph()
        suite = StreamingSpecSuite(hypergraph, stop_on_violation=False)
        _, algo, scheduler = _build(
            "cc2", "oracle", seed=seed, engine="incremental", record=False, suite=suite
        )
        stopped_at = _run_with_bursts(scheduler, algo, seed, self.MAX_STEPS, self.BURST_EVERY)
        assert stopped_at is None
        assert suite.first_violation is not None
        assert suite.first_violation.violation == dense_first

    def test_violation_error_is_stop_run(self):
        # The early-stop exception rides the kernel's listener protocol.
        assert issubclass(SpecViolationError, StopRun)

    def test_exclusion_monitor_fires_on_synthetic_conflicts(self):
        # Under the single-pointer vocabulary two conflicting committees can
        # never *meet* simultaneously, so the Exclusion monitor is
        # defense-in-depth for the meeting-detection invariant; exercise its
        # violation path directly with a synthetic held sequence.
        from repro.spec.events import MeetingEvent
        from repro.spec.properties import exclusion_violations_at
        from repro.spec.streaming import StreamingExclusionMonitor

        hypergraph = figure1_hypergraph()
        a, b = hypergraph.hyperedges[0], hypergraph.hyperedges[1]
        assert a.intersects(b)
        monitor = StreamingExclusionMonitor()
        convene = [MeetingEvent("convene", a, 1)]
        # Before any convene: held conflicts are exempt (inherited meetings).
        assert monitor.observe(0, None, (a, b), []) == []
        # The first convene arms the monitor; the conflict is now reported.
        found = monitor.observe(1, None, (a, b), convene)
        assert len(found) == 1
        assert found[0].committees == (a.members, b.members)
        assert found[0] == exclusion_violations_at(1, (a, b))[0]
        assert not monitor.report(2).holds

    def test_all_safety_monitors_observe_before_early_stop(self):
        # When several properties break in the same configuration, every
        # safety monitor must see the step before the suite raises, so the
        # post-halt verdicts stay dense-identical on the committed prefix.
        from repro.spec.properties import Violation

        hypergraph = figure1_hypergraph()
        suite = StreamingSpecSuite(hypergraph, stop_on_violation=True)
        calls = []

        class _Tripping:
            def __init__(self, name):
                self.name = name

            def observe(self, index, configuration, held, events):
                calls.append(self.name)
                return [Violation(self.name, index, (), self.name)]

        suite._safety_monitors = (_Tripping("first"), _Tripping("second"))
        with pytest.raises(SpecViolationError) as excinfo:
            suite.observe_step(
                CommitteeCoordinator(hypergraph, algorithm="cc1").algorithm.initial_configuration()
            )
        assert calls == ["first", "second"]
        assert excinfo.value.counterexample.violation.property_name == "first"

    def test_later_listeners_still_observe_the_stopping_step(self):
        # A StopRun from one listener must not starve the listeners behind
        # it of the committed step, or their state silently desynchronizes
        # from the trace.
        seen = []

        def stopper(configuration, record):
            if record is not None and record.index >= 2:
                raise StopRun("stopper")

        coordinator = CommitteeCoordinator(figure1_hypergraph(), algorithm="cc2", seed=1)
        scheduler = Scheduler(
            coordinator.algorithm,
            environment=AlwaysRequestingEnvironment(1),
            daemon=default_daemon(seed=1),
            step_listener=[stopper, lambda cfg, rec: seen.append(rec)],
        )
        result = scheduler.run(max_steps=50)
        assert result.stop_reason == "stopper"
        assert result.steps == 3
        assert len(seen) == result.steps + 1  # initial call + every committed step


class TestStopRunProtocol:
    def test_listener_stop_reason_reaches_result(self):
        hypergraph = figure1_hypergraph()

        def tripwire(configuration, record):
            if record is not None and record.index >= 4:
                raise StopRun("tripwire")

        coordinator = CommitteeCoordinator(hypergraph, algorithm="cc2", seed=1)
        scheduler = Scheduler(
            coordinator.algorithm,
            environment=AlwaysRequestingEnvironment(1),
            daemon=default_daemon(seed=1),
            step_listener=tripwire,
        )
        result = scheduler.run(max_steps=100)
        assert result.stop_reason == "tripwire"
        assert result.steps == 5  # the offending step is committed

    def test_multiple_listeners_all_observe(self):
        hypergraph = figure1_hypergraph()
        seen = []
        suite = StreamingSpecSuite(hypergraph)
        collector = StreamingMetricsCollector(hypergraph)
        coordinator = CommitteeCoordinator(hypergraph, algorithm="cc2", seed=1)
        scheduler = Scheduler(
            coordinator.algorithm,
            environment=AlwaysRequestingEnvironment(1),
            daemon=default_daemon(seed=1),
            record_configurations=False,
            step_listener=[collector.observe_step, suite.observe_step,
                           lambda cfg, rec: seen.append(rec)],
        )
        result = scheduler.run(max_steps=20)
        # Initial call with record=None plus one call per step, for everyone.
        assert len(seen) == result.steps + 1
        assert suite.configurations_observed == result.steps + 1
        assert collector.metrics(result.trace).steps == result.steps

    def test_add_step_listener_replays_initial_configuration(self):
        coordinator = CommitteeCoordinator(figure1_hypergraph(), algorithm="cc1", seed=1)
        scheduler = Scheduler(
            coordinator.algorithm,
            environment=AlwaysRequestingEnvironment(1),
            daemon=default_daemon(seed=1),
        )
        suite = StreamingSpecSuite(figure1_hypergraph())
        scheduler.add_step_listener(suite.observe_step)
        result = scheduler.run(max_steps=15)
        assert suite.configurations_observed == result.steps + 1


# --------------------------------------------------------------------------- #
# satellite: mid-run corruption is observed by the incremental engine
# --------------------------------------------------------------------------- #
class TestCorruptSchedulerInvalidation:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_corruption_between_steps_matches_dense(self, algorithm):
        def run(engine: str):
            _, algo, scheduler = _build(algorithm, "tree", seed=5, engine=engine, record=True)
            injector = FaultInjector(algo, fraction=0.7, seed=123)
            for _ in range(3):
                scheduler.run(max_steps=scheduler.step_index + 40)
                injector.corrupt_scheduler(scheduler)
            scheduler.run(max_steps=scheduler.step_index + 40)
            return scheduler

        dense = run("dense")
        incremental = run("incremental")
        assert tuple(dense.trace.steps) == tuple(incremental.trace.steps)
        assert dense.configuration == incremental.configuration

    def test_corrupt_scheduler_drops_enabled_cache(self):
        _, algo, scheduler = _build("cc2", "oracle", seed=4, engine="incremental", record=False)
        scheduler.run(max_steps=10)
        assert scheduler._enabled_cache is not None
        injector = FaultInjector(algo, fraction=1.0, seed=9)
        corrupted = injector.corrupt_scheduler(scheduler)
        assert scheduler._enabled_cache is None
        assert scheduler.configuration == corrupted

    def test_set_configuration_invalidates(self):
        _, algo, scheduler = _build("cc2", "oracle", seed=4, engine="incremental", record=False)
        scheduler.run(max_steps=10)
        assert scheduler._enabled_cache is not None
        scheduler.set_configuration(scheduler.configuration)
        assert scheduler._enabled_cache is None


# --------------------------------------------------------------------------- #
# satellite: sparse-vs-dense fairness parity
# --------------------------------------------------------------------------- #
class TestFairnessParity:
    def _parity(self, max_steps: int, seed: int = 21) -> None:
        hypergraph, _, dense_sched = _build("cc2", "tree", seed=seed, engine="dense", record=True)
        trace = dense_sched.run(max_steps=max_steps).trace
        dense_summary = professor_fairness_counts(trace, hypergraph)

        suite = StreamingSpecSuite(hypergraph)
        _, _, sparse_sched = _build(
            "cc2", "tree", seed=seed, engine="incremental", record=False, suite=suite
        )
        sparse_sched.run(max_steps=max_steps)
        sparse_summary = suite.verdicts().fairness

        assert sparse_summary == dense_summary
        assert sparse_summary.professor_jain_index() == dense_summary.professor_jain_index()
        assert sparse_summary.starved_professors == dense_summary.starved_professors
        assert sparse_summary.starved_committees == dense_summary.starved_committees
        assert sparse_summary.min_professor_participations == dense_summary.min_professor_participations

    def test_fairness_parity_quick(self):
        self._parity(max_steps=3000)

    @pytest.mark.slow
    def test_fairness_parity_100k_steps(self):
        self._parity(max_steps=100_000)


# --------------------------------------------------------------------------- #
# runner + CLI wiring
# --------------------------------------------------------------------------- #
class TestRunnerCheckMode:
    def test_check_false_leaves_spec_none(self):
        outcome = CommitteeCoordinator(figure1_hypergraph(), algorithm="cc2", seed=1).run(
            max_steps=50
        )
        assert outcome.spec is None

    def test_sparse_check_matches_dense_posthoc(self):
        hypergraph = figure1_hypergraph()
        dense = CommitteeCoordinator(hypergraph, algorithm="cc2", seed=9, engine="dense").run(
            max_steps=400
        )
        sparse = CommitteeCoordinator(
            hypergraph, algorithm="cc2", seed=9, engine="incremental"
        ).run(max_steps=400, record_configurations=False, check=True)
        spec = sparse.spec
        assert spec is not None
        assert spec.exclusion == check_exclusion(dense.trace, hypergraph)
        assert spec.synchronization == check_synchronization(dense.trace, hypergraph)
        assert spec.progress == check_progress(dense.trace, hypergraph)
        assert spec.fairness == dense.fairness
        assert spec.all_hold

    def test_meetings_convened_exact_on_sparse_runs(self):
        hypergraph = figure1_hypergraph()
        dense = CommitteeCoordinator(hypergraph, algorithm="cc2", seed=1).run(max_steps=500)
        sparse = CommitteeCoordinator(hypergraph, algorithm="cc2", seed=1).run(
            max_steps=500, record_configurations=False
        )
        assert dense.meetings_convened > 0
        assert sparse.meetings_convened == dense.meetings_convened

    def test_sparse_check_shares_one_meeting_sweep(self):
        # Composed mode: the suite rides the collector's stream, so metrics
        # AND spec verdicts both match the dense run while the per-step
        # committee scan happens once.
        hypergraph = figure1_hypergraph()
        dense = CommitteeCoordinator(hypergraph, algorithm="cc2", seed=11, engine="dense").run(
            max_steps=500
        )
        sparse = CommitteeCoordinator(
            hypergraph, algorithm="cc2", seed=11, engine="incremental"
        ).run(max_steps=500, record_configurations=False, check=True)
        assert sparse.metrics == dense.metrics
        assert sparse.fairness == dense.fairness
        assert sparse.spec.fairness == dense.fairness
        assert sparse.spec.exclusion == check_exclusion(dense.trace, hypergraph)
        assert sparse.spec.progress == check_progress(dense.trace, hypergraph)

    def test_shared_stream_suite_matches_standalone(self):
        # Unit-level: a suite sharing the collector's stream produces the
        # same verdicts as a standalone suite over the same run.
        hypergraph = figure1_hypergraph()
        collector = StreamingMetricsCollector(hypergraph)
        shared = StreamingSpecSuite(
            hypergraph, stream=collector.stream, fairness=collector.fairness_monitor
        )
        _, _, sched = _build("cc3", "ring", seed=6, engine="incremental", record=False)
        sched.add_step_listener(collector.observe_step)
        sched.add_step_listener(shared.observe_step)
        sched.run(max_steps=200)

        standalone = StreamingSpecSuite(hypergraph)
        _, _, sched2 = _build(
            "cc3", "ring", seed=6, engine="incremental", record=False, suite=standalone
        )
        sched2.run(max_steps=200)
        assert shared.verdicts() == standalone.verdicts()

    def test_shared_stream_misordering_fails_loudly(self):
        # Registering the shared-stream suite before (or without) the
        # observer that drives the stream must raise, not silently shift
        # every verdict by one configuration.
        hypergraph = figure1_hypergraph()
        collector = StreamingMetricsCollector(hypergraph)
        suite = StreamingSpecSuite(
            hypergraph, stream=collector.stream, fairness=collector.fairness_monitor
        )
        _, _, sched = _build("cc2", "oracle", seed=1, engine="incremental", record=False)
        with pytest.raises(RuntimeError, match="out of sync"):
            sched.add_step_listener(suite.observe_step)  # collector never ran

    def test_check_cli_rejects_non_positive_steps(self):
        with pytest.raises(SystemExit):
            cli_main(["check", "--scenario", "figure1", "--steps", "0"])

    def test_stop_on_violation_implies_check(self):
        outcome = CommitteeCoordinator(figure1_hypergraph(), algorithm="cc2", seed=1).run(
            max_steps=50, stop_on_violation=True
        )
        assert outcome.spec is not None
        assert outcome.result.stop_reason != "violation"  # clean run: no stop

    def test_spec_verdict_rows_shape(self):
        outcome = CommitteeCoordinator(figure1_hypergraph(), algorithm="cc1", seed=2).run(
            max_steps=100, check=True
        )
        rows = outcome.spec.as_rows()
        assert [row["property"] for row in rows] == [
            "Exclusion", "Synchronization", "Progress",
        ]
        assert all(row["holds"] for row in rows)


class TestStreamingDiscussion:
    """Suite wiring of the streaming 2-phase discussion monitors."""

    def test_disabled_by_default(self):
        outcome = CommitteeCoordinator(figure1_hypergraph(), algorithm="cc2", seed=1).run(
            max_steps=100, check=True
        )
        spec = outcome.spec
        assert spec.essential is None and spec.voluntary is None
        assert [row["property"] for row in spec.as_rows()] == [
            "Exclusion", "Synchronization", "Progress",
        ]

    def test_enabled_rows_and_all_hold(self):
        outcome = CommitteeCoordinator(figure1_hypergraph(), algorithm="cc2", seed=1).run(
            max_steps=400, record_configurations=False, check=True, check_discussion=True
        )
        spec = outcome.spec
        assert [row["property"] for row in spec.as_rows()] == [
            "Exclusion", "Synchronization", "Progress",
            "EssentialDiscussion", "VoluntaryDiscussion",
        ]
        assert spec.essential.holds and spec.voluntary.holds
        assert spec.all_hold

    def test_discussion_failure_fails_all_hold(self):
        # Seeded corruption fabricates/dissolves meetings, so the discussion
        # checkers fail together with the safety monitors — and the failure
        # must be visible through ``all_hold``.
        from repro.spec.discussion import (
            check_essential_discussion,
            check_voluntary_discussion,
        )

        hypergraph, algorithm, scheduler = _build(
            "cc2", "tree", seed=3, engine="dense", record=True
        )
        suite = StreamingSpecSuite(hypergraph, check_discussion=True)
        scheduler.add_step_listener(suite.observe_step)
        injector = FaultInjector(algorithm, fraction=0.7, seed=9)
        while scheduler.step_index < 300:
            if scheduler.step_index and scheduler.step_index % 11 == 0:
                injector.corrupt_scheduler(scheduler)
            try:
                if scheduler.step() is None:
                    break
            except StopRun:
                break
        verdicts = suite.verdicts()
        dense_essential = check_essential_discussion(scheduler.trace, hypergraph)
        dense_voluntary = check_voluntary_discussion(scheduler.trace, hypergraph)
        assert verdicts.essential == dense_essential
        assert verdicts.voluntary == dense_voluntary
        assert not dense_essential.holds  # the scenario actually bites
        assert not verdicts.all_hold


class TestCheckCli:
    def test_check_command_sparse_incremental(self, capsys):
        code = cli_main([
            "check", "--scenario", "figure1", "--algorithm", "cc2",
            "--engine", "incremental", "--sparse", "--steps", "600",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "Exclusion" in output and "Synchronization" in output
        assert "Progress" in output and "Fairness" in output
        assert "sparse" in output

    def test_check_command_exit_code_on_failure(self, capsys):
        # A 3-step run starves everyone; Progress is vacuous but fairness
        # reports starvation without failing the exit code, so force a
        # Progress failure via a tiny grace window on a run that is long
        # enough to be checkable but too short for every committee to meet.
        code = cli_main([
            "check", "--scenario", "star-5", "--algorithm", "cc1",
            "--steps", "6", "--grace", "2",
        ])
        output = capsys.readouterr().out
        assert "Progress" in output
        assert code in (0, 1)  # exit code mirrors spec.all_hold
        assert ("False" in output) == (code == 1)
