"""Tests for Algorithm ``CC2 ∘ TC`` (Section 5): Professor Fairness + 2-Phase Discussion."""

from __future__ import annotations

import random

import pytest

from repro.core.cc2 import CC2Algorithm
from repro.core.states import DONE, IDLE, LOCK_FLAG, LOOKING, POINTER, STATUS, TOKEN_FLAG, WAITING
from repro.hypergraph.hypergraph import Hyperedge
from repro.kernel.algorithm import ActionContext
from repro.kernel.configuration import Configuration
from repro.kernel.daemon import default_daemon
from repro.kernel.scheduler import Scheduler
from repro.metrics.concurrency import degree_of_fair_concurrency
from repro.spec.concurrency import measure_fair_concurrency
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.events import convened_meetings
from repro.spec.fairness import professor_fairness_counts
from repro.spec.properties import check_exclusion, check_progress, check_synchronization
from repro.spec.stabilization import snap_stabilization_sweep
from repro.workloads.request_models import AlwaysRequestingEnvironment, InfiniteMeetingEnvironment

from tests.conftest import make_cc2


def run_cc2(hypergraph, steps=800, seed=1, env=None, arbitrary=False, token="oracle"):
    algo = make_cc2(hypergraph, token=token)
    env = env if env is not None else AlwaysRequestingEnvironment(discussion_steps=1)
    initial = None
    if arbitrary:
        initial = algo.arbitrary_configuration(random.Random(seed))
    scheduler = Scheduler(
        algo, environment=env, daemon=default_daemon(seed=seed), initial_configuration=initial
    )
    return algo, scheduler.run(max_steps=steps)


class TestVariableLayout:
    def test_no_idle_status(self, fig1):
        algo = make_cc2(fig1)
        assert IDLE not in algo.statuses
        assert algo.initial_state(1)[STATUS] == LOOKING

    def test_lock_flag_present(self, fig1):
        algo = make_cc2(fig1)
        state = algo.initial_state(1)
        assert state[LOCK_FLAG] is False

    def test_arbitrary_state_never_idle(self, fig1, rng):
        algo = make_cc2(fig1)
        for pid in fig1.vertices:
            for _ in range(5):
                assert algo.arbitrary_state(pid, rng)[STATUS] in (LOOKING, WAITING, DONE)


class TestSafetyProperties:
    @pytest.mark.parametrize("fixture", ["fig1", "fig2", "fig4", "triangle", "two_disjoint"])
    def test_safety_on_clean_start(self, fixture, request):
        hypergraph = request.getfixturevalue(fixture)
        algo, result = run_cc2(hypergraph, steps=700, seed=3)
        assert check_exclusion(result.trace, hypergraph).holds
        assert check_synchronization(result.trace, hypergraph).holds
        assert check_essential_discussion(result.trace, hypergraph).holds
        assert check_voluntary_discussion(result.trace, hypergraph).holds

    def test_progress(self, fig1):
        algo, result = run_cc2(fig1, steps=900, seed=4)
        assert check_progress(result.trace, fig1).holds


class TestProfessorFairness:
    @pytest.mark.parametrize("fixture", ["fig1", "fig2", "fig3"])
    def test_every_professor_participates(self, fixture, request):
        """The finite rendering of Definition 3 over a long run."""
        hypergraph = request.getfixturevalue(fixture)
        algo, result = run_cc2(hypergraph, steps=1800, seed=7)
        summary = professor_fairness_counts(result.trace, hypergraph)
        assert summary.starved_professors == (), summary.per_professor

    def test_every_professor_participates_repeatedly(self, fig1):
        algo, result = run_cc2(fig1, steps=2000, seed=8)
        summary = professor_fairness_counts(result.trace, fig1)
        assert summary.min_professor_participations >= 3

    def test_fairness_with_tree_token(self, fig2):
        algo, result = run_cc2(fig2, steps=1800, seed=9, token="tree")
        summary = professor_fairness_counts(result.trace, fig2)
        assert summary.starved_professors == ()


class TestLockMechanism:
    def _figure4_configuration(self, algo) -> Configuration:
        """Rebuild (the essence of) Figure 4's configuration.

        Committee {3,4,5} is meeting; professor 1 holds the token, points at
        {1,2,5,8} and is looking; everyone else is looking.
        """
        from repro.tokenring.dijkstra_ring import COUNTER

        states = algo.initial_configuration().to_dict()
        locked_committee = Hyperedge([1, 2, 5, 8])
        meeting = Hyperedge([3, 4, 5])
        for pid in (3, 4, 5):
            states[pid][STATUS] = WAITING
            states[pid][POINTER] = meeting
        states[1][STATUS] = LOOKING
        states[1][POINTER] = locked_committee
        states[1][TOKEN_FLAG] = True
        # Make professor 1 the actual token holder of the (ring) token module:
        # on the id-descending ring its predecessor is professor 2, so a
        # differing counter gives Token(1) and only Token(1).
        states[1][algo.token.prefix + COUNTER] = 1
        cfg = Configuration(states)
        assert algo.token.token_in(cfg, 1)
        assert algo.token.token_holders(cfg) == (1,)
        return cfg

    def test_locked_predicate_on_figure4(self, fig4):
        algo = make_cc2(fig4)
        cfg = self._figure4_configuration(algo)
        env = AlwaysRequestingEnvironment()
        # Professors 2, 5 and 8 are members of the committee pointed at by the
        # token holder 1, so they are locked.
        for pid in (2, 5, 8):
            ctx = ActionContext(pid, cfg, env)
            assert algo.locked(ctx, pid), f"professor {pid} should be locked"
        # Professor 9 is not a member of {1,2,5,8}: not locked.
        ctx9 = ActionContext(9, cfg, env)
        assert not algo.locked(ctx9, 9)

    def test_free_edges_exclude_locked_processes(self, fig4):
        """Professor 9's committee {8,9} is not free (8 is locked); {6,7,9} is free."""
        algo = make_cc2(fig4)
        cfg = self._figure4_configuration(algo)
        # First let the Lock action publish L on the locked professors.
        env = AlwaysRequestingEnvironment()
        writes = {}
        for pid in (2, 5, 8):
            ctx = ActionContext(pid, cfg, env)
            assert algo.locked(ctx, pid)
            writes[pid] = {LOCK_FLAG: True}
        cfg = cfg.updated(writes)
        ctx9 = ActionContext(9, cfg, env)
        free = {tuple(e.members) for e in algo.free_edges(ctx9, 9)}
        assert (8, 9) not in free
        assert (6, 7, 9) in free

    def test_figure4_committee_679_can_convene(self, fig4):
        """Running from the Figure 4 configuration, {6,7,9} convenes even though
        {8,9} has higher id-priority, thanks to the lock mechanism."""
        algo = make_cc2(fig4)
        cfg = self._figure4_configuration(algo)
        env = InfiniteMeetingEnvironment()
        scheduler = Scheduler(
            algo, environment=env, daemon=default_daemon(seed=5), initial_configuration=cfg
        )
        result = scheduler.run(max_steps=800)
        convened = {tuple(e.committee.members) for e in convened_meetings(result.trace, fig4)}
        assert (6, 7, 9) in convened


class TestDegreeOfFairConcurrency:
    @pytest.mark.parametrize("fixture", ["fig1", "fig2", "two_disjoint"])
    def test_measured_degree_respects_theorem4(self, fixture, request):
        hypergraph = request.getfixturevalue(fixture)
        algo = make_cc2(hypergraph)
        result = degree_of_fair_concurrency(algo, trials=2, max_steps=2500, seed=3)
        assert result.respects_theorem4, result.as_row()

    def test_disjoint_committees_all_meet(self, two_disjoint):
        algo = make_cc2(two_disjoint)
        measurement = measure_fair_concurrency(algo, max_steps=1200, seed=1)
        assert measurement.degree == 2

    def test_cc2_is_not_maximally_concurrent_on_figure2(self, fig2):
        """The trade-off of Section 3: some run of CC2 blocks a fully-waiting committee."""
        algo = make_cc2(fig2)
        observed_blocked = False
        for seed in range(6):
            measurement = measure_fair_concurrency(algo, max_steps=1500, seed=seed)
            if not measurement.held_is_maximal_matching:
                observed_blocked = True
                break
        assert observed_blocked


class TestSnapStabilization:
    def test_arbitrary_start_is_safe(self, fig1):
        algo = make_cc2(fig1)
        report = snap_stabilization_sweep(
            algo,
            lambda: AlwaysRequestingEnvironment(discussion_steps=1),
            trials=4,
            max_steps=500,
            seed=31,
        )
        assert report.all_hold, report.violations()
        assert report.total_convened_meetings > 0

    def test_arbitrary_start_with_tree_token(self, fig4):
        algo = make_cc2(fig4, token="tree")
        report = snap_stabilization_sweep(
            algo,
            lambda: AlwaysRequestingEnvironment(discussion_steps=1),
            trials=3,
            max_steps=500,
            seed=37,
        )
        assert report.all_hold, report.violations()

    def test_correct_predicate_closed_under_steps(self, fig2):
        """Lemma 8 analogue of the CC1 test."""
        algo = make_cc2(fig2)
        env = AlwaysRequestingEnvironment(discussion_steps=1)
        scheduler = Scheduler(
            algo,
            environment=env,
            daemon=default_daemon(seed=2),
            initial_configuration=algo.arbitrary_configuration(random.Random(5)),
        )
        became_correct_at = {}
        for step in range(250):
            cfg = scheduler.configuration
            for pid in fig2.vertices:
                ctx = ActionContext(pid, cfg, env)
                if algo.correct(ctx, pid):
                    became_correct_at.setdefault(pid, step)
                else:
                    assert pid not in became_correct_at
            if scheduler.step() is None:
                break


class TestTokenRetention:
    def test_token_holder_keeps_token_until_it_meets(self, fig2):
        """Unlike CC1 there is no Token2 action: CC2 never releases a token
        from a looking process."""
        algo = make_cc2(fig2)
        labels = {action.label for action in algo.actions(1)}
        assert "Token2" not in labels
        assert "Step11" in labels and "Step12" in labels
