"""Cross-engine differential test harness for the spec checkers.

Property-based (seeded) generation of algorithm × topology × daemon ×
fault-injection scenarios.  For every generated scenario the harness runs

1. the **dense engine** with every configuration recorded, then the dense
   post-hoc checkers (`check_exclusion` / `check_synchronization` /
   `check_progress` / `professor_fairness_counts`), and
2. the **incremental engine** with ``record_configurations=False`` and the
   :class:`~repro.spec.streaming.StreamingSpecSuite` riding the scheduler's
   observer hook,

and asserts the two verdict sets are identical — reports, violation
messages, structured details, fairness counts and all.  Scenarios include
arbitrary initial configurations and seeded mid-run `FaultInjector` bursts,
so stabilization-phase violations are exercised, not just clean runs.

The ``slow`` marker guards the long-haul variants: a >=100k-step combined
parity run and the 1M-step sparse acceptance run mirroring
``repro-cc check --engine incremental --sparse``.

The **batched axis** (``TestBatchedDifferential``) extends the same proof to
the lockstep array engine: for every seeded scenario cell, batched lane *i*
must produce a step-record stream, final configuration and spec verdicts
byte-identical to a solo ``dense`` run with lane seed *i*.  The cell's
*shape* (topology, algorithm, token, daemon kind, fault schedule) comes from
the scenario seed; lane seeds vary only the seed-derived run inputs — daemon
RNG, arbitrary initial configuration, fault-injector stream — because the
batched engine's unit of sharing is one compiled scenario.  Skipped without
numpy (the ``repro-cc[batched]`` extra).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

import pytest

from repro.core.runner import CommitteeCoordinator
from repro.hypergraph.generators import (
    cycle_of_committees,
    figure1_hypergraph,
    figure4_hypergraph,
    grid_of_committees,
    path_of_committees,
    random_k_uniform_hypergraph,
    star_hypergraph,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernel.batched import numpy_available
from repro.kernel.daemon import SynchronousDaemon, default_daemon
from repro.kernel.faults import FaultInjector, arbitrary_configuration
from repro.kernel.scheduler import Scheduler, StopRun
from repro.spec.fairness import professor_fairness_counts
from repro.spec.properties import (
    check_exclusion,
    check_progress,
    check_synchronization,
)
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.streaming import SpecVerdicts, StreamingSpecSuite
from repro.workloads.random_scenarios import RandomScenarioSpec, random_scenario
from repro.workloads.request_models import AlwaysRequestingEnvironment


@dataclass(frozen=True)
class ScenarioSpec:
    """One generated differential scenario (fully determined by its seed)."""

    seed: int
    topology: str
    algorithm: str
    token: str
    daemon: str
    discussion_steps: int
    arbitrary_start: bool
    burst_every: int  # 0 = no mid-run fault injection
    burst_fraction: float
    max_steps: int

    def hypergraph(self) -> Hypergraph:
        rng = random.Random(self.seed)
        if self.topology == "figure1":
            return figure1_hypergraph()
        if self.topology == "figure4":
            return figure4_hypergraph()
        if self.topology == "path":
            return path_of_committees(rng.randint(3, 6))
        if self.topology == "cycle":
            return cycle_of_committees(rng.randint(3, 6))
        if self.topology == "grid":
            return grid_of_committees(2, 3)
        if self.topology == "star":
            return star_hypergraph(4, 2)
        return random_k_uniform_hypergraph(8, 6, committee_size=3, seed=self.seed)


TOPOLOGIES = ("figure1", "figure4", "path", "cycle", "grid", "star", "random")


def generate_scenario(seed: int, max_steps: int = 260) -> ScenarioSpec:
    """Derive a scenario deterministically from one seed."""
    rng = random.Random(seed * 7919 + 17)
    return ScenarioSpec(
        seed=seed,
        topology=rng.choice(TOPOLOGIES),
        algorithm=rng.choice(("cc1", "cc2", "cc3")),
        token=rng.choice(("tree", "ring", "oracle")),
        daemon=rng.choice(("weakly_fair", "weakly_fair", "synchronous")),
        discussion_steps=rng.randint(1, 3),
        arbitrary_start=rng.random() < 0.5,
        burst_every=rng.choice((0, 0, 9, 13)),
        burst_fraction=rng.choice((0.4, 0.8)),
        max_steps=max_steps,
    )


def _drive(spec: ScenarioSpec, engine: str, record: bool,
           suite: Optional[StreamingSpecSuite] = None) -> Scheduler:
    hypergraph = spec.hypergraph()
    coordinator = CommitteeCoordinator(
        hypergraph, algorithm=spec.algorithm, token=spec.token,
        seed=spec.seed, engine=engine,
    )
    algorithm = coordinator.algorithm
    daemon = (
        SynchronousDaemon() if spec.daemon == "synchronous" else default_daemon(seed=spec.seed)
    )
    scheduler = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(spec.discussion_steps),
        daemon=daemon,
        initial_configuration=(
            arbitrary_configuration(algorithm, seed=spec.seed)
            if spec.arbitrary_start else None
        ),
        record_configurations=record,
        engine=engine,
        step_listener=suite.observe_step if suite is not None else None,
    )
    injector = (
        FaultInjector(algorithm, fraction=spec.burst_fraction, seed=spec.seed + 1)
        if spec.burst_every else None
    )
    while scheduler.step_index < spec.max_steps:
        if (
            injector is not None
            and scheduler.step_index
            and scheduler.step_index % spec.burst_every == 0
        ):
            injector.corrupt_scheduler(scheduler)
        try:
            if scheduler.step() is None:
                break
        except StopRun:
            break
    return scheduler


def _dense_verdicts(scheduler: Scheduler, hypergraph: Hypergraph) -> SpecVerdicts:
    trace = scheduler.trace
    return SpecVerdicts(
        exclusion=check_exclusion(trace, hypergraph),
        synchronization=check_synchronization(trace, hypergraph),
        progress=check_progress(trace, hypergraph),
        fairness=professor_fairness_counts(trace, hypergraph),
    )


def _assert_verdicts_equal(streaming: SpecVerdicts, dense: SpecVerdicts, context: object) -> None:
    assert streaming.exclusion == dense.exclusion, context
    assert streaming.synchronization == dense.synchronization, context
    assert streaming.progress == dense.progress, context
    assert streaming.fairness == dense.fairness, context


class TestDifferentialHarness:
    """Dense post-hoc == streaming == incremental engine, per seeded scenario."""

    @pytest.mark.parametrize("seed", range(14))
    def test_seeded_scenario_parity(self, seed):
        spec = generate_scenario(seed)
        hypergraph = spec.hypergraph()

        dense_sched = _drive(spec, engine="dense", record=True)
        dense = _dense_verdicts(dense_sched, hypergraph)

        # Streaming monitors on the *incremental* engine, sparse run.
        suite = StreamingSpecSuite(hypergraph)
        incremental_sched = _drive(spec, engine="incremental", record=False, suite=suite)
        _assert_verdicts_equal(suite.verdicts(), dense, spec)

        # Same step sequence across engines (the corruption bursts included).
        assert tuple(dense_sched.trace.steps) == tuple(incremental_sched.trace.steps), spec
        assert dense_sched.configuration == incremental_sched.configuration, spec

        # Streaming monitors on the *dense* engine agree as well (isolates
        # the monitor logic from the engine variable).
        suite_dense = StreamingSpecSuite(hypergraph)
        _drive(spec, engine="dense", record=False, suite=suite_dense)
        _assert_verdicts_equal(suite_dense.verdicts(), dense, spec)

    def test_generated_scenarios_are_diverse(self):
        specs = [generate_scenario(seed) for seed in range(14)]
        assert len({s.topology for s in specs}) >= 4
        assert {s.algorithm for s in specs} == {"cc1", "cc2", "cc3"}
        assert any(s.arbitrary_start for s in specs)
        assert any(s.burst_every for s in specs)
        assert any(not s.burst_every for s in specs)

    def test_fault_injected_scenarios_produce_violations_somewhere(self):
        # The harness is only meaningful if the fault-injection scenarios
        # actually exercise the violation paths: at least one generated
        # scenario must yield a safety violation that both sides agree on.
        for seed in range(14):
            spec = generate_scenario(seed)
            if not spec.burst_every:
                continue
            hypergraph = spec.hypergraph()
            dense = _dense_verdicts(_drive(spec, engine="dense", record=True), hypergraph)
            if not (dense.exclusion.holds and dense.synchronization.holds):
                suite = StreamingSpecSuite(hypergraph)
                _drive(spec, engine="incremental", record=False, suite=suite)
                verdicts = suite.verdicts()
                assert verdicts.first_violation is not None
                assert not (verdicts.exclusion.holds and verdicts.synchronization.holds)
                return
        pytest.fail("no fault-injection scenario produced a safety violation")


def _drive_random(
    spec: RandomScenarioSpec,
    algorithm_name: str,
    engine: str,
    record: bool,
    max_steps: int,
    suite: Optional[StreamingSpecSuite] = None,
) -> Scheduler:
    """Drive one randomized scenario exactly as the campaign worker does.

    A fresh environment/daemon is built per call (they are stateful); the
    run seed is the scenario seed, so the same spec replays identically on
    both engines.
    """
    hypergraph = spec.build_hypergraph()
    coordinator = CommitteeCoordinator(
        hypergraph, algorithm=algorithm_name, token=spec.token,
        seed=spec.seed, engine=engine,
    )
    algorithm = coordinator.algorithm
    scheduler = Scheduler(
        algorithm,
        environment=spec.build_environment(),
        daemon=spec.build_daemon(seed=spec.seed),
        initial_configuration=(
            arbitrary_configuration(algorithm, seed=spec.seed)
            if spec.arbitrary_start else None
        ),
        record_configurations=record,
        engine=engine,
        step_listener=suite.observe_step if suite is not None else None,
    )
    injector = (
        FaultInjector(algorithm, fraction=spec.fault_fraction, seed=spec.seed + 1)
        if spec.fault_every else None
    )
    while scheduler.step_index < max_steps:
        if (
            injector is not None
            and scheduler.step_index
            and scheduler.step_index % spec.fault_every == 0
        ):
            injector.corrupt_scheduler(scheduler)
        try:
            if scheduler.step() is None:
                break
        except StopRun:
            break
    return scheduler


class TestRandomScenarioFuzz:
    """Seeded fuzzing over the ``random_scenarios`` workload space.

    Every drawn scenario (random topology × request model × token × daemon ×
    fault schedule × start) is run on both engines; the dense recorded trace
    and the incremental sparse trace must be step-identical, and the
    streaming suite (2-phase discussion included) must match the dense
    post-hoc checkers byte for byte.  This is the differential backstop for
    arbitrary campaign workloads, not just the named scenarios.
    """

    @staticmethod
    def _check_one(seed: int, max_steps: int) -> None:
        spec = random_scenario(seed)
        algorithm_name = ("cc1", "cc2", "cc3")[seed % 3]
        hypergraph = spec.build_hypergraph()

        dense = _drive_random(spec, algorithm_name, "dense", True, max_steps)
        suite = StreamingSpecSuite(hypergraph, check_discussion=True)
        incremental = _drive_random(
            spec, algorithm_name, "incremental", False, max_steps, suite=suite
        )

        # Engines agree on the execution itself.
        assert tuple(dense.trace.steps) == tuple(incremental.trace.steps), spec
        assert dense.configuration == incremental.configuration, spec

        # Streaming verdicts match the dense post-hoc checkers.
        trace = dense.trace
        verdicts = suite.verdicts()
        assert verdicts.exclusion == check_exclusion(trace, hypergraph), spec
        assert verdicts.synchronization == check_synchronization(trace, hypergraph), spec
        assert verdicts.progress == check_progress(trace, hypergraph), spec
        assert verdicts.fairness == professor_fairness_counts(trace, hypergraph), spec
        assert verdicts.essential == check_essential_discussion(trace, hypergraph), spec
        assert verdicts.voluntary == check_voluntary_discussion(trace, hypergraph), spec

    @pytest.mark.parametrize("seed", range(20))
    def test_fuzzed_scenario_parity(self, seed):
        self._check_one(seed, max_steps=220)

    def test_fuzz_space_exercises_violations(self):
        # The fuzz harness must actually reach the violation paths: among
        # the tier-1 seeds, at least one fault-injected scenario fails a
        # checked property on both paths identically (asserted per-seed by
        # test_fuzzed_scenario_parity; here we just prove non-vacuity).
        for seed in range(20):
            spec = random_scenario(seed)
            if not spec.fault_every:
                continue
            algorithm_name = ("cc1", "cc2", "cc3")[seed % 3]
            hypergraph = spec.build_hypergraph()
            suite = StreamingSpecSuite(hypergraph, check_discussion=True)
            _drive_random(spec, algorithm_name, "incremental", False, 220, suite=suite)
            if not suite.verdicts().all_hold:
                return
        pytest.fail("no fuzzed fault-injection scenario produced a violation")

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(20, 140))
    def test_fuzzed_scenario_parity_wide(self, seed):
        """The wide sweep: 120 more scenarios at a longer step budget."""
        self._check_one(seed, max_steps=500)


requires_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="batched engine needs the repro-cc[batched] extra",
)


def _shared_algorithm(spec: ScenarioSpec, hypergraph: Hypergraph):
    """The scenario's algorithm object, shared by all lanes and solo refs.

    Seed/engine feed only the daemon/scheduler, so building with the base
    seed on the incremental engine yields the exact object a lane's solo run
    would use.
    """
    return CommitteeCoordinator(
        hypergraph, algorithm=spec.algorithm, token=spec.token,
        seed=spec.seed, engine="incremental",
    ).algorithm


def _lane_daemon(spec: ScenarioSpec, lane_seed: int):
    return (
        SynchronousDaemon() if spec.daemon == "synchronous"
        else default_daemon(seed=lane_seed)
    )


def _drive_batched(spec: ScenarioSpec, hypergraph: Hypergraph, algorithm,
                   lane_seeds):
    """One lockstep run: lane *i* gets the inputs seed ``lane_seeds[i]`` derives."""
    from repro.core.batched_program import compile_program
    from repro.kernel.batched import BatchedScheduler

    program = compile_program(
        algorithm, AlwaysRequestingEnvironment(spec.discussion_steps)
    )
    initials, daemons, injectors, suites, listeners = [], [], [], [], []
    for lane_seed in lane_seeds:
        initials.append(
            arbitrary_configuration(algorithm, seed=lane_seed)
            if spec.arbitrary_start else algorithm.initial_configuration()
        )
        daemons.append(_lane_daemon(spec, lane_seed))
        injectors.append(
            FaultInjector(algorithm, fraction=spec.burst_fraction, seed=lane_seed + 1)
            if spec.burst_every else None
        )
        suite = StreamingSpecSuite(hypergraph)
        suites.append(suite)
        listeners.append((suite.observe_step,))
    scheduler = BatchedScheduler(
        program, initials, daemons,
        injectors=injectors if spec.burst_every else None,
        fault_every=spec.burst_every,
        step_listeners=listeners,
    )
    return scheduler.run(spec.max_steps), suites


def _drive_lane_solo(spec: ScenarioSpec, algorithm, lane_seed: int) -> Scheduler:
    """The solo ``dense`` oracle run with lane ``lane_seed``'s inputs."""
    scheduler = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(spec.discussion_steps),
        daemon=_lane_daemon(spec, lane_seed),
        initial_configuration=(
            arbitrary_configuration(algorithm, seed=lane_seed)
            if spec.arbitrary_start else None
        ),
        record_configurations=True,
        engine="dense",
    )
    injector = (
        FaultInjector(algorithm, fraction=spec.burst_fraction, seed=lane_seed + 1)
        if spec.burst_every else None
    )
    while scheduler.step_index < spec.max_steps:
        if (
            injector is not None
            and scheduler.step_index
            and scheduler.step_index % spec.burst_every == 0
        ):
            injector.corrupt_scheduler(scheduler)
        try:
            if scheduler.step() is None:
                break
        except StopRun:
            break
    return scheduler


@requires_numpy
class TestBatchedDifferential:
    """Batched lane *i* == solo dense run with lane seed *i*, per scenario cell."""

    @staticmethod
    def _check_cell(spec: ScenarioSpec, lane_seeds) -> None:
        hypergraph = spec.hypergraph()
        algorithm = _shared_algorithm(spec, hypergraph)
        lanes, suites = _drive_batched(spec, hypergraph, algorithm, lane_seeds)
        for lane_seed, lane, suite in zip(lane_seeds, lanes, suites):
            context = (spec, lane_seed)
            solo = _drive_lane_solo(spec, algorithm, lane_seed)
            # The execution itself: identical step records (selected sets,
            # executed action labels, enabled/neutralized sets, rounds,
            # writer-set deltas with epochs) and identical end states.
            assert tuple(solo.trace.steps) == tuple(lane.trace.steps), context
            assert solo.configuration == lane.configuration, context
            assert solo.step_index == lane.steps, context
            # The verdicts: the lane's streaming suite equals the dense
            # post-hoc checkers over the solo trace.
            _assert_verdicts_equal(
                suite.verdicts(), _dense_verdicts(solo, hypergraph), context
            )

    @pytest.mark.parametrize("seed", range(14))
    def test_batched_lanes_match_solo_dense(self, seed):
        self._check_cell(generate_scenario(seed), lane_seeds=range(6))

    def test_terminated_lanes_drop_out_without_disturbing_others(self):
        # A cell with heterogeneous lane lifetimes: arbitrary starts make
        # some lanes terminate (or stabilize) at different steps; the
        # lockstep must keep the survivors exact after each drop-out.
        spec = ScenarioSpec(
            seed=3, topology="path", algorithm="cc2", token="ring",
            daemon="weakly_fair", discussion_steps=1, arbitrary_start=True,
            burst_every=0, burst_fraction=0.4, max_steps=220,
        )
        self._check_cell(spec, lane_seeds=range(10))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", (0, 5, 11))
    def test_batched_120_seed_sweep(self, seed):
        """The wide proof: 120 lanes per cell, every lane checked."""
        self._check_cell(
            generate_scenario(seed, max_steps=300), lane_seeds=range(120)
        )


class TestLongHaulParity:
    """The acceptance-criteria runs: multi-100k/1M-step sparse spec checking."""

    @pytest.mark.slow
    def test_250k_step_parity_with_fault_injection(self):
        spec = ScenarioSpec(
            seed=5, topology="figure1", algorithm="cc2", token="tree",
            daemon="weakly_fair", discussion_steps=1, arbitrary_start=True,
            burst_every=50_000, burst_fraction=0.6, max_steps=250_000,
        )
        hypergraph = spec.hypergraph()
        dense = _dense_verdicts(_drive(spec, engine="dense", record=True), hypergraph)
        suite = StreamingSpecSuite(hypergraph)
        _drive(spec, engine="incremental", record=False, suite=suite)
        _assert_verdicts_equal(suite.verdicts(), dense, spec)

    @pytest.mark.slow
    def test_one_million_step_sparse_acceptance(self):
        """`repro-cc check --engine incremental --sparse` at 1M steps == dense post-hoc.

        Needs a few GB of RSS for the dense reference trace and ~20 minutes;
        this is exactly the acceptance criterion of the streaming spec
        subsystem, so it is kept runnable (``pytest -m slow``) rather than
        aspirational.
        """
        steps = 1_000_000
        hypergraph = figure1_hypergraph()

        sparse = CommitteeCoordinator(
            hypergraph, algorithm="cc2", seed=2026, engine="incremental"
        ).run(max_steps=steps, record_configurations=False, check=True)
        assert sparse.trace.is_sparse
        verdicts = sparse.spec
        assert verdicts is not None

        dense = CommitteeCoordinator(
            hypergraph, algorithm="cc2", seed=2026, engine="dense"
        ).run(max_steps=steps)
        trace = dense.trace
        assert verdicts.exclusion == check_exclusion(trace, hypergraph)
        assert verdicts.synchronization == check_synchronization(trace, hypergraph)
        assert verdicts.progress == check_progress(trace, hypergraph)
        assert verdicts.fairness == professor_fairness_counts(trace, hypergraph)
        assert verdicts.all_hold

    @pytest.mark.slow
    def test_stop_on_violation_against_million_step_budget(self):
        """A seeded fault-injection scenario halts at the first violation,
        long before the 1M-step budget is spent."""
        hypergraph = figure1_hypergraph()
        coordinator = CommitteeCoordinator(
            hypergraph, algorithm="cc2", seed=0, engine="incremental"
        )
        algorithm = coordinator.algorithm
        suite = StreamingSpecSuite(hypergraph, stop_on_violation=True)
        scheduler = Scheduler(
            algorithm,
            environment=AlwaysRequestingEnvironment(1),
            daemon=default_daemon(seed=0),
            record_configurations=False,
            engine="incremental",
            step_listener=suite.observe_step,
        )
        injector = FaultInjector(algorithm, fraction=0.8, seed=99)
        stopped_at = None
        while scheduler.step_index < 1_000_000:
            if scheduler.step_index and scheduler.step_index % 7 == 0:
                injector.corrupt_scheduler(scheduler)
            try:
                if scheduler.step() is None:
                    break
            except StopRun:
                stopped_at = scheduler.step_index
                break
        assert stopped_at is not None and stopped_at < 1_000_000
        assert suite.first_violation is not None
        assert suite.first_violation.step_index == stopped_at
