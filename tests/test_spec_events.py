"""Tests for the trace-level vocabulary (meetings, convene/terminate events)."""

from __future__ import annotations

import pytest

from repro.core.states import DONE, IDLE, LOOKING, POINTER, STATUS, WAITING
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph
from repro.kernel.configuration import Configuration
from repro.kernel.trace import StepRecord, Trace
from repro.spec.events import (
    committee_meets,
    concurrency_profile,
    convened_meetings,
    idle_processes,
    meeting_events,
    meetings_in,
    participations,
    terminated_meetings,
    waiting_processes,
)


H = Hypergraph([1, 2, 3, 4], [[1, 2], [3, 4], [2, 3]])
E12 = Hyperedge([1, 2])
E34 = Hyperedge([3, 4])


def cfg(**statuses) -> Configuration:
    """Build a configuration from ``{pid: (status, pointer)}`` keyword args p1=..., p2=..."""
    states = {}
    for key, (status, pointer) in statuses.items():
        pid = int(key[1:])
        states[pid] = {STATUS: status, POINTER: pointer}
    for pid in H.vertices:
        states.setdefault(pid, {STATUS: IDLE, POINTER: None})
    return Configuration(states)


def trace_of(*configurations) -> Trace:
    trace = Trace(configurations[0])
    for index, configuration in enumerate(configurations[1:]):
        trace.append(
            configuration,
            StepRecord(
                index=index,
                selected=frozenset(),
                executed={},
                enabled_before=frozenset(),
                neutralized=frozenset(),
                round_index=index,
            ),
        )
    return trace


class TestCommitteeMeets:
    def test_all_members_waiting_pointing(self):
        c = cfg(p1=(WAITING, E12), p2=(WAITING, E12))
        assert committee_meets(c, E12)

    def test_mixed_waiting_done(self):
        c = cfg(p1=(WAITING, E12), p2=(DONE, E12))
        assert committee_meets(c, E12)

    def test_member_looking_blocks_meeting(self):
        c = cfg(p1=(LOOKING, E12), p2=(DONE, E12))
        assert not committee_meets(c, E12)

    def test_member_pointing_elsewhere_blocks_meeting(self):
        c = cfg(p1=(WAITING, E12), p2=(WAITING, Hyperedge([2, 3])))
        assert not committee_meets(c, E12)

    def test_meetings_in(self):
        c = cfg(p1=(WAITING, E12), p2=(WAITING, E12), p3=(DONE, E34), p4=(DONE, E34))
        assert set(meetings_in(c, H)) == {E12, E34}


class TestProcessStates:
    def test_waiting_processes(self):
        c = cfg(p1=(LOOKING, None), p2=(WAITING, E12), p3=(DONE, E34))
        assert set(waiting_processes(c)) == {1, 2}

    def test_idle_processes(self):
        c = cfg(p1=(LOOKING, None))
        assert set(idle_processes(c)) == {2, 3, 4}


class TestEvents:
    def test_convene_then_terminate(self):
        quiet = cfg(p1=(LOOKING, None), p2=(LOOKING, None))
        meet = cfg(p1=(WAITING, E12), p2=(WAITING, E12))
        over = cfg(p1=(IDLE, None), p2=(DONE, E12))
        trace = trace_of(quiet, meet, over)
        events = meeting_events(trace, H)
        assert [(e.kind, e.committee, e.configuration_index) for e in events] == [
            ("convene", E12, 1),
            ("terminate", E12, 2),
        ]

    def test_convened_and_terminated_filters(self):
        quiet = cfg()
        meet = cfg(p3=(WAITING, E34), p4=(WAITING, E34))
        trace = trace_of(quiet, meet)
        assert len(convened_meetings(trace, H)) == 1
        assert len(terminated_meetings(trace, H)) == 0

    def test_meeting_present_initially_is_not_a_convene_event(self):
        """A meeting inherited from the arbitrary initial configuration never
        convened -- snap-stabilization makes no promise about it."""
        meet = cfg(p1=(DONE, E12), p2=(DONE, E12))
        still = cfg(p1=(DONE, E12), p2=(DONE, E12))
        trace = trace_of(meet, still)
        assert convened_meetings(trace, H) == []

    def test_participations(self):
        quiet = cfg()
        meet = cfg(p1=(WAITING, E12), p2=(WAITING, E12))
        trace = trace_of(quiet, meet)
        counts = participations(trace, H)
        assert counts[1] == 1 and counts[2] == 1 and counts[3] == 0

    def test_concurrency_profile(self):
        quiet = cfg()
        both = cfg(p1=(WAITING, E12), p2=(WAITING, E12), p3=(WAITING, E34), p4=(WAITING, E34))
        trace = trace_of(quiet, both)
        assert concurrency_profile(trace, H) == [0, 2]
