"""Tests for the kernel's writer-set delta protocol (`StepDelta` + epoch).

Covers

* every scheduler-committed step carrying a ``StepDelta`` whose writes are
  exactly the variables that differ between consecutive configurations;
* the configuration epoch starting at 0, surviving normal steps, and being
  bumped by ``Scheduler.set_configuration`` /
  ``FaultInjector.corrupt_scheduler``;
* the per-variable dirty maps the incremental engine builds from
  ``read_dependency_variables`` (token-counter writes dirty the ring
  successor, not the whole ``G_H`` neighbourhood);
* the streaming monitors riding the delta fast path on normal steps and
  resynchronizing (full scan) exactly on epoch changes, with dense-identical
  verdicts either way — the mid-run ``set_configuration`` regression test;
* ``merge_read_dependency_variables`` absorption semantics.
"""

from __future__ import annotations

import pytest

from repro.core.runner import CommitteeCoordinator
from repro.hypergraph.generators import figure1_hypergraph
from repro.kernel.daemon import default_daemon
from repro.kernel.faults import FaultInjector
from repro.kernel.scheduler import Scheduler
from repro.kernel.trace import StepDelta
from repro.kernel.algorithm import merge_read_dependency_variables
from repro.spec.properties import (
    check_exclusion,
    check_progress,
    check_synchronization,
)
from repro.spec.streaming import StreamingSpecSuite
from repro.workloads.request_models import AlwaysRequestingEnvironment


def _scheduler(engine=None, seed=3, record=True, listeners=None, algorithm="cc2"):
    coordinator = CommitteeCoordinator(
        figure1_hypergraph(), algorithm=algorithm, token="ring", seed=seed, engine=engine
    )
    return coordinator.algorithm, Scheduler(
        coordinator.algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=default_daemon(seed=seed),
        record_configurations=record,
        engine=engine,
        step_listener=listeners,
    )


def _configuration_diff(before, after):
    """pid -> sorted tuple of variable names whose values differ."""
    diff = {}
    for pid in before:
        changed = tuple(
            sorted(
                name
                for name in set(before.state_of(pid)) | set(after.state_of(pid))
                if before.get(pid, name) != after.get(pid, name)
            )
        )
        if changed:
            diff[pid] = changed
    return diff


class TestStepDeltaContents:
    @pytest.mark.parametrize("engine", ["dense", "incremental"])
    def test_delta_writes_cover_configuration_diffs(self, engine):
        _, scheduler = _scheduler(engine=engine)
        result = scheduler.run(max_steps=120)
        configurations = result.trace.configurations
        assert result.steps > 0
        for before, after, record in result.trace.pairs():
            delta = record.delta
            assert isinstance(delta, StepDelta)
            assert delta.epoch == 0  # no external swaps in this run
            # Every variable that changed value is declared in the delta ...
            diff = _configuration_diff(before, after)
            for pid, changed in diff.items():
                assert set(changed) <= set(delta.writes[pid])
            # ... and every declared writer actually executed an action.
            assert set(delta.writes) <= set(record.selected)
            assert delta.writers == tuple(sorted(delta.writes))

    def test_no_empty_writer_entries(self):
        _, scheduler = _scheduler(engine="incremental")
        scheduler.run(max_steps=200)
        for record in scheduler.trace.steps:
            for pid, written in record.delta.writes.items():
                assert written, f"process {pid} recorded with an empty write set"

    def test_wrote_helper(self):
        delta = StepDelta(writes={1: ("P", "S")}, epoch=0)
        assert delta.wrote(1) and delta.wrote(1, "S") and delta.wrote(1, "S", "x")
        assert not delta.wrote(1, "x")
        assert not delta.wrote(2) and not delta.wrote(2, "S")


class TestEpoch:
    def test_epoch_starts_at_zero_and_survives_steps(self):
        _, scheduler = _scheduler(engine="incremental")
        assert scheduler.epoch == 0
        scheduler.run(max_steps=50)
        assert scheduler.epoch == 0

    def test_set_configuration_bumps_epoch(self):
        _, scheduler = _scheduler(engine="incremental")
        scheduler.run(max_steps=20)
        scheduler.set_configuration(scheduler.configuration)
        assert scheduler.epoch == 1
        record = scheduler.step()
        assert record.delta.epoch == 1

    def test_corrupt_scheduler_bumps_epoch(self):
        algorithm, scheduler = _scheduler(engine="incremental")
        scheduler.run(max_steps=20)
        injector = FaultInjector(algorithm, fraction=0.5, seed=9)
        injector.corrupt_scheduler(scheduler)
        injector.corrupt_scheduler(scheduler)
        assert scheduler.epoch == 2


class TestPerVariableDirtyMaps:
    def test_token_counter_dirties_ring_successor_not_neighbourhood(self):
        algorithm, scheduler = _scheduler(engine="incremental")
        module = algorithm.token.module
        var_dependents = scheduler._var_dependents
        proc_dependents = scheduler._proc_dependents
        for pid in algorithm.process_ids():
            pred = module.predecessor(pid)
            # pid declares (pred, tc_c) as a variable-granular dependency.
            assert pid in var_dependents[(pred, "tc_c")]
            # A CC-variable write of a *non-neighbour, non-link* process must
            # not dirty pid: its process-granular dependents are only itself.
            assert proc_dependents[pid] == frozenset({pid})
        # The CC-layer variables of a neighbour are variable-granular too.
        some = algorithm.process_ids()[0]
        for q in algorithm.hypergraph.neighbors(some):
            assert some in var_dependents[(q, "S")]
            assert some in var_dependents[(q, "P")]

    def test_merge_absorbs_none(self):
        merged = merge_read_dependency_variables(
            {1: ("a",), 2: ("b",)},
            {1: None, 2: ("c",), 3: ("d",)},
            {2: ("b",)},
        )
        assert merged == {1: None, 2: ("b", "c"), 3: ("d",)}


class TestMonitorResyncOnEpochBump:
    """Mid-run ``set_configuration`` must force a streaming full resync with
    dense-identical verdicts — the regression the epoch exists to prevent."""

    STEPS_PER_PHASE = 60
    PHASES = 4

    def _drive(self, engine, record, suite=None, seed=11):
        algorithm, scheduler = _scheduler(
            engine=engine,
            seed=seed,
            record=record,
            listeners=suite.observe_step if suite is not None else None,
        )
        injector = FaultInjector(algorithm, fraction=0.6, seed=seed + 1)
        for phase in range(self.PHASES):
            scheduler.run(max_steps=scheduler.step_index + self.STEPS_PER_PHASE)
            if phase < self.PHASES - 1:
                injector.corrupt_scheduler(scheduler)
        return scheduler

    def test_epoch_bump_forces_full_scan_then_delta_path_resumes(self):
        hypergraph = figure1_hypergraph()
        suite = StreamingSpecSuite(hypergraph)
        scans = []

        def spy(configuration, record):
            if record is not None:
                scans.append(suite._stream.last_scan_was_full)

        algorithm, scheduler = _scheduler(
            engine="incremental",
            record=False,
            listeners=[suite.observe_step, spy],
        )
        scheduler.run(max_steps=30)
        scheduler.set_configuration(scheduler.configuration)
        scheduler.run(max_steps=60)
        # Step 0 is a full scan (the suite has no epoch yet), the first step
        # after the swap is a full scan (epoch changed), everything else
        # rides the delta fast path.
        full_indices = [i for i, full in enumerate(scans) if full]
        assert full_indices == [0, 30]

    def test_verdicts_identical_to_dense_across_epoch_bumps(self):
        hypergraph = figure1_hypergraph()
        dense_trace = self._drive(engine="dense", record=True).trace
        suite = StreamingSpecSuite(hypergraph)
        self._drive(engine="incremental", record=False, suite=suite)
        verdicts = suite.verdicts()
        assert verdicts.exclusion == check_exclusion(dense_trace, hypergraph)
        assert verdicts.synchronization == check_synchronization(dense_trace, hypergraph)
        assert verdicts.progress == check_progress(dense_trace, hypergraph)
