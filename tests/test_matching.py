"""Tests for matchings and the Section 5.3 / 5.4 quantities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypergraph.generators import figure1_hypergraph, figure2_hypergraph, path_of_committees
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph
from repro.hypergraph.matching import (
    MatchingAnalysis,
    all_maximal_matchings,
    almost_matchings,
    amm,
    is_matching,
    is_maximal_matching,
    max_hyperedge_size,
    max_maximal_matching_size,
    max_min_incident_size,
    min_maximal_matching_size,
    min_mm_union_amm,
    proper_subsets_containing,
)


class TestMatchingPredicates:
    def test_empty_is_matching(self, fig1):
        assert is_matching(fig1, [])

    def test_single_edge_is_matching(self, fig1):
        assert is_matching(fig1, [Hyperedge([1, 2])])

    def test_conflicting_edges_not_matching(self, fig1):
        assert not is_matching(fig1, [Hyperedge([1, 2]), Hyperedge([2, 4, 5])])

    def test_disjoint_edges_are_matching(self, fig1):
        assert is_matching(fig1, [Hyperedge([1, 2]), Hyperedge([3, 6])])

    def test_foreign_edge_not_matching(self, fig1):
        assert not is_matching(fig1, [Hyperedge([5, 6])])

    def test_maximality_detects_extensible_matching(self, fig1):
        # {1,2} alone can still be extended by {3,6} or {4,6}.
        assert not is_maximal_matching(fig1, [Hyperedge([1, 2])])

    def test_maximal_matching_accepted(self, fig1):
        assert is_maximal_matching(fig1, [Hyperedge([1, 2]), Hyperedge([3, 6])])

    def test_big_edge_is_maximal_alone(self, fig1):
        # {1,2,3,4} conflicts with every other committee.
        assert is_maximal_matching(fig1, [Hyperedge([1, 2, 3, 4])])


class TestEnumeration:
    def test_all_maximal_matchings_figure1(self, fig1):
        matchings = all_maximal_matchings(fig1)
        as_sets = {frozenset(tuple(e.members) for e in m) for m in matchings}
        assert frozenset({(1, 2, 3, 4)}) in as_sets
        assert frozenset({(1, 2), (3, 6)}) in as_sets
        assert frozenset({(1, 2), (4, 6)}) in as_sets
        # Every enumerated matching is indeed maximal.
        for matching in matchings:
            assert is_maximal_matching(fig1, matching)

    def test_min_and_max_sizes_figure1(self, fig1):
        assert min_maximal_matching_size(fig1) == 1
        assert max_maximal_matching_size(fig1) == 2

    def test_figure2_sizes(self, fig2):
        # Maximal matchings of {{1,2},{1,3,5},{3,4}}: {{1,2},{3,4}} and {{1,3,5}}.
        assert min_maximal_matching_size(fig2) == 1
        assert max_maximal_matching_size(fig2) == 2

    def test_path_of_committees_min_mm(self):
        # A path of 3 two-member committees: the middle committee alone is a
        # maximal matching of size 1.
        h = path_of_committees(3)
        assert min_maximal_matching_size(h) == 1
        assert max_maximal_matching_size(h) == 2

    def test_disjoint_committees(self):
        h = Hypergraph([1, 2, 3, 4], [[1, 2], [3, 4]])
        matchings = all_maximal_matchings(h)
        assert len(matchings) == 1
        assert len(matchings[0]) == 2


class TestScalarQuantities:
    def test_max_min_incident_size_figure1(self, fig1):
        # Professor 5 only belongs to {2,4,5} (size 3), so MaxMin = 3.
        assert max_min_incident_size(fig1) == 3

    def test_max_hyperedge_size_figure1(self, fig1):
        assert max_hyperedge_size(fig1) == 4

    def test_max_min_figure2(self, fig2):
        # Professor 5 only belongs to {1,3,5}: MaxMin = 3.
        assert max_min_incident_size(fig2) == 3

    def test_isolated_vertices_ignored(self):
        h = Hypergraph([1, 2, 3], [[1, 2]])
        assert max_min_incident_size(h) == 2


class TestAlmostAndAMM:
    def test_proper_subsets_containing(self):
        edge = Hyperedge([1, 3, 5])
        subsets = proper_subsets_containing(edge, 5)
        assert frozenset({5}) in subsets
        assert frozenset({1, 5}) in subsets
        assert frozenset({3, 5}) in subsets
        assert frozenset({1, 3, 5}) not in subsets
        assert all(5 in s for s in subsets)

    def test_proper_subsets_requires_membership(self):
        assert proper_subsets_containing(Hyperedge([1, 2]), 7) == []

    def test_almost_matchings_figure2(self, fig2):
        # Block professor 5 (the token holder stuck on {1,3,5}); the induced
        # subhypergraph keeps {1,2} and {3,4}, both of which must be covered.
        result = almost_matchings(fig2, Hyperedge([1, 3, 5]), [5])
        as_sets = {frozenset(tuple(e.members) for e in m) for m in result}
        assert frozenset({(1, 2), (3, 4)}) in as_sets

    def test_amm_members_are_matchings(self, fig1):
        for matching in amm(fig1):
            used = set()
            for edge in matching:
                assert not (set(edge.members) & used)
                used |= set(edge.members)

    def test_min_mm_union_amm_is_positive(self, fig1, fig2):
        assert min_mm_union_amm(fig1) >= 1
        assert min_mm_union_amm(fig2) >= 1

    def test_amm_prime_superset_relation(self, fig1):
        """AMM ⊆ AMM' (min-edges restriction only removes options)."""
        plain = {frozenset(e.members for e in m) for m in amm(fig1, min_edges_only=True)}
        prime = {frozenset(e.members for e in m) for m in amm(fig1, min_edges_only=False)}
        assert plain <= prime


class TestMatchingAnalysis:
    def test_analysis_figure1(self, fig1):
        analysis = MatchingAnalysis.of(fig1)
        assert analysis.min_mm == 1
        assert analysis.max_mm == 2
        assert analysis.max_min == 3
        assert analysis.max_hedge == 4
        assert analysis.theorem5_bound == 1 - 3 + 1
        assert analysis.theorem8_bound == 1 - 4 + 1

    def test_theorem5_inequality(self, fig1, fig2):
        for h in (fig1, fig2):
            analysis = MatchingAnalysis.of(h)
            assert analysis.min_mm_union_amm >= analysis.theorem5_bound

    def test_theorem8_inequality(self, fig1, fig2):
        for h in (fig1, fig2):
            analysis = MatchingAnalysis.of(h)
            assert analysis.min_mm_union_amm_prime >= analysis.theorem8_bound

    def test_as_row_keys(self, fig1):
        row = MatchingAnalysis.of(fig1).as_row()
        assert row["minMM"] == 1
        assert "Thm5 bound" in row


# --------------------------------------------------------------------------- #
# Property-based tests on random small hypergraphs
# --------------------------------------------------------------------------- #
@st.composite
def small_hypergraphs(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    vertices = list(range(1, n + 1))
    num_edges = draw(st.integers(min_value=1, max_value=5))
    edges = []
    for _ in range(num_edges):
        size = draw(st.integers(min_value=2, max_value=min(3, n)))
        edge = draw(st.permutations(vertices).map(lambda p: tuple(sorted(p[:size]))))
        edges.append(list(edge))
    return Hypergraph(vertices, edges)


@settings(max_examples=40, deadline=None)
@given(small_hypergraphs())
def test_property_every_maximal_matching_is_a_matching(h):
    for matching in all_maximal_matchings(h):
        assert is_matching(h, matching)
        assert is_maximal_matching(h, matching)


@settings(max_examples=40, deadline=None)
@given(small_hypergraphs())
def test_property_min_le_max_maximal_matching(h):
    assert min_maximal_matching_size(h) <= max_maximal_matching_size(h)


@settings(max_examples=40, deadline=None)
@given(small_hypergraphs())
def test_property_theorem5_bound_holds(h):
    analysis = MatchingAnalysis.of(h)
    assert analysis.min_mm_union_amm >= analysis.theorem5_bound
    assert analysis.min_mm_union_amm >= 1


@settings(max_examples=40, deadline=None)
@given(small_hypergraphs())
def test_property_theorem8_bound_holds(h):
    analysis = MatchingAnalysis.of(h)
    assert analysis.min_mm_union_amm_prime >= analysis.theorem8_bound


@settings(max_examples=40, deadline=None)
@given(small_hypergraphs())
def test_property_amm_elements_are_matchings_of_h(h):
    for matching in amm(h):
        assert is_matching(h, matching)
