"""Tests for Algorithm ``CC1 ∘ TC`` (Section 4): Maximal Concurrency + 2-Phase Discussion."""

from __future__ import annotations

import random

import pytest

from repro.core.cc1 import CC1Algorithm
from repro.core.states import DONE, IDLE, LOOKING, POINTER, STATUS, TOKEN_FLAG, WAITING
from repro.kernel.daemon import SynchronousDaemon, default_daemon
from repro.kernel.scheduler import Scheduler
from repro.spec.concurrency import check_maximal_concurrency, measure_fair_concurrency
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.events import convened_meetings, meetings_in
from repro.spec.fairness import professor_fairness_counts
from repro.spec.properties import check_exclusion, check_progress, check_synchronization
from repro.spec.stabilization import snap_stabilization_sweep
from repro.workloads.request_models import (
    AlwaysRequestingEnvironment,
    InfiniteMeetingEnvironment,
    ProbabilisticRequestEnvironment,
)

from tests.conftest import make_cc1


def run_cc1(hypergraph, steps=600, seed=1, env=None, arbitrary=False, token="oracle"):
    algo = make_cc1(hypergraph, token=token)
    env = env if env is not None else AlwaysRequestingEnvironment(discussion_steps=1)
    initial = None
    if arbitrary:
        initial = algo.arbitrary_configuration(random.Random(seed))
    scheduler = Scheduler(
        algo, environment=env, daemon=default_daemon(seed=seed), initial_configuration=initial
    )
    return algo, scheduler.run(max_steps=steps)


class TestVariableLayout:
    def test_initial_state(self, fig1):
        algo = make_cc1(fig1)
        state = algo.initial_state(1)
        assert state[STATUS] == IDLE
        assert state[POINTER] is None
        assert state[TOKEN_FLAG] is False
        assert "tc_c" in state  # bound token module variables

    def test_arbitrary_state_within_domains(self, fig1, rng):
        algo = make_cc1(fig1)
        for pid in fig1.vertices:
            state = algo.arbitrary_state(pid, rng)
            assert state[STATUS] in (IDLE, LOOKING, WAITING, DONE)
            assert state[POINTER] is None or state[POINTER] in fig1.incident_edges(pid)

    def test_rejects_hypergraph_without_committees(self):
        from repro.hypergraph.hypergraph import Hypergraph

        with pytest.raises(ValueError):
            make_cc1(Hypergraph([1, 2], []))


class TestBasicBehaviour:
    def test_meetings_convene_from_clean_start(self, fig1):
        algo, result = run_cc1(fig1, steps=600)
        assert len(convened_meetings(result.trace, fig1)) > 0

    def test_idle_without_request_stays_idle(self, fig1):
        """With RequestIn always false no professor ever leaves the idle state."""
        algo = make_cc1(fig1)
        from repro.kernel.algorithm import Environment

        scheduler = Scheduler(algo, environment=Environment(), daemon=default_daemon(seed=1))
        result = scheduler.run(max_steps=200)
        for pid in fig1.vertices:
            assert result.final.get(pid, STATUS) == IDLE
        assert len(convened_meetings(result.trace, fig1)) == 0

    def test_two_disjoint_committees_meet_simultaneously(self, two_disjoint):
        algo, result = run_cc1(two_disjoint, steps=400, env=InfiniteMeetingEnvironment())
        held = meetings_in(result.final, two_disjoint)
        assert len(held) == 2

    def test_conflicting_committees_never_meet_together(self, triangle):
        algo, result = run_cc1(triangle, steps=500)
        assert check_exclusion(result.trace, triangle).holds

    def test_professors_return_to_idle_after_meetings(self, fig1):
        """With finite discussions, meetings terminate and members go back to idle."""
        algo, result = run_cc1(fig1, steps=600)
        statuses = set()
        for cfg in result.trace.configurations[-50:]:
            for pid in fig1.vertices:
                statuses.add(cfg.get(pid, STATUS))
        assert IDLE in statuses or LOOKING in statuses


class TestSpecificationOnCleanStart:
    @pytest.mark.parametrize("fixture", ["fig1", "fig2", "triangle", "two_disjoint"])
    def test_safety_properties(self, fixture, request):
        hypergraph = request.getfixturevalue(fixture)
        algo, result = run_cc1(hypergraph, steps=600, seed=3)
        assert check_exclusion(result.trace, hypergraph).holds
        assert check_synchronization(result.trace, hypergraph).holds
        assert check_essential_discussion(result.trace, hypergraph).holds
        assert check_voluntary_discussion(result.trace, hypergraph).holds

    def test_progress(self, fig1):
        algo, result = run_cc1(fig1, steps=800, seed=5)
        assert check_progress(result.trace, fig1).holds

    def test_probabilistic_requests_still_safe(self, fig1):
        env = ProbabilisticRequestEnvironment(request_probability=0.5, seed=2)
        algo, result = run_cc1(fig1, steps=600, env=env)
        assert check_exclusion(result.trace, fig1).holds
        assert check_synchronization(result.trace, fig1).holds


class TestMaximalConcurrency:
    @pytest.mark.parametrize("fixture", ["fig1", "fig2", "two_disjoint"])
    def test_definition2_holds(self, fixture, request):
        hypergraph = request.getfixturevalue(fixture)
        algo = make_cc1(hypergraph)
        report = check_maximal_concurrency(algo, trials=2, max_steps=2500, seed=4)
        assert report.holds, report.violations

    def test_quiescent_meetings_form_maximal_matching(self, fig3):
        algo = make_cc1(fig3)
        measurement = measure_fair_concurrency(algo, max_steps=3000, seed=2)
        assert measurement.held_is_maximal_matching


class TestTokenHandling:
    def test_useless_token_holder_releases(self, fig1):
        """Over a long run, Token2 executions appear (the maximal-concurrency mechanism)."""
        algo, result = run_cc1(fig1, steps=600, env=InfiniteMeetingEnvironment())
        counts = result.trace.action_counts()
        assert counts.get("Token2", 0) > 0

    def test_token_flag_is_published(self, fig1):
        algo, result = run_cc1(fig1, steps=600)
        counts = result.trace.action_counts()
        assert counts.get("Token1", 0) > 0


class TestSnapStabilization:
    def test_arbitrary_start_is_safe(self, fig1):
        algo = make_cc1(fig1)
        report = snap_stabilization_sweep(
            algo,
            lambda: AlwaysRequestingEnvironment(discussion_steps=1),
            trials=4,
            max_steps=500,
            seed=11,
        )
        assert report.all_hold, report.violations()
        assert report.total_convened_meetings > 0

    def test_arbitrary_start_with_tree_token(self, fig2):
        algo = make_cc1(fig2, token="tree")
        report = snap_stabilization_sweep(
            algo,
            lambda: AlwaysRequestingEnvironment(discussion_steps=1),
            trials=3,
            max_steps=500,
            seed=13,
        )
        assert report.all_hold, report.violations()

    def test_stabilization_actions_fire_after_faults(self, fig1):
        algo, result = run_cc1(fig1, steps=300, arbitrary=True, seed=21)
        counts = result.trace.action_counts()
        # From an arbitrary configuration the correction actions are typically needed.
        assert counts.get("Stab1", 0) + counts.get("Stab2", 0) >= 0  # never crash
        assert check_exclusion(result.trace, fig1).holds

    def test_correct_predicate_closed_under_steps(self, fig1):
        """Lemma 3: once Correct(p) holds it holds forever (checked on a run)."""
        algo = make_cc1(fig1)
        env = AlwaysRequestingEnvironment(discussion_steps=1)
        scheduler = Scheduler(
            algo,
            environment=env,
            daemon=default_daemon(seed=2),
            initial_configuration=algo.arbitrary_configuration(random.Random(5)),
        )
        from repro.kernel.algorithm import ActionContext

        became_correct_at = {}
        for step in range(250):
            cfg = scheduler.configuration
            for pid in fig1.vertices:
                ctx = ActionContext(pid, cfg, env)
                if algo.correct(ctx, pid):
                    became_correct_at.setdefault(pid, step)
                else:
                    assert pid not in became_correct_at, (
                        f"Correct({pid}) held at step {became_correct_at.get(pid)} "
                        f"but is violated at step {step}"
                    )
            if scheduler.step() is None:
                break


class TestFairnessCounts:
    def test_participation_counts_are_collected(self, fig1):
        algo, result = run_cc1(fig1, steps=800, seed=9)
        summary = professor_fairness_counts(result.trace, fig1)
        assert sum(summary.per_professor.values()) > 0
        assert set(summary.per_professor) == set(fig1.vertices)
