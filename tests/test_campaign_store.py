"""Columnar row store, content-addressed run cache, and crash-safe resume.

Three surfaces of ``repro.campaign.store`` and the resume fixes that ship
with it:

* :class:`ColumnStore` round-trips every row shape **byte-identically**
  through typed columns (the exactness overlay keeps off-type values
  verbatim — ``0`` never becomes ``0.0``), and its aggregate queries match
  a row-by-row reference.
* :class:`RunCache` hits are byte-identical to execution, compose with
  ``--jobs``, ``--resume``, ``--engine batched`` and a sharded collector
  campaign, and degrade to misses (never wrong rows) on corrupt or
  identity-mismatched entries.
* The resume path appends instead of rewriting (an interrupt mid-resume
  cannot lose prior completed rows), the final job-order rewrite is atomic
  (a kill mid-rewrite leaves the streamed file intact), and prior
  re-run-appendix rows are reconciled — stale ones re-run, orphans are
  kept and counted.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.campaign import (
    CampaignSpec,
    ColumnStore,
    RunCache,
    expand_jobs,
    run_campaign,
    run_cache_key,
    run_cache_key_for_row,
)
from repro.campaign.sinks import row_line
from repro.cli import main

SPEC = CampaignSpec(
    scenarios=("figure1", "grid-3x3"),
    algorithms=("cc1", "cc2"),
    seeds=(1, 2),
    max_steps=120,
)


@pytest.fixture(scope="module")
def campaign_rows():
    """Eight executed rows (two scenarios x two algorithms x two seeds)."""
    return run_campaign(SPEC, jobs=1).rows


class TestColumnStoreRoundTrip:
    def test_campaign_rows_round_trip_byte_identical(self, campaign_rows):
        store = ColumnStore.from_rows(campaign_rows)
        assert store.lines() == [row_line(row) for row in campaign_rows]
        assert store.rows() == campaign_rows

    def test_error_timed_null_and_offtype_rows(self):
        rows = [
            # error row: no metric fields at all
            {"job": 0, "scenario": "figure1", "status": "error",
             "error": "RuntimeError: boom", "ok": False},
            # timed row with a JSON null and an off-type int in a float column
            {"job": 1, "scenario": "figure1", "status": "ok", "ok": True,
             "grace_steps": None, "steps_per_sec": 812.5, "jain": 1,
             "steps": 40},
            # off-type: bool in an int column, float in an int column
            {"job": 2, "scenario": "grid-3x3", "status": "ok", "ok": True,
             "steps": True, "meetings": 2.0, "jain": 0.5},
            # un-schema'd field: kept exact, absent elsewhere
            {"job": 3, "note": "adhoc", "status": "ok"},
        ]
        store = ColumnStore.from_rows(rows)
        assert store.lines() == [row_line(row) for row in rows]
        # The overlay preserved values, not coercions.
        assert store.row(1)["jain"] == 1 and isinstance(store.row(1)["jain"], int)
        assert store.row(2)["steps"] is True
        assert store.row(2)["meetings"] == 2.0 and isinstance(store.row(2)["meetings"], float)
        assert "note" not in store.row(0)

    def test_rowsink_protocol_and_jsonl_loader(self, campaign_rows, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text("".join(row_line(row) + "\n" for row in campaign_rows))
        store = ColumnStore.from_jsonl(str(path))
        assert len(store) == len(campaign_rows)
        assert store.lines() == [row_line(row) for row in campaign_rows]
        with pytest.raises(IndexError):
            store.row(len(campaign_rows))


class TestColumnStoreAggregates:
    def test_aggregates_match_row_by_row_reference(self, campaign_rows):
        store = ColumnStore.from_rows(campaign_rows)
        assert store.total_steps() == sum(int(r.get("steps", 0)) for r in campaign_rows)
        expected_counts = {}
        for row in campaign_rows:
            expected_counts[str(row["status"])] = (
                expected_counts.get(str(row["status"]), 0) + 1
            )
        assert store.status_counts() == expected_counts
        assert store.violation_count() == sum(
            1 for r in campaign_rows if r["status"] == "violation"
        )
        assert store.error_count() == 0

    def test_cell_stats_shape_and_jain_spread(self, campaign_rows):
        store = ColumnStore.from_rows(campaign_rows)
        cells = store.cell_stats()
        assert [(c["scenario"], c["algorithm"]) for c in cells] == [
            ("figure1", "cc1"), ("figure1", "cc2"),
            ("grid-3x3", "cc1"), ("grid-3x3", "cc2"),
        ]
        for cell in cells:
            members = [
                r for r in campaign_rows
                if (r["scenario"], r["algorithm"]) == (cell["scenario"], cell["algorithm"])
            ]
            assert cell["runs"] == len(members) == 2
            assert cell["steps"] == sum(int(r["steps"]) for r in members)
            jains = [r["jain"] for r in members if isinstance(r["jain"], float)]
            assert cell["jain_min"] == min(jains)
            assert cell["jain_max"] == max(jains)

    def test_error_rows_excluded_from_jain_and_counted(self):
        rows = [
            {"job": 0, "scenario": "s", "algorithm": "a", "status": "ok",
             "steps": 10, "jain": 0.5},
            {"job": 1, "scenario": "s", "algorithm": "a", "status": "error",
             "error": "boom", "ok": False},
            # exact-overlay steps (bool) must not leak into totals
            {"job": 2, "scenario": "s", "algorithm": "a", "status": "violation",
             "steps": 7, "jain": 0.25},
        ]
        store = ColumnStore.from_rows(rows)
        cell = store.cell_stats()[0]
        assert (cell["runs"], cell["violations"], cell["errors"]) == (3, 1, 1)
        assert cell["steps"] == 17
        assert (cell["jain_min"], cell["jain_max"]) == (0.25, 0.5)
        assert store.total_steps() == 17


class TestRunCache:
    def test_hit_is_byte_identical_and_position_independent(self, tmp_path):
        jobs = expand_jobs(SPEC)
        cache = RunCache(str(tmp_path / "cache"))
        baseline = run_campaign(jobs, jobs=1, cache=cache)
        assert cache.stored == len(jobs) and cache.hits == 0
        row = cache.lookup(jobs[0])
        assert row_line(row) == row_line(baseline.rows[0])
        # Same run shape at a different matrix position still hits, with
        # the new index patched in.
        import dataclasses

        moved = dataclasses.replace(jobs[0], index=99)
        hit = cache.lookup(moved)
        assert hit["job"] == 99
        assert {k: v for k, v in hit.items() if k != "job"} == {
            k: v for k, v in row.items() if k != "job"
        }

    def test_key_agrees_between_job_and_row_and_ignores_index(self, campaign_rows):
        jobs = expand_jobs(SPEC)
        assert run_cache_key(jobs[0]) == run_cache_key_for_row(campaign_rows[0])
        assert run_cache_key(jobs[0]) != run_cache_key(jobs[1])

    def test_corrupt_and_mismatched_entries_are_misses(self, tmp_path):
        jobs = expand_jobs(SPEC)[:2]
        cache = RunCache(str(tmp_path / "cache"))
        run_campaign(jobs, jobs=1, cache=cache)
        misses_before = cache.misses  # the cold run's pre-dispatch consults
        # Corrupt entry: unparseable bytes.
        path = cache._path(run_cache_key(jobs[0]))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        assert cache.lookup(jobs[0]) is None
        # Mismatched entry: jobs[1]'s row filed under jobs[0]'s key.
        with open(cache._path(run_cache_key(jobs[1])), "r", encoding="utf-8") as fh:
            other = fh.read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(other)
        assert cache.lookup(jobs[0]) is None
        # Non-dict payload.
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("[1, 2]\n")
        assert cache.lookup(jobs[0]) is None
        assert cache.misses == misses_before + 3 and cache.hits == 0

    def test_error_rows_are_never_stored(self, tmp_path, monkeypatch):
        import repro.campaign.jobs as jobs_module
        import repro.campaign.runner as runner_module

        real_run = jobs_module._run_job

        def boom(job):
            if job.seed == 2:
                raise RuntimeError("induced failure")
            return real_run(job)

        monkeypatch.setattr(jobs_module, "_run_job", boom)
        monkeypatch.setattr(runner_module, "_run_job", boom, raising=False)
        jobs = expand_jobs(SPEC)
        cache = RunCache(str(tmp_path / "cache"))
        result = run_campaign(jobs, jobs=1, cache=cache)
        errors = sum(1 for row in result.rows if row["status"] == "error")
        assert errors == 4
        assert cache.stored == len(jobs) - errors
        # The error jobs miss on re-consult and re-execute.
        rerun = run_campaign(jobs, jobs=1, cache=cache)
        assert cache.hits == len(jobs) - errors
        assert sum(1 for row in rerun.rows if row["status"] == "error") == errors

    def test_fully_cached_campaign_executes_nothing(self, tmp_path, monkeypatch):
        jobs = expand_jobs(SPEC)
        cache = RunCache(str(tmp_path / "cache"))
        baseline = run_campaign(jobs, jobs=1, cache=cache)
        import repro.campaign.driver as driver_module

        monkeypatch.setattr(
            driver_module, "execute_job",
            lambda job: (_ for _ in ()).throw(AssertionError("no job should run")),
        )
        cached = run_campaign(jobs, jobs=1, cache=cache)
        assert cached.jsonl_lines() == baseline.jsonl_lines()
        assert cache.hits == len(jobs)


class TestCacheEndToEnd:
    ARGV = ["campaign", "--scenario", "figure1", "--scenario", "grid-3x3",
            "--algorithm", "cc1", "--algorithm", "cc2",
            "--seeds", "2", "--steps", "120"]

    def _baseline(self, tmp_path, capsys):
        out = tmp_path / "baseline.jsonl"
        assert main(self.ARGV + ["--out", str(out)]) in (0, 1)
        capsys.readouterr()
        return out.read_bytes()

    def test_cache_miss_then_hit_byte_identical(self, capsys, tmp_path):
        expected = self._baseline(tmp_path, capsys)
        cache = tmp_path / "cache"
        cold = tmp_path / "cold.jsonl"
        assert main(self.ARGV + ["--out", str(cold), "--cache", str(cache)]) in (0, 1)
        printed = capsys.readouterr().out
        assert "8 miss(es), 8 row(s) stored" in printed
        assert cold.read_bytes() == expected
        warm = tmp_path / "warm.jsonl"
        assert main(self.ARGV + ["--out", str(warm), "--cache", str(cache)]) in (0, 1)
        printed = capsys.readouterr().out
        assert "8 hit(s), 0 miss(es), 0 row(s) stored" in printed
        assert warm.read_bytes() == expected

    def test_cache_composes_with_workers_and_resume(self, capsys, tmp_path):
        expected = self._baseline(tmp_path, capsys)
        cache = tmp_path / "cache"
        out = tmp_path / "jobs2.jsonl"
        assert main(self.ARGV + ["--out", str(out), "--cache", str(cache),
                                 "--jobs", "2"]) in (0, 1)
        capsys.readouterr()
        assert out.read_bytes() == expected
        # Partial file + cache: the missing rows come from the cache, the
        # result is still byte-identical.
        part = tmp_path / "part.jsonl"
        part.write_bytes(b"".join(expected.splitlines(keepends=True)[:3]))
        assert main(self.ARGV + ["--out", str(part), "--resume",
                                 "--cache", str(cache)]) in (0, 1)
        printed = capsys.readouterr().out
        assert "5 hit(s), 0 miss(es)" in printed
        assert part.read_bytes() == expected

    def test_cache_composes_with_batched_engine(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        argv = self.ARGV + ["--engine", "batched"]
        out = tmp_path / "batched.jsonl"
        cache = tmp_path / "cache"
        assert main(argv + ["--out", str(out), "--cache", str(cache)]) in (0, 1)
        capsys.readouterr()
        expected = out.read_bytes()
        import repro.campaign.runner as runner_module

        warm = tmp_path / "warm.jsonl"
        assert main(argv + ["--out", str(warm), "--cache", str(cache)]) in (0, 1)
        assert "8 hit(s)" in capsys.readouterr().out
        assert warm.read_bytes() == expected

    def test_five_shard_collector_merge_with_caches(self, tmp_path):
        from repro.campaign.shard import Collector, run_shard

        jobs = expand_jobs(SPEC)
        baseline = run_campaign(jobs, jobs=1).jsonl_lines()
        # Warm one shared cache first, then a sharded campaign over it.
        cache = RunCache(str(tmp_path / "cache"))
        run_campaign(jobs[:4], jobs=1, cache=cache)
        with Collector(jobs, "tcp:127.0.0.1:0") as collector:
            threads = [
                threading.Thread(
                    target=run_shard,
                    args=(collector.address, jobs),
                    kwargs=dict(shard=(i, 5), cache=RunCache(str(tmp_path / "cache"))),
                )
                for i in range(5)
            ]
            for thread in threads:
                thread.start()
            rows = collector.run(timeout=60)
            for thread in threads:
                thread.join(timeout=10)
        assert [row_line(row) for row in rows] == baseline
        assert len(collector.state.shards) == 5


class TestResumeCrashSafety:
    ARGV = TestCacheEndToEnd.ARGV

    def test_resume_appends_instead_of_rewriting(self, capsys, tmp_path, monkeypatch):
        """Satellite 1 regression: an interrupt mid-resume keeps prior rows.

        The old code reopened ``--out`` in truncate mode at resume time and
        rewrote the prior rows; a kill between the truncate and the final
        rewrite lost completed work.  Append mode means the prior bytes are
        never touched mid-campaign.
        """
        full = tmp_path / "full.jsonl"
        assert main(self.ARGV + ["--out", str(full)]) in (0, 1)
        capsys.readouterr()
        expected = full.read_bytes()
        lines = expected.splitlines(keepends=True)

        part = tmp_path / "part.jsonl"
        part.write_bytes(b"".join(lines[:3]))
        import repro.campaign.driver as driver_module

        monkeypatch.setattr(
            driver_module, "execute_job",
            lambda job: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        code = main(self.ARGV + ["--out", str(part), "--resume"])
        err = capsys.readouterr().err
        assert code == 130
        assert "rerun with --resume" in err
        # Every previously completed row is still on disk, bytes untouched.
        assert part.read_bytes() == b"".join(lines[:3])

    def test_kill_mid_final_rewrite_loses_no_rows(self, capsys, tmp_path, monkeypatch):
        """Satellite 1, second half: the job-order rewrite is atomic."""
        full = tmp_path / "full.jsonl"
        assert main(self.ARGV + ["--out", str(full)]) in (0, 1)
        capsys.readouterr()
        expected = full.read_bytes()

        out = tmp_path / "rows.jsonl"
        import repro.campaign.runner as runner_module

        real_row_line = runner_module.row_line
        emitted = []

        def dying_row_line(row):
            if len(emitted) == 4:
                raise KeyboardInterrupt()
            line = real_row_line(row)
            emitted.append(line)
            return line

        monkeypatch.setattr(runner_module, "row_line", dying_row_line)
        code = main(self.ARGV + ["--out", str(out)])
        err = capsys.readouterr().err
        assert code == 130
        assert "interrupted during the final rewrite" in err
        # The completion-order stream survived the kill whole...
        streamed = out.read_bytes()
        assert sorted(streamed.splitlines()) == sorted(expected.splitlines())
        monkeypatch.setattr(runner_module, "row_line", real_row_line)
        # ...so a resume executes nothing and lands byte-identical.
        import repro.campaign.driver as driver_module

        monkeypatch.setattr(
            driver_module, "execute_job",
            lambda job: (_ for _ in ()).throw(AssertionError("no job should run")),
        )
        assert main(self.ARGV + ["--out", str(out), "--resume"]) in (0, 1)
        capsys.readouterr()
        assert out.read_bytes() == expected


class TestRerunRowReconciliation:
    ARGV = ["campaign", "--scenario", "figure1", "--algorithm", "cc2",
            "--faults", "40:0.3", "--seed", "3", "--seeds", "3",
            "--steps", "200", "--rerun-disagreements"]

    def _disagreement_file(self, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        assert main(self.ARGV + ["--out", str(out)]) == 1
        capsys.readouterr()
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 6  # 3 base + 3 fresh-seed re-runs
        return out, rows

    def test_tampered_extra_row_is_re_run_on_resume(self, capsys, tmp_path):
        """Satellite 2 regression: prior re-run rows are identity-validated.

        The old resume path never validated rows at indices beyond the base
        matrix — a stale or corrupted appendix row silently stood in for a
        regenerated re-run job.  Now it is detected, warned about and
        re-executed.
        """
        out, rows = self._disagreement_file(tmp_path, capsys)
        expected = out.read_bytes()
        tampered = dict(rows[4])
        tampered["seed"] = 999  # no regenerated re-run job has this seed
        out.write_text(
            "".join(row_line(r) + "\n" for r in rows[:4] + [tampered] + rows[5:])
        )
        code = main(self.ARGV + ["--out", str(out), "--resume"])
        captured = capsys.readouterr()
        assert code == 1
        assert "stale disagreement set" in captured.err
        assert out.read_bytes() == expected  # the stale row was re-executed

    def test_intact_extra_rows_resume_without_execution(
        self, capsys, tmp_path, monkeypatch
    ):
        out, _ = self._disagreement_file(tmp_path, capsys)
        expected = out.read_bytes()
        import repro.campaign.driver as driver_module

        monkeypatch.setattr(
            driver_module, "execute_job",
            lambda job: (_ for _ in ()).throw(AssertionError("no job should run")),
        )
        code = main(self.ARGV + ["--out", str(out), "--resume"])
        captured = capsys.readouterr()
        assert code == 1
        assert "stale disagreement set" not in captured.err
        assert out.read_bytes() == expected

    def test_orphan_rerun_rows_are_kept_and_counted(self, capsys, tmp_path):
        """Satellite 3: plain resume keeps the appendix rows, with a warning."""
        out, rows = self._disagreement_file(tmp_path, capsys)
        expected = out.read_bytes()
        # Plain --resume (no --rerun-disagreements): the 3 appendix rows
        # cannot be validated, but they are completed work — kept, counted
        # in the summary, and called out on stderr.
        argv = [a for a in self.ARGV if a != "--rerun-disagreements"]
        code = main(argv + ["--out", str(out), "--resume"])
        captured = capsys.readouterr()
        assert code == 1
        assert "keeping 3 re-run row(s) beyond the 3-job matrix" in captured.err
        assert "pass --rerun-disagreements to validate them" in captured.err
        assert "6 runs" in captured.out  # summary counts all six rows
        assert out.read_bytes() == expected


class TestStatsSubcommand:
    def test_stats_table_and_exit_codes(self, capsys, tmp_path, campaign_rows):
        path = tmp_path / "rows.jsonl"
        path.write_text("".join(row_line(row) + "\n" for row in campaign_rows))
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"Stats: {len(campaign_rows)} rows from {path}" in out
        assert "figure1" in out and "grid-3x3" in out and "TOTAL" in out
        # Missing and empty files exit 2.
        assert main(["stats", str(tmp_path / "absent.jsonl")]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 2
        capsys.readouterr()
