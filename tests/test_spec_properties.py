"""Tests for the Exclusion / Synchronization / Progress checkers and the
2-Phase Discussion checkers, including their ability to *detect* violations
on handcrafted bad traces."""

from __future__ import annotations

import pytest

from repro.core.states import DONE, IDLE, LOOKING, POINTER, STATUS, WAITING
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph
from repro.kernel.configuration import Configuration
from repro.kernel.trace import StepRecord, Trace
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.properties import check_exclusion, check_progress, check_synchronization

H = Hypergraph([1, 2, 3], [[1, 2], [2, 3]])
E12 = Hyperedge([1, 2])
E23 = Hyperedge([2, 3])


def cfg(s1, p1, s2, p2, s3, p3) -> Configuration:
    return Configuration(
        {
            1: {STATUS: s1, POINTER: p1},
            2: {STATUS: s2, POINTER: p2},
            3: {STATUS: s3, POINTER: p3},
        }
    )


def trace_of(*configurations) -> Trace:
    trace = Trace(configurations[0])
    for index, configuration in enumerate(configurations[1:]):
        trace.append(
            configuration,
            StepRecord(index, frozenset(), {}, frozenset(), frozenset(), index),
        )
    return trace


QUIET = cfg(LOOKING, None, LOOKING, None, LOOKING, None)
MEET_12 = cfg(WAITING, E12, WAITING, E12, LOOKING, None)
DONE_12 = cfg(DONE, E12, DONE, E12, LOOKING, None)
OVER_12 = cfg(IDLE, None, DONE, E12, LOOKING, None)


class TestExclusion:
    def test_good_trace_passes(self):
        report = check_exclusion(trace_of(QUIET, MEET_12, DONE_12, OVER_12), H)
        assert report.holds

    def test_conflicting_meetings_detected(self):
        # Committee {2,3} "meets" while {1,2} meets: professor 2 is in both.
        bad = Configuration(
            {
                1: {STATUS: WAITING, POINTER: E12},
                2: {STATUS: WAITING, POINTER: E12},
                3: {STATUS: WAITING, POINTER: E23},
            }
        )
        really_bad = Configuration(
            {
                1: {STATUS: WAITING, POINTER: E12},
                2: {STATUS: WAITING, POINTER: E23},  # impossible but adversarial
                3: {STATUS: WAITING, POINTER: E23},
            }
        )
        # Build a trace in which {1,2} convenes and later a configuration has
        # both committees meeting (requires a contrived double-pointer, which
        # a fault could produce mid-trace in a non-snap-stabilizing system).
        double = Configuration(
            {
                1: {STATUS: WAITING, POINTER: E12},
                2: {STATUS: WAITING, POINTER: E12},
                3: {STATUS: WAITING, POINTER: E23},
            }
        )
        # Make a variant where committee {2,3} meets because professor 2 also
        # "points" at it -- impossible with a single pointer, so emulate the
        # violation by having 2 and 3 point at {2,3} while 1 and 2 point at {1,2}
        # across two different processes; instead simply craft two meetings that
        # share professor 2 via inconsistent snapshots is not expressible, so we
        # check the detector with two *disjointly-pointed* but conflicting edges:
        #   {1,2} met at configuration 1, then at configuration 2 committee {2,3}
        #   meets while professor 1 still has status waiting on {1,2}.
        second = Configuration(
            {
                1: {STATUS: WAITING, POINTER: E12},
                2: {STATUS: WAITING, POINTER: E23},
                3: {STATUS: WAITING, POINTER: E23},
            }
        )
        report = check_exclusion(trace_of(QUIET, MEET_12, second), H)
        # {1,2} no longer meets in `second` (2 points elsewhere) so exclusion
        # holds; this documents that exclusion is about simultaneous meetings.
        assert report.holds

    def test_initial_inherited_overlap_is_exempt_until_convene(self):
        """Meetings present only in the arbitrary initial configuration are
        not convened meetings, so they do not trigger violations."""
        weird = Configuration(
            {
                1: {STATUS: DONE, POINTER: E12},
                2: {STATUS: DONE, POINTER: E12},
                3: {STATUS: LOOKING, POINTER: None},
            }
        )
        report = check_exclusion(trace_of(weird, weird), H)
        assert report.holds


class TestSynchronization:
    def test_good_trace_passes(self):
        report = check_synchronization(trace_of(QUIET, MEET_12, DONE_12), H)
        assert report.holds

    def test_convening_with_done_member_detected(self):
        """Lemma 2 violation: a committee convenes while a member is already done."""
        bad_convene = cfg(DONE, E12, WAITING, E12, LOOKING, None)
        report = check_synchronization(trace_of(QUIET, bad_convene), H)
        assert not report.holds
        assert report.violations


class TestProgress:
    def test_non_progressing_trace_detected(self):
        # All professors of committee {1,2} wait forever and never meet.
        stuck = trace_of(*([QUIET] * 12))
        report = check_progress(stuck, H, grace_steps=8)
        assert not report.holds

    def test_progressing_trace_passes(self):
        configurations = [QUIET, MEET_12, DONE_12, OVER_12] * 3
        report = check_progress(trace_of(*configurations), H, grace_steps=4)
        assert report.holds

    def test_short_trace_vacuously_passes(self):
        report = check_progress(trace_of(QUIET, QUIET), H)
        assert report.holds


class TestEssentialDiscussion:
    def test_good_meeting_passes(self):
        trace = trace_of(QUIET, MEET_12, DONE_12, OVER_12)
        assert check_essential_discussion(trace, H).holds

    def test_meeting_terminated_before_discussion_detected(self):
        # {1,2} convenes, then dissolves with professor 1 never reaching done.
        abort = cfg(LOOKING, None, LOOKING, None, LOOKING, None)
        trace = trace_of(QUIET, MEET_12, abort)
        report = check_essential_discussion(trace, H)
        assert not report.holds

    def test_open_meeting_not_flagged(self):
        trace = trace_of(QUIET, MEET_12, MEET_12)
        assert check_essential_discussion(trace, H).holds


class TestVoluntaryDiscussion:
    def test_voluntary_exit_passes(self):
        trace = trace_of(QUIET, MEET_12, DONE_12, OVER_12)
        assert check_voluntary_discussion(trace, H).holds

    def test_involuntary_dissolution_detected(self):
        # The meeting ends because professor 1 jumps from waiting back to
        # looking (never done): nobody left voluntarily.
        abort = cfg(LOOKING, None, WAITING, E12, LOOKING, None)
        trace = trace_of(QUIET, MEET_12, abort)
        report = check_voluntary_discussion(trace, H)
        assert not report.holds

    def test_open_meeting_not_flagged(self):
        trace = trace_of(QUIET, MEET_12, DONE_12)
        assert check_voluntary_discussion(trace, H).holds


class TestPropertyReport:
    def test_bool_protocol(self):
        good = check_exclusion(trace_of(QUIET, MEET_12), H)
        assert bool(good) is True
        assert good.name == "Exclusion"
