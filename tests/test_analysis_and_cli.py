"""Tests for the analysis helpers, report formatting, and the CLI."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table, series_to_rows
from repro.analysis.theory import TheoreticalBounds, bounds_for
from repro.cli import build_parser, main
from repro.hypergraph.generators import figure1_hypergraph, figure2_hypergraph, path_of_committees


class TestTheoreticalBounds:
    def test_bounds_for_figure1(self):
        bounds = bounds_for(figure1_hypergraph())
        assert bounds.cc2_degree_lower_bound >= 1
        assert bounds.cc3_degree_lower_bound >= 1
        assert bounds.theorem5_holds
        assert bounds.theorem8_holds

    def test_bounds_for_figure2(self):
        bounds = bounds_for(figure2_hypergraph())
        assert bounds.analysis.min_mm == 1
        assert bounds.analysis.max_min == 3

    def test_waiting_time_reference(self):
        bounds = bounds_for(path_of_committees(3))
        assert bounds.waiting_time_bound_rounds(n=10, max_disc=2, constant=4.0) == 80.0

    def test_as_row_contains_theorem_flags(self):
        row = bounds_for(figure2_hypergraph()).as_row()
        assert row["thm5_holds"] is True
        assert row["thm8_holds"] is True


class TestReportFormatting:
    def test_format_table_basic(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, title="T")
        assert "## T" in text
        assert "| a " in text and "| 22" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_table_missing_keys_render_blank(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows)
        assert "| 3" in text

    def test_series_to_rows(self):
        rows = series_to_rows({"x": {"v": 1}, "y": {"v": 2}}, key_name="k")
        assert rows[0] == {"k": "x", "v": 1}
        assert rows[1]["v"] == 2


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--scenario", "figure1", "--steps", "10"])
        assert args.scenario == "figure1"

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out

    def test_bounds_command(self, capsys):
        assert main(["bounds", "--scenario", "figure2-impossibility"]) == 0
        out = capsys.readouterr().out
        assert "minMM" in out

    def test_run_command(self, capsys):
        assert main(["run", "--scenario", "figure1", "--algorithm", "cc1", "--steps", "200"]) == 0
        out = capsys.readouterr().out
        assert "CC1 on figure1" in out

    def test_run_command_verbose_and_arbitrary(self, capsys):
        code = main([
            "run", "--scenario", "figure2-impossibility", "--algorithm", "cc2",
            "--steps", "200", "--arbitrary", "--verbose",
        ])
        assert code == 0
        assert "convene" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", "--scenario", "figure2-impossibility", "--steps", "300", "--rounds", "100"]) == 0
        out = capsys.readouterr().out
        assert "kumar-tokens" in out and "cc3" in out
