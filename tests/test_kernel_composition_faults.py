"""Tests for fair composition and the transient-fault helpers."""

from __future__ import annotations

import random
from typing import Any, Dict, Sequence, Tuple

import pytest

from repro.kernel.algorithm import Action, ActionContext, DistributedAlgorithm
from repro.kernel.composition import FairComposition, namespaced_action
from repro.kernel.configuration import Configuration
from repro.kernel.daemon import SynchronousDaemon
from repro.kernel.faults import FaultInjector, arbitrary_configuration
from repro.kernel.scheduler import Scheduler


class TinyCounter(DistributedAlgorithm):
    """Single-variable counter bounded by ``limit`` (used as a composition component)."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def process_ids(self) -> Tuple[int, ...]:
        return (1, 2)

    def initial_state(self, pid: int) -> Dict[str, Any]:
        return {"c": 0}

    def arbitrary_state(self, pid: int, rng: Any) -> Dict[str, Any]:
        return {"c": rng.randrange(self.limit + 1)}

    def actions(self, pid: int) -> Sequence[Action]:
        return (
            Action(
                "inc",
                lambda ctx: ctx.own("c") < self.limit,
                lambda ctx: ctx.write("c", ctx.own("c") + 1),
            ),
        )


class TestFairComposition:
    def test_variables_are_namespaced(self):
        composed = FairComposition([("a", TinyCounter(2)), ("b", TinyCounter(4))])
        state = composed.initial_state(1)
        assert state == {"a.c": 0, "b.c": 0}

    def test_both_components_progress(self):
        composed = FairComposition([("a", TinyCounter(2)), ("b", TinyCounter(4))])
        scheduler = Scheduler(composed, daemon=SynchronousDaemon())
        result = scheduler.run(max_steps=50)
        assert result.terminated
        assert result.final.get(1, "a.c") == 2
        assert result.final.get(1, "b.c") == 4

    def test_action_labels_are_prefixed(self):
        composed = FairComposition([("a", TinyCounter(1)), ("b", TinyCounter(1))])
        labels = [action.label for action in composed.actions(1)]
        assert labels == ["a.inc", "b.inc"]

    def test_component_lookup(self):
        counter = TinyCounter(2)
        composed = FairComposition([("a", counter)])
        assert composed.component("a") is counter
        with pytest.raises(KeyError):
            composed.component("zzz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FairComposition([("a", TinyCounter(1)), ("a", TinyCounter(2))])

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            FairComposition([])

    def test_mismatched_process_sets_rejected(self):
        class OtherIds(TinyCounter):
            def process_ids(self):
                return (1, 2, 3)

        with pytest.raises(ValueError):
            FairComposition([("a", TinyCounter(1)), ("b", OtherIds(1))])

    def test_namespaced_action_reads_prefixed_variables(self):
        base = Action(
            "probe",
            lambda ctx: ctx.own("c") == 7,
            lambda ctx: ctx.write("c", 0),
        )
        wrapped = namespaced_action(base, "x.")
        cfg = Configuration({1: {"x.c": 7}})
        ctx = ActionContext(1, cfg, None)  # type: ignore[arg-type]
        assert wrapped.enabled(ctx)
        wrapped.execute(ctx)
        assert ctx.writes == {"x.c": 0}


class TestFaults:
    def test_arbitrary_configuration_respects_domains(self):
        algo = TinyCounter(3)
        cfg = arbitrary_configuration(algo, seed=1)
        for pid in algo.process_ids():
            assert 0 <= cfg.get(pid, "c") <= 3

    def test_arbitrary_configuration_is_reproducible(self):
        algo = TinyCounter(5)
        assert arbitrary_configuration(algo, seed=7) == arbitrary_configuration(algo, seed=7)

    def test_fault_injector_corrupts_some_processes(self):
        algo = TinyCounter(100)
        clean = algo.initial_configuration()
        injector = FaultInjector(algo, fraction=1.0, seed=5)
        corrupted = injector.corrupt(clean)
        assert corrupted != clean

    def test_fault_injector_targeted_victims(self):
        algo = TinyCounter(100)
        clean = algo.initial_configuration()
        injector = FaultInjector(algo, fraction=0.0, seed=5)
        corrupted = injector.corrupt(clean, victims=[2])
        assert corrupted.get(1, "c") == 0  # untouched

    def test_fault_injector_variable_override(self):
        algo = TinyCounter(10)
        clean = algo.initial_configuration()
        injector = FaultInjector(algo, seed=5)
        corrupted = injector.corrupt_variables(clean, 1, {"c": 9})
        assert corrupted.get(1, "c") == 9
        assert corrupted.get(2, "c") == 0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(TinyCounter(1), fraction=1.5)
