"""Unit tests for the hypergraph model (Section 2.1)."""

from __future__ import annotations

import pytest

from repro.hypergraph.generators import figure1_communication_edges, figure1_hypergraph
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph


class TestHyperedge:
    def test_members_are_sorted_and_deduplicated(self):
        edge = Hyperedge([3, 1, 2, 1])
        assert edge.members == (1, 2, 3)

    def test_size(self):
        assert Hyperedge([4, 7]).size == 2

    def test_contains(self):
        edge = Hyperedge([1, 2, 3])
        assert 2 in edge
        assert 9 not in edge

    def test_iteration_order(self):
        assert list(Hyperedge([5, 2, 9])) == [2, 5, 9]

    def test_equality_and_hash(self):
        assert Hyperedge([1, 2]) == Hyperedge([2, 1])
        assert hash(Hyperedge([1, 2])) == hash(Hyperedge([2, 1]))

    def test_ordering_is_deterministic(self):
        assert sorted([Hyperedge([2, 3]), Hyperedge([1, 5])])[0] == Hyperedge([1, 5])

    def test_intersects(self):
        assert Hyperedge([1, 2]).intersects(Hyperedge([2, 3]))
        assert not Hyperedge([1, 2]).intersects(Hyperedge([3, 4]))

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError):
            Hyperedge([])

    def test_as_set(self):
        assert Hyperedge([1, 2]).as_set() == frozenset({1, 2})


class TestHypergraphBasics:
    def test_vertices_sorted(self):
        h = Hypergraph([3, 1, 2], [[1, 2]])
        assert h.vertices == (1, 2, 3)

    def test_n_and_m(self):
        h = figure1_hypergraph()
        assert h.n == 6
        assert h.m == 5

    def test_duplicate_edges_collapsed(self):
        h = Hypergraph([1, 2, 3], [[1, 2], [2, 1], [2, 3]])
        assert h.m == 2

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph([1, 2], [[1, 3]])

    def test_empty_vertex_set_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph([], [])

    def test_contains_vertex_and_edge(self):
        h = Hypergraph([1, 2, 3], [[1, 2]])
        assert 1 in h
        assert Hyperedge([1, 2]) in h
        assert Hyperedge([2, 3]) not in h

    def test_equality_and_hash(self):
        a = Hypergraph([1, 2], [[1, 2]])
        b = Hypergraph([2, 1], [[2, 1]])
        assert a == b
        assert hash(a) == hash(b)

    def test_to_from_dict_roundtrip(self):
        h = figure1_hypergraph()
        assert Hypergraph.from_dict(h.to_dict()) == h


class TestIncidenceAndNeighbours:
    def test_incident_edges_of_figure1(self):
        h = figure1_hypergraph()
        incident = {tuple(e.members) for e in h.incident_edges(2)}
        assert incident == {(1, 2), (1, 2, 3, 4), (2, 4, 5)}

    def test_neighbors_of_figure1_vertex4(self):
        h = figure1_hypergraph()
        assert h.neighbors(4) == (1, 2, 3, 5, 6)

    def test_degree(self):
        h = figure1_hypergraph()
        assert h.degree(6) == 2
        assert h.degree(5) == 1

    def test_min_incident_size(self):
        h = figure1_hypergraph()
        assert h.min_incident_size(1) == 2   # {1,2}
        assert h.min_incident_size(5) == 3   # only {2,4,5}

    def test_min_incident_edges(self):
        h = figure1_hypergraph()
        assert {tuple(e.members) for e in h.min_incident_edges(4)} == {(4, 6)}

    def test_min_incident_size_of_isolated_vertex_raises(self):
        h = Hypergraph([1, 2, 3], [[1, 2]])
        with pytest.raises(ValueError):
            h.min_incident_size(3)

    def test_conflicting(self):
        h = figure1_hypergraph()
        a = Hyperedge([1, 2])
        b = Hyperedge([2, 4, 5])
        c = Hyperedge([3, 6])
        assert h.conflicting(a, b)
        assert not h.conflicting(a, c)


class TestCommunicationNetwork:
    def test_figure1_underlying_network_matches_paper(self):
        """The paper lists the exact edge set of G_H in Figure 1(b)."""
        h = figure1_hypergraph()
        assert h.communication_edges() == tuple(sorted(figure1_communication_edges()))

    def test_adjacency_is_symmetric(self):
        h = figure1_hypergraph()
        adjacency = h.communication_adjacency()
        for v, neighbours in adjacency.items():
            for u in neighbours:
                assert v in adjacency[u]

    def test_connectedness_of_paper_topologies(self):
        assert figure1_hypergraph().is_connected()

    def test_disconnected_hypergraph(self):
        h = Hypergraph([1, 2, 3, 4], [[1, 2], [3, 4]])
        assert not h.is_connected()
        assert h.connected_components() == [(1, 2), (3, 4)]

    def test_single_vertex_is_connected(self):
        assert Hypergraph([1], [[1]]).is_connected()


class TestDerivedStructure:
    def test_induced_subhypergraph_drops_touched_edges(self):
        h = figure1_hypergraph()
        sub = h.induced_subhypergraph([2])
        assert 2 not in sub.vertices
        # Every committee containing professor 2 is gone.
        assert {tuple(e.members) for e in sub.hyperedges} == {(3, 6), (4, 6)}

    def test_induced_subhypergraph_empty_rejected(self):
        h = Hypergraph([1, 2], [[1, 2]])
        with pytest.raises(ValueError):
            h.induced_subhypergraph([1, 2])

    def test_bfs_spanning_tree_covers_component(self):
        h = figure1_hypergraph()
        parent = h.bfs_spanning_tree(6)
        assert set(parent) == set(h.vertices)
        assert parent[6] == 6
        # Every non-root's parent is a communication neighbour.
        for child, par in parent.items():
            if child != par:
                assert par in h.neighbors(child)

    def test_bfs_spanning_tree_unknown_root(self):
        h = figure1_hypergraph()
        with pytest.raises(ValueError):
            h.bfs_spanning_tree(99)
