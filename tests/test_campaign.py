"""Tests for the campaign engine: matrix expansion, determinism, aggregation.

The parallel-execution acceptance property — ``--jobs N`` produces
byte-identical aggregate JSONL rows to ``--jobs 1`` — is asserted here with
a real ``multiprocessing`` pool (spawn context), sized to stay tier-1-fast.
Wall-clock *speedup* is a hardware property and is measured by
``benchmarks/bench_campaign.py`` instead.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.campaign import (
    CampaignSpec,
    FaultSchedule,
    RunJob,
    SPAWN_ENTRY_POINTS,
    execute_job,
    expand_jobs,
    run_campaign,
)
from repro.workloads.random_scenarios import (
    RandomScenarioSpec,
    random_scenario,
    random_scenarios,
)


def _small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        scenarios=("figure1",),
        random_count=2,
        algorithms=("cc1", "cc2"),
        seeds=(1, 2),
        max_steps=120,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestRandomScenarios:
    def test_same_seed_same_spec(self):
        assert random_scenario(7) == random_scenario(7)
        assert random_scenarios(5, base_seed=3) == random_scenarios(5, base_seed=3)

    def test_specs_are_diverse(self):
        specs = random_scenarios(40)
        assert len({s.topology for s in specs}) >= 4
        assert len({s.environment for s in specs}) == 3
        assert len({s.token for s in specs}) == 3
        assert any(s.daemon == "synchronous" for s in specs)
        assert any(s.arbitrary_start for s in specs)
        assert any(s.fault_every for s in specs)
        assert any(not s.fault_every for s in specs)

    def test_builders_produce_runnable_objects(self):
        for seed in range(8):
            spec = random_scenario(seed)
            hypergraph = spec.build_hypergraph()
            assert hypergraph.n >= 2 and hypergraph.m >= 1
            # Rebuilding yields an identical topology (determinism).
            again = spec.build_hypergraph()
            assert tuple(e.members for e in hypergraph.hyperedges) == tuple(
                e.members for e in again.hyperedges
            )
            spec.build_environment()
            spec.build_daemon(seed=1)

    def test_specs_pickle_roundtrip(self):
        spec = random_scenario(11)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestFaultSchedule:
    def test_parse_none(self):
        assert FaultSchedule.parse("none") == FaultSchedule()
        assert FaultSchedule.parse("none").name == "none"

    def test_parse_every_fraction(self):
        schedule = FaultSchedule.parse("50:0.4")
        assert schedule.every == 50 and schedule.fraction == 0.4
        assert "50" in schedule.name

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="fault schedule"):
            FaultSchedule.parse("soon")
        with pytest.raises(ValueError):
            FaultSchedule(every=-1)
        with pytest.raises(ValueError):
            FaultSchedule(every=5, fraction=0.0)

    def test_parse_format_errors_name_the_expected_shape(self):
        # "50:" is malformed (empty fraction): the format message applies.
        with pytest.raises(ValueError, match="expected 'none' or 'EVERY:FRACTION'"):
            FaultSchedule.parse("50:")

    def test_parse_range_errors_keep_their_own_message(self):
        # "-5:0.5" and "50:1.5" are well-formed; their *values* are out of
        # range, so __post_init__'s specific message must propagate instead
        # of being masked as a format error.
        with pytest.raises(ValueError, match="every must be >= 0"):
            FaultSchedule.parse("-5:0.5")
        with pytest.raises(ValueError, match=r"fraction must be in \(0, 1\]"):
            FaultSchedule.parse("50:1.5")


class TestMatrixExpansion:
    def test_cross_product_size_and_indices(self):
        spec = CampaignSpec(
            scenarios=("figure1", "grid-3x3"),
            algorithms=("cc1", "cc2", "cc3"),
            engines=("dense", "incremental"),
            faults=(FaultSchedule(), FaultSchedule(every=30, fraction=0.5)),
            seeds=(1, 2, 3),
            max_steps=50,
        )
        jobs = expand_jobs(spec)
        assert len(jobs) == 2 * 3 * 2 * 2 * 3
        assert [job.index for job in jobs] == list(range(len(jobs)))

    def test_random_scenarios_carry_their_own_dimensions(self):
        spec = CampaignSpec(
            random_count=3,
            random_base_seed=5,
            algorithms=("cc2",),
            seeds=(1,),
            max_steps=50,
        )
        jobs = expand_jobs(spec)
        assert len(jobs) == 3
        for job, drawn in zip(jobs, random_scenarios(3, base_seed=5)):
            assert job.random_seed == drawn.seed
            assert job.scenario == drawn.name
            assert job.token == drawn.token
            assert job.daemon == drawn.daemon
            assert job.fault_every == drawn.fault_every
            assert job.arbitrary_start == drawn.arbitrary_start

    def test_unknown_scenario_fails_at_spec_construction(self):
        with pytest.raises(KeyError):
            CampaignSpec(scenarios=("no-such-scenario",), max_steps=10)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="needs named scenarios"):
            CampaignSpec(scenarios=(), random_count=0)
        with pytest.raises(ValueError, match="environment spec"):
            CampaignSpec(scenarios=("figure1",), environment="warp")
        with pytest.raises(ValueError, match="environment spec"):
            CampaignSpec(scenarios=("figure1",), environment="probabilistic:abc")
        with pytest.raises(ValueError, match="unknown algorithm"):
            CampaignSpec(scenarios=("figure1",), algorithms=("cc9",))
        with pytest.raises(ValueError, match="unknown engine"):
            CampaignSpec(scenarios=("figure1",), engines=("warp",))
        with pytest.raises(ValueError, match="unknown daemon"):
            CampaignSpec(scenarios=("figure1",), daemons=("chaotic",))

    def test_jobs_pickle_roundtrip(self):
        for job in expand_jobs(_small_spec()):
            assert pickle.loads(pickle.dumps(job)) == job


class TestExecuteJob:
    def test_row_is_deterministic(self):
        job = expand_jobs(_small_spec())[0]
        first = execute_job(job)
        second = execute_job(job)
        assert first.row == second.row
        assert first.steps == second.steps

    def test_row_reports_verdicts_and_metrics(self):
        job = expand_jobs(_small_spec())[0]
        row = execute_job(job).row
        for key in (
            "job", "scenario", "algorithm", "engine", "daemon", "seed",
            "steps", "rounds", "stop_reason", "meetings", "mean_conc",
            "jain", "exclusion", "synchronization", "progress",
            "essential_discussion", "voluntary_discussion", "violations", "ok",
        ):
            assert key in row, key

    def test_progress_only_failure_sets_first_violation(self):
        # Too short for every star committee to meet + a tiny grace window:
        # Progress fails without any safety violation, and the row must
        # still carry the violation's index (not null).
        spec = CampaignSpec(
            scenarios=("star-5",),
            algorithms=("cc1",),
            seeds=(1,),
            max_steps=6,
            grace_steps=2,
        )
        row = execute_job(expand_jobs(spec)[0]).row
        assert row["progress"] is False
        assert row["exclusion"] is True and row["synchronization"] is True
        assert row["violations"] > 0
        assert row["first_violation"] is not None

    def test_fault_jobs_detect_violations(self):
        # A heavily corrupted run must be flagged: the campaign exists to
        # surface violations, so at least this adversarial cell fails.
        spec = CampaignSpec(
            scenarios=("figure1",),
            algorithms=("cc2",),
            faults=(FaultSchedule(every=7, fraction=0.8),),
            seeds=(0,),
            max_steps=200,
        )
        result = execute_job(expand_jobs(spec)[0])
        assert not result.ok
        assert result.row["violations"] > 0


class TestRunCampaign:
    def test_serial_results_in_job_order(self):
        result = run_campaign(_small_spec(), jobs=1)
        assert [r.index for r in result.results] == list(range(len(result.jobs)))
        assert result.workers == 1

    def test_parallel_rows_byte_identical_to_serial(self):
        # The acceptance property: a spawn-context pool with several workers
        # produces exactly the same aggregate JSONL bytes as the serial run.
        spec = _small_spec()
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=2)
        assert parallel.workers == 2
        assert serial.jsonl_lines() == parallel.jsonl_lines()

    def test_jsonl_rows_parse_and_sort_keys(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        result = run_campaign(_small_spec(), jobs=1)
        result.write_jsonl(str(out))
        lines = out.read_text().splitlines()
        assert len(lines) == len(result.jobs)
        for line in lines:
            row = json.loads(line)
            assert json.dumps(row, sort_keys=True) == line
            assert "steps_per_sec" not in row  # timing is opt-in

    def test_timing_rows_are_opt_in(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        result = run_campaign(_small_spec(scenarios=("figure1",), random_count=0), jobs=1)
        result.write_jsonl(str(out), include_timing=True)
        row = json.loads(out.read_text().splitlines()[0])
        assert row["steps_per_sec"] > 0

    def test_summary_rows_aggregate_cells(self):
        result = run_campaign(_small_spec(), jobs=1)
        rows = result.summary_rows()
        assert rows[-1]["scenario"] == "TOTAL"
        assert rows[-1]["runs"] == len(result.jobs)
        assert sum(r["runs"] for r in rows[:-1]) == len(result.jobs)
        assert sum(r["violations"] for r in rows[:-1]) == result.violations

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="jobs"):
            run_campaign(_small_spec(), jobs=0)

    def test_progress_callback_sees_every_job(self):
        seen = []
        run_campaign(
            _small_spec(random_count=0, seeds=(1,)),
            jobs=1,
            progress=lambda result, done, total: seen.append((result.index, done, total)),
        )
        assert len(seen) == 2  # cc1 + cc2 on figure1
        assert all(total == 2 for _, _, total in seen)


class TestSpawnSafety:
    def test_entry_points_are_spawn_resolvable(self):
        # Mirrors tools/check_repo.py: the worker entry point must be a
        # module-top-level callable that pickle round-trips by reference.
        import importlib

        for dotted in SPAWN_ENTRY_POINTS:
            module_name, _, attr = dotted.rpartition(".")
            module = importlib.import_module(module_name)
            func = getattr(module, attr)
            assert callable(func)
            assert pickle.loads(pickle.dumps(func)) is func

    def test_runjob_defaults_match_named_scenario_contract(self):
        job = expand_jobs(CampaignSpec(scenarios=("figure1",), max_steps=10))[0]
        assert job.random_seed is None
        assert job.build_hypergraph().n == 6
