"""End-to-end CLI tests: every subcommand driven through ``main()``.

The unit tests in ``test_analysis_and_cli.py`` cover parsing and table
shapes; these tests exercise the full pipelines — including the campaign
subcommand's worker pool, JSONL output files and exit codes on
violation/clean runs — exactly the way a shell invocation would.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.kernel.batched import numpy_available


class TestRunEndToEnd:
    def test_run_exit_zero_and_metrics_table(self, capsys):
        assert main(["run", "--scenario", "grid-3x3", "--algorithm", "cc3",
                     "--steps", "300", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "CC3 on grid-3x3" in out
        assert "meetings" in out

    def test_run_engines_report_identical_metrics(self, capsys):
        argv = ["run", "--scenario", "figure1", "--algorithm", "cc2",
                "--steps", "250", "--seed", "3"]
        assert main(argv + ["--engine", "dense"]) == 0
        dense_out = capsys.readouterr().out
        assert main(argv + ["--engine", "incremental"]) == 0
        incremental_out = capsys.readouterr().out
        assert dense_out == incremental_out

    def test_run_unknown_scenario_raises_key_error(self):
        with pytest.raises(KeyError):
            main(["run", "--scenario", "no-such-scenario"])


class TestCheckEndToEnd:
    def test_clean_check_exits_zero(self, capsys):
        assert main(["check", "--scenario", "figure1", "--algorithm", "cc2",
                     "--sparse", "--steps", "500"]) == 0
        assert "Exclusion" in capsys.readouterr().out

    def test_violation_drives_exit_one(self, capsys):
        # Too short for every star committee to meet + a tiny grace window:
        # Progress fails deterministically (same construction as docs/CLI.md).
        code = main(["check", "--scenario", "star-5", "--algorithm", "cc1",
                     "--steps", "6", "--grace", "2"])
        assert code == 1
        assert "Progress" in capsys.readouterr().out

    def test_discussion_spec_rows_appear(self, capsys):
        assert main(["check", "--scenario", "figure1", "--algorithm", "cc2",
                     "--sparse", "--steps", "400", "--discussion-spec"]) == 0
        out = capsys.readouterr().out
        assert "EssentialDiscussion" in out
        assert "VoluntaryDiscussion" in out


class TestCompareEndToEnd:
    def test_compare_exits_zero_with_all_contenders(self, capsys):
        assert main(["compare", "--scenario", "figure1",
                     "--steps", "200", "--rounds", "60"]) == 0
        out = capsys.readouterr().out
        for name in ("cc1", "cc2", "cc3", "centralized-greedy", "kumar-tokens"):
            assert name in out


class TestCampaignEndToEnd:
    def test_clean_campaign_writes_rows_and_exits_zero(self, capsys, tmp_path):
        out_file = tmp_path / "rows.jsonl"
        code = main([
            "campaign", "--scenario", "figure1", "--algorithm", "cc2",
            "--seeds", "2", "--steps", "150", "--out", str(out_file),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "Campaign: 2 runs" in printed
        rows = [json.loads(line) for line in out_file.read_text().splitlines()]
        assert len(rows) == 2
        assert all(row["ok"] for row in rows)
        assert [row["job"] for row in rows] == [0, 1]

    def test_parallel_rows_byte_identical_through_cli(self, capsys, tmp_path):
        serial_file = tmp_path / "serial.jsonl"
        parallel_file = tmp_path / "parallel.jsonl"
        argv = ["campaign", "--scenario", "figure1", "--scenario", "grid-3x3",
                "--algorithm", "cc1", "--algorithm", "cc2",
                "--seeds", "2", "--steps", "120"]
        assert main(argv + ["--jobs", "1", "--out", str(serial_file)]) == 0
        assert main(argv + ["--jobs", "2", "--out", str(parallel_file)]) == 0
        capsys.readouterr()
        assert serial_file.read_bytes() == parallel_file.read_bytes()

    def test_fault_campaign_exits_one(self, capsys, tmp_path):
        out_file = tmp_path / "rows.jsonl"
        code = main([
            "campaign", "--scenario", "figure1", "--algorithm", "cc2",
            "--faults", "7:0.8", "--seed", "0", "--steps", "200",
            "--out", str(out_file),
        ])
        capsys.readouterr()
        assert code == 1
        rows = [json.loads(line) for line in out_file.read_text().splitlines()]
        assert any(not row["ok"] for row in rows)
        assert any(row["violations"] > 0 for row in rows)

    def test_randomized_campaign_runs(self, capsys):
        code = main([
            "campaign", "--random", "3", "--algorithm", "cc2",
            "--steps", "120",
        ])
        printed = capsys.readouterr().out
        assert code in (0, 1)  # drawn fault schedules may legitimately violate
        assert "random-0" in printed

    def test_unknown_scenario_exits_two(self, capsys):
        code = main(["campaign", "--scenario", "no-such-scenario", "--steps", "10"])
        err = capsys.readouterr().err
        assert code == 2
        assert "campaign:" in err

    def test_bad_environment_exits_two(self, capsys):
        code = main(["campaign", "--scenario", "figure1",
                     "--environment", "warp", "--steps", "10"])
        err = capsys.readouterr().err
        assert code == 2
        assert "environment spec" in err

    def test_timing_flag_adds_steps_per_sec(self, capsys, tmp_path):
        out_file = tmp_path / "rows.jsonl"
        assert main([
            "campaign", "--scenario", "figure1", "--steps", "100",
            "--out", str(out_file), "--timing",
        ]) == 0
        capsys.readouterr()
        row = json.loads(out_file.read_text().splitlines()[0])
        assert row["steps_per_sec"] > 0

    def test_random_only_campaign_warns_on_ignored_named_axes(self, capsys):
        code = main([
            "campaign", "--random", "2", "--token", "ring",
            "--faults", "50:0.4", "--steps", "60",
        ])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "ignoring --token, --faults" in captured.err
        assert "randomized scenarios draw their own" in captured.err
        # With a named scenario present the axes do apply: no warning.
        assert main([
            "campaign", "--scenario", "figure1", "--random", "1",
            "--token", "ring", "--steps", "60",
        ]) in (0, 1)
        assert "ignoring" not in capsys.readouterr().err


class TestCampaignCrashSafety:
    ARGV = ["campaign", "--scenario", "figure1", "--scenario", "grid-3x3",
            "--algorithm", "cc1", "--algorithm", "cc2",
            "--seeds", "2", "--steps", "100"]

    def test_resume_finishes_interrupted_campaign_byte_identical(
        self, capsys, tmp_path, monkeypatch
    ):
        full = tmp_path / "full.jsonl"
        assert main(self.ARGV + ["--out", str(full)]) == 0
        expected = full.read_bytes()
        lines = expected.splitlines(keepends=True)
        assert len(lines) == 8

        # Interrupt after 3 complete rows + one row truncated mid-write.
        part = tmp_path / "part.jsonl"
        part.write_bytes(b"".join(lines[:3]) + lines[3][: len(lines[3]) // 2])

        import repro.campaign.driver as driver_module
        executed = []
        real_execute = driver_module.execute_job
        monkeypatch.setattr(
            driver_module, "execute_job",
            lambda job: (executed.append(job.index), real_execute(job))[1],
        )
        code = main(self.ARGV + ["--out", str(part), "--resume"])
        printed = capsys.readouterr().out
        assert code == 0
        assert "resuming" in printed and "5 of 8 job(s) remaining" in printed
        # Only the N-k missing jobs ran...
        assert sorted(executed) == [3, 4, 5, 6, 7]
        # ...and the final job-order rewrite is byte-identical to the
        # uninterrupted run.
        assert part.read_bytes() == expected

    def test_resume_of_complete_file_executes_nothing(self, capsys, tmp_path, monkeypatch):
        out = tmp_path / "rows.jsonl"
        assert main(self.ARGV + ["--out", str(out)]) == 0
        expected = out.read_bytes()
        import repro.campaign.driver as driver_module
        monkeypatch.setattr(
            driver_module, "execute_job",
            lambda job: (_ for _ in ()).throw(AssertionError("no job should run")),
        )
        assert main(self.ARGV + ["--out", str(out), "--resume"]) == 0
        capsys.readouterr()
        assert out.read_bytes() == expected

    def test_resume_requires_out(self, capsys):
        assert main(["campaign", "--scenario", "figure1", "--resume"]) == 2
        assert "--resume requires --out" in capsys.readouterr().err

    def test_resume_rejects_a_foreign_file(self, capsys, tmp_path):
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", "--scenario", "star-5", "--steps", "50",
                     "--out", str(out)]) in (0, 1)
        capsys.readouterr()
        code = main(self.ARGV + ["--out", str(out), "--resume"])
        assert code == 2
        assert "does not match the campaign matrix" in capsys.readouterr().err

    def test_worker_error_rows_drive_exit_three(self, capsys, tmp_path, monkeypatch):
        import repro.campaign.jobs as jobs_module
        real_run = jobs_module._run_job

        def boom(job):
            if job.seed == 2:
                raise RuntimeError("induced worker failure")
            return real_run(job)

        monkeypatch.setattr(jobs_module, "_run_job", boom)
        out = tmp_path / "rows.jsonl"
        code = main(["campaign", "--scenario", "figure1", "--algorithm", "cc2",
                     "--seeds", "2", "--steps", "100", "--out", str(out)])
        printed = capsys.readouterr().out
        assert code == 3
        assert "1 errors" in printed
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 2  # the completed row was not lost
        by_status = {row["status"]: row for row in rows}
        assert by_status["error"]["error"] == "RuntimeError: induced worker failure"
        assert by_status["ok"]["ok"] is True

    def test_rerun_disagreements_appends_fresh_seed_rows(self, capsys, tmp_path):
        out = tmp_path / "rows.jsonl"
        code = main([
            "campaign", "--scenario", "figure1", "--algorithm", "cc2",
            "--faults", "40:0.3", "--seed", "3", "--seeds", "3",
            "--steps", "200", "--rerun-disagreements", "--out", str(out),
        ])
        printed = capsys.readouterr().out
        assert code == 1  # the violating seeds still violate
        assert "verdicts disagree across seeds" in printed
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["job"] for row in rows] == list(range(6))
        assert [row["seed"] for row in rows] == [3, 4, 5, 6, 7, 8]
        verdicts = {row["ok"] for row in rows[:3]}
        assert verdicts == {True, False}

    def test_stream_sink_receives_rows_while_running(self, capsys, tmp_path):
        import socket
        import threading

        address = str(tmp_path / "rows.sock")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(address)
        server.listen(1)
        received = bytearray()

        def serve():
            conn, _ = server.accept()
            while chunk := conn.recv(4096):
                received.extend(chunk)
            conn.close()

        thread = threading.Thread(target=serve)
        thread.start()
        code = main(["campaign", "--scenario", "figure1", "--seeds", "2",
                     "--steps", "100", "--stream", f"unix:{address}"])
        thread.join(timeout=5)
        server.close()
        capsys.readouterr()
        assert code == 0
        rows = [json.loads(line) for line in bytes(received).decode().splitlines()]
        assert [row["job"] for row in rows] == [0, 1]

    def test_bad_stream_spec_exits_two(self, capsys):
        code = main(["campaign", "--scenario", "figure1",
                     "--stream", "rows.jsonl", "--steps", "10"])
        assert code == 2
        assert "stream spec" in capsys.readouterr().err


class TestBatchedCampaignEndToEnd:
    """`--engine batched` produces the same campaign bytes as solo engines.

    The batched engine changes *how* a cell's seed sweep executes (one numpy
    lockstep run instead of N solo runs), never *what* the rows say: modulo
    the `engine` identity field the JSONL output is byte-identical to
    `--engine incremental --jobs 1`, and resume/shard-collector flows that
    split a batch arbitrarily still converge on the same bytes.
    """

    pytestmark = pytest.mark.skipif(
        not numpy_available(),
        reason="batched engine needs the repro-cc[batched] extra",
    )

    ARGV = ["campaign", "--scenario", "figure1", "--scenario", "grid-3x3",
            "--algorithm", "cc2", "--token", "ring", "--seeds", "6",
            "--steps", "150", "--arbitrary", "--faults", "20:0.5"]

    def test_batched_bytes_equal_incremental_solo_modulo_engine_field(
        self, capsys, tmp_path
    ):
        batched = tmp_path / "batched.jsonl"
        solo = tmp_path / "solo.jsonl"
        assert main(self.ARGV + ["--engine", "batched", "--jobs", "1",
                                 "--out", str(batched)]) in (0, 1)
        assert main(self.ARGV + ["--engine", "incremental", "--jobs", "1",
                                 "--out", str(solo)]) in (0, 1)
        capsys.readouterr()
        # The engine field is row *identity* (it names the matrix cell), so
        # it is the one and only byte-level difference.
        rewritten = batched.read_text().replace('"engine": "batched"',
                                                '"engine": "incremental"')
        assert rewritten == solo.read_text()
        assert len(rewritten.splitlines()) == 12

    def test_batched_worker_pool_bytes_equal_serial(self, capsys, tmp_path):
        # --jobs 2 sends each job through the pool solo (one-lane batches);
        # --jobs 1 groups a cell's seeds into one lockstep run.  Lane
        # independence makes the outputs literally byte-identical.
        serial = tmp_path / "serial.jsonl"
        pooled = tmp_path / "pooled.jsonl"
        argv = self.ARGV + ["--engine", "batched"]
        assert main(argv + ["--jobs", "1", "--out", str(serial)]) in (0, 1)
        assert main(argv + ["--jobs", "2", "--out", str(pooled)]) in (0, 1)
        capsys.readouterr()
        assert serial.read_bytes() == pooled.read_bytes()

    def test_resume_mid_batch_byte_identical(self, capsys, tmp_path):
        argv = self.ARGV + ["--engine", "batched"]
        full = tmp_path / "full.jsonl"
        assert main(argv + ["--out", str(full)]) in (0, 1)
        expected = full.read_bytes()
        lines = expected.splitlines(keepends=True)
        assert len(lines) == 12

        # Truncate *inside* the first cell's 6-seed batch (after 2 of its 6
        # rows, the 3rd cut mid-write): resume must re-run only the missing
        # seeds — as a narrower batch — and still rewrite identical bytes.
        part = tmp_path / "part.jsonl"
        part.write_bytes(b"".join(lines[:2]) + lines[2][: len(lines[2]) // 2])
        code = main(argv + ["--out", str(part), "--resume"])
        printed = capsys.readouterr().out
        assert code in (0, 1)
        assert "10 of 12 job(s) remaining" in printed
        assert part.read_bytes() == expected

    def test_collector_shard_mode_byte_identical(self, capsys, tmp_path):
        import threading

        from repro.campaign import expand_jobs, run_campaign
        from repro.campaign.matrix import CampaignSpec, FaultSchedule
        from repro.campaign.shard import Collector, run_shard
        from repro.campaign.sinks import row_line

        spec = CampaignSpec(
            scenarios=("figure1", "grid-3x3"),
            algorithms=("cc2",),
            tokens=("ring",),
            engines=("batched",),
            faults=(FaultSchedule(every=20, fraction=0.5),),
            seeds=tuple(range(6)),
            max_steps=150,
            arbitrary_start=True,
        )
        jobs = expand_jobs(spec)
        baseline = [
            row_line(result.output_row())
            for result in run_campaign(jobs, jobs=1).results
        ]
        # Five static shards over 12 jobs: every cell's 6-seed sweep is
        # split across shard boundaries, so the merged rows prove a batch
        # can be cut anywhere without perturbing a lane.
        with Collector(jobs, "tcp:127.0.0.1:0") as collector:
            threads = [
                threading.Thread(
                    target=run_shard,
                    args=(collector.address, jobs),
                    kwargs=dict(shard=(i, 5)),
                )
                for i in range(5)
            ]
            for thread in threads:
                thread.start()
            merged = collector.run(timeout=120)
            for thread in threads:
                thread.join(timeout=15)
        assert [row_line(row) for row in merged] == baseline

    def test_batched_without_numpy_exits_two_with_hint(self, capsys, monkeypatch):
        import repro.kernel.batched as batched_module

        monkeypatch.setattr(batched_module, "_np", None)
        code = main(["campaign", "--scenario", "figure1",
                     "--engine", "batched", "--steps", "20"])
        err = capsys.readouterr().err
        assert code == 2
        assert "repro-cc[batched]" in err
