"""Property-based integration tests: safety invariants on random topologies.

Hypothesis generates small random hypergraphs (and seeds); whatever the
topology, the daemon schedule and the starting configuration (legitimate or
arbitrary), every convened meeting must satisfy Exclusion, Synchronization
and the 2-Phase Discussion -- this is the executable core of the
snap-stabilization theorems, exercised well beyond the paper's worked
examples.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.cc1 import CC1Algorithm
from repro.core.cc2 import CC2Algorithm
from repro.core.cc3 import CC3Algorithm
from repro.core.composition import TokenBinding
from repro.hypergraph.generators import random_k_uniform_hypergraph
from repro.kernel.daemon import SynchronousDaemon, default_daemon
from repro.kernel.scheduler import Scheduler
from repro.spec.discussion import check_essential_discussion, check_voluntary_discussion
from repro.spec.events import convened_meetings
from repro.spec.properties import check_exclusion, check_synchronization
from repro.tokenring.oracle import OracleTokenModule
from repro.workloads.request_models import AlwaysRequestingEnvironment


def build(algorithm_cls, hypergraph):
    return algorithm_cls(hypergraph, TokenBinding(OracleTokenModule(hypergraph.vertices)))


def run_and_check(algorithm, seed, steps=300, arbitrary=True, synchronous=False):
    initial = None
    if arbitrary:
        initial = algorithm.arbitrary_configuration(random.Random(seed))
    daemon = SynchronousDaemon() if synchronous else default_daemon(seed=seed)
    scheduler = Scheduler(
        algorithm,
        environment=AlwaysRequestingEnvironment(discussion_steps=1),
        daemon=daemon,
        initial_configuration=initial,
    )
    result = scheduler.run(max_steps=steps)
    trace = result.trace
    hypergraph = algorithm.hypergraph
    assert check_exclusion(trace, hypergraph).holds
    assert check_synchronization(trace, hypergraph).holds
    assert check_essential_discussion(trace, hypergraph).holds
    assert check_voluntary_discussion(trace, hypergraph).holds
    return trace


hypergraph_params = st.tuples(
    st.integers(min_value=4, max_value=7),    # professors
    st.integers(min_value=2, max_value=5),    # committees
    st.integers(min_value=0, max_value=10_000),  # topology seed
)


@settings(max_examples=12, deadline=None)
@given(params=hypergraph_params, seed=st.integers(min_value=0, max_value=100))
def test_property_cc1_safety_from_arbitrary_configurations(params, seed):
    n, m, topo_seed = params
    m = min(m, n * (n - 1) // 2)
    m = max(m, (n + 1) // 2)
    hypergraph = random_k_uniform_hypergraph(n, m, 2, seed=topo_seed)
    algorithm = build(CC1Algorithm, hypergraph)
    run_and_check(algorithm, seed)


@settings(max_examples=12, deadline=None)
@given(params=hypergraph_params, seed=st.integers(min_value=0, max_value=100))
def test_property_cc2_safety_from_arbitrary_configurations(params, seed):
    n, m, topo_seed = params
    m = min(m, n * (n - 1) // 2)
    m = max(m, (n + 1) // 2)
    hypergraph = random_k_uniform_hypergraph(n, m, 2, seed=topo_seed)
    algorithm = build(CC2Algorithm, hypergraph)
    run_and_check(algorithm, seed)


@settings(max_examples=8, deadline=None)
@given(params=hypergraph_params, seed=st.integers(min_value=0, max_value=100))
def test_property_cc3_safety_under_synchronous_daemon(params, seed):
    n, m, topo_seed = params
    m = min(m, n * (n - 1) // 2)
    m = max(m, (n + 1) // 2)
    hypergraph = random_k_uniform_hypergraph(n, m, 2, seed=topo_seed)
    algorithm = build(CC3Algorithm, hypergraph)
    run_and_check(algorithm, seed, synchronous=True)


@settings(max_examples=8, deadline=None)
@given(params=hypergraph_params, seed=st.integers(min_value=0, max_value=100))
def test_property_cc2_meetings_convene_on_clean_start(params, seed):
    """Liveness smoke-property: on a clean start with everyone requesting,
    some meeting convenes within a few hundred steps on any topology."""
    n, m, topo_seed = params
    m = min(m, n * (n - 1) // 2)
    m = max(m, (n + 1) // 2)
    hypergraph = random_k_uniform_hypergraph(n, m, 2, seed=topo_seed)
    algorithm = build(CC2Algorithm, hypergraph)
    trace = run_and_check(algorithm, seed, steps=400, arbitrary=False)
    assert len(convened_meetings(trace, hypergraph)) > 0


@settings(max_examples=8, deadline=None)
@given(params=hypergraph_params, seed=st.integers(min_value=0, max_value=100))
def test_property_single_pointer_implies_no_conflicting_meetings(params, seed):
    """Structural invariant behind Lemma 1: a process has one pointer, so two
    conflicting committees can never meet in the same configuration."""
    n, m, topo_seed = params
    m = min(m, n * (n - 1) // 2)
    m = max(m, (n + 1) // 2)
    hypergraph = random_k_uniform_hypergraph(n, m, 2, seed=topo_seed)
    algorithm = build(CC1Algorithm, hypergraph)
    trace = run_and_check(algorithm, seed, steps=250)
    for configuration in trace.configurations:
        held = algorithm.meetings_in(configuration)
        for i, a in enumerate(held):
            for b in held[i + 1:]:
                assert not a.intersects(b)


# --------------------------------------------------------------------------- #
# Batched-engine lane independence
# --------------------------------------------------------------------------- #
#
# The lockstep array engine shares nothing *between* lanes but the compiled
# scenario, so a lane's campaign row must be a pure function of its own job —
# independent of which other lanes share the batch and in what order.  These
# properties are what lets the campaign layer regroup jobs freely (group
# caps, shards, resume re-runs) without ever perturbing a row.

import pytest as _pytest

from repro.campaign import RunJob, execute_job_group
from repro.kernel.batched import numpy_available

_requires_numpy = _pytest.mark.skipif(
    not numpy_available(),
    reason="batched engine needs the repro-cc[batched] extra",
)


def _batched_job(index, seed):
    return RunJob(
        index=index,
        scenario="figure1",
        random_seed=None,
        algorithm="cc2",
        token="ring",
        engine="batched",
        daemon="weakly_fair",
        environment="always",
        discussion_steps=1,
        seed=seed,
        max_steps=120,
        arbitrary_start=True,
        fault_every=15,
        fault_fraction=0.5,
        grace_steps=None,
    )


def _rows_by_seed(results):
    return {result.row["seed"]: result.output_row() for result in results}


@_requires_numpy
@settings(max_examples=4, deadline=None)
@given(perm_seed=st.integers(min_value=0, max_value=10**6))
def test_property_batch_rows_invariant_under_seed_permutation(perm_seed):
    """Permuting the seed order within a batch never changes any lane's row."""
    jobs = [_batched_job(index=k, seed=k) for k in range(16)]
    baseline = _rows_by_seed(execute_job_group(jobs))
    permuted = list(jobs)
    random.Random(perm_seed).shuffle(permuted)
    shuffled = _rows_by_seed(execute_job_group(permuted))
    assert shuffled == baseline


@_requires_numpy
def test_property_batch_split_is_row_invariant():
    """One batch of 64 lanes == 4 batches of 16, row for row."""
    jobs = [_batched_job(index=k, seed=k) for k in range(64)]
    whole = _rows_by_seed(execute_job_group(jobs))
    split = {}
    for part in range(4):
        chunk = jobs[part * 16:(part + 1) * 16]
        split.update(_rows_by_seed(execute_job_group(chunk)))
    assert split == whole


@_requires_numpy
def test_property_single_lane_batch_equals_solo_row():
    """The degenerate batch: one lane alone reproduces its row exactly."""
    jobs = [_batched_job(index=k, seed=k) for k in range(8)]
    grouped = _rows_by_seed(execute_job_group(jobs))
    solo = {}
    for job in jobs:
        solo.update(_rows_by_seed(execute_job_group([job])))
    assert solo == grouped
